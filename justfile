# SPEAR task runner. `just check` is the tier-1 gate (see README).

# Run everything CI gates on: release build, tests, strict clippy, fmt.
check:
    sh scripts/check.sh

# Reformat the workspace in place (the gate only checks).
fmt:
    cargo fmt --all

# Fast feedback loop: debug tests only.
test:
    cargo test --workspace -q

# Exhaustive schedule-enumeration check for the striped prefix cache's
# owner discipline (DESIGN.md §5).
race:
    cargo test -p spear-llm --test race_interleavings

# Regenerate the paper tables/figures and the batch throughput sweep.
bench:
    cargo run --release -p spear-bench --bin table3
    cargo run --release -p spear-bench --bin table4
    cargo run --release -p spear-bench --bin figure1
    cargo run --release -p spear-bench --bin bench_batch
    cargo run --release -p spear-bench --bin bench_serve

# Disassemble representative plans to bytecode listings (fused
# superinstructions + constant pool; DESIGN.md §12).
disasm:
    cargo run -p spear-bench --bin disasm

# Static-analysis gate over the golden plan corpus: bytecode lints
# (W004/W005), translation validation, verified-optimizer bisimulation,
# and abstract cost bounds (DESIGN.md §14). Exits non-zero on any
# error-class diagnostic or TV failure.
analyze:
    cargo run -p spear-bench --bin analyze

# Host fast-path throughput: interned/segmented prefill vs flat re-tokenize
# (DESIGN.md §10). Writes BENCH_host.json and fails below 2x on the
# warm-prefix serve workload.
bench-host:
    cargo run --release -p spear-bench --bin bench_host

# Serving sweep on its own; pass `--pressure` for the bounded-KV
# memory-pressure variant (BENCH_serve_pressure.json; fails unless the
# pool visibly evicted and preempted, identically at every lane count).
bench-serve *ARGS:
    cargo run --release -p spear-bench --bin bench_serve -- {{ARGS}}

# Generation-reuse sweep: duplicate-heavy workload served with the
# whole-call memo on vs off (BENCH_reuse.json; fails below 1.5x host
# throughput, on any fingerprint divergence from reuse-off, or if the
# hit/coalesced ledger varies across lane counts).
bench-reuse *ARGS:
    cargo run --release -p spear-bench --bin bench_serve -- --reuse {{ARGS}}

# Cluster scale-out sweep: 1→16 prefix-aware nodes vs hash-random
# scatter under Zipf traffic (BENCH_cluster.json; fails below 0.7x ideal
# scaling at 8 nodes or if hash-random matches the fleet hit rate).
bench-cluster *ARGS:
    cargo run --release -p spear-bench --bin bench_cluster -- {{ARGS}}
