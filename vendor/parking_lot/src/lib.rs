//! Offline shim for `parking_lot`, backed by `std::sync` primitives.
//!
//! The workspace vendors this because the build environment has no access
//! to crates.io. Only the API surface actually used by the workspace is
//! provided: `Mutex` / `RwLock` with non-poisoning guards. Poisoning is
//! handled by recovering the inner guard (`into_inner` on the poison
//! error), which matches parking_lot's semantics of simply not poisoning.

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// A reader-writer lock with parking_lot's non-poisoning API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new rwlock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Acquire an exclusive write guard. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(g) => f.debug_struct("RwLock").field("data", &&*g).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
