//! Offline shim for `serde_json`, vendored because the build environment
//! has no access to crates.io.
//!
//! Renders the vendored `serde::Content` tree to compact JSON and parses
//! JSON text back. The grammar is full JSON (RFC 8259): all escape forms
//! including `\uXXXX` with surrogate pairs, exponent/fraction numbers, and
//! strict trailing-garbage detection. Output is deterministic: object
//! entries keep their `Content` order and floats use Rust's shortest
//! round-trip formatting.

use std::fmt;

use serde::{Content, Deserialize, Serialize};

/// Errors from serialization or parsing, with 1-based position info for
/// parse errors.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn parse(msg: impl fmt::Display, line: usize, column: usize) -> Self {
        Self {
            msg: msg.to_string(),
            line,
            column,
        }
    }

    fn data(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
            line: 0,
            column: 0,
        }
    }

    /// 1-based line of a parse error (0 for data-shape errors).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }

    /// 1-based column of a parse error (0 for data-shape errors).
    #[must_use]
    pub fn column(&self) -> usize {
        self.column
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.msg)
        } else {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        }
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to a compact JSON string.
///
/// # Errors
///
/// Practically infallible for the types in this workspace; the `Result`
/// mirrors `serde_json`'s signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.serialize_content(), &mut out);
    Ok(out)
}

/// Parse a JSON string into `T`. Rejects trailing non-whitespace input.
///
/// # Errors
///
/// Returns an [`Error`] with line/column info on malformed JSON, or a
/// data-shape error when the JSON is valid but does not fit `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let content = parse_content(s)?;
    T::deserialize_content(&content).map_err(Error::data)
}

/// Interpret a [`Value`] tree as an instance of `T`.
///
/// # Errors
///
/// Returns a data-shape [`Error`] when the tree does not fit `T`.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T, Error> {
    T::deserialize_content(&value.into_content()).map_err(Error::data)
}

/// Lower `value` into a generic [`Value`] tree.
///
/// # Errors
///
/// Practically infallible for the types in this workspace; the `Result`
/// mirrors `serde_json`'s signature.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(Value::from_content(value.serialize_content()))
}

// ---------------------------------------------------------------------------
// Value
// ---------------------------------------------------------------------------

/// A parsed JSON document of unknown shape: the shim's answer to
/// `serde_json::Value`. Objects preserve insertion order, like
/// `serde_json`'s `preserve_order` feature.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (integer or float).
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object, insertion-ordered.
    Object(Map),
}

/// A JSON number: an `i64`, a `u64` above `i64::MAX`, or an `f64`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number(NumberRepr);

#[derive(Debug, Clone, Copy, PartialEq)]
enum NumberRepr {
    I64(i64),
    U64(u64),
    F64(f64),
}

impl Number {
    /// The value as an `i64`, when it fits exactly.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self.0 {
            NumberRepr::I64(i) => Some(i),
            NumberRepr::U64(u) => i64::try_from(u).ok(),
            NumberRepr::F64(_) => None,
        }
    }

    /// The value as a `u64`, when it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self.0 {
            NumberRepr::I64(i) => u64::try_from(i).ok(),
            NumberRepr::U64(u) => Some(u),
            NumberRepr::F64(_) => None,
        }
    }

    /// The value as an `f64` (lossy for large integers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self.0 {
            NumberRepr::I64(i) => Some(i as f64),
            NumberRepr::U64(u) => Some(u as f64),
            NumberRepr::F64(f) => Some(f),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            NumberRepr::I64(i) => write!(f, "{i}"),
            NumberRepr::U64(u) => write!(f, "{u}"),
            NumberRepr::F64(x) => write!(f, "{x}"),
        }
    }
}

/// An insertion-ordered string-keyed map of [`Value`]s.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The value under `key`, if present.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Mutable access to the value under `key`, if present.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        self.entries
            .iter_mut()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v)
    }

    /// Insert `value` under `key`, returning the displaced value if the
    /// key was already present (its position is kept).
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        match self.get_mut(&key) {
            Some(slot) => Some(std::mem::replace(slot, value)),
            None => {
                self.entries.push((key, value));
                None
            }
        }
    }

    /// Remove and return the value under `key`, if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        let index = self.entries.iter().position(|(k, _)| k == key)?;
        Some(self.entries.remove(index).1)
    }

    /// Whether `key` is present.
    #[must_use]
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }
}

const NULL: Value = Value::Null;

impl Value {
    fn from_content(content: Content) -> Self {
        match content {
            Content::Null => Value::Null,
            Content::Bool(b) => Value::Bool(b),
            Content::I64(i) => Value::Number(Number(NumberRepr::I64(i))),
            Content::U64(u) => Value::Number(Number(NumberRepr::U64(u))),
            Content::F64(f) => Value::Number(Number(NumberRepr::F64(f))),
            Content::Str(s) => Value::String(s),
            Content::Seq(items) => {
                Value::Array(items.into_iter().map(Self::from_content).collect())
            }
            Content::Map(entries) => Value::Object(Map {
                entries: entries
                    .into_iter()
                    .map(|(k, v)| (k, Self::from_content(v)))
                    .collect(),
            }),
        }
    }

    fn into_content(self) -> Content {
        match self {
            Value::Null => Content::Null,
            Value::Bool(b) => Content::Bool(b),
            Value::Number(Number(NumberRepr::I64(i))) => Content::I64(i),
            Value::Number(Number(NumberRepr::U64(u))) => Content::U64(u),
            Value::Number(Number(NumberRepr::F64(f))) => Content::F64(f),
            Value::String(s) => Content::Str(s),
            Value::Array(items) => {
                Content::Seq(items.into_iter().map(Self::into_content).collect())
            }
            Value::Object(map) => Content::Map(
                map.entries
                    .into_iter()
                    .map(|(k, v)| (k, Self::into_content(v)))
                    .collect(),
            ),
        }
    }

    /// Whether this is JSON `null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The boolean, when this is a JSON boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The string slice, when this is a JSON string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The number as `i64`, when it fits.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The number as `u64`, when it fits.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The number as `f64`.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The elements, when this is a JSON array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Mutable elements, when this is a JSON array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The entries, when this is a JSON object.
    #[must_use]
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// Mutable entries, when this is a JSON object.
    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }

    /// The value under `key`, when this is an object that has it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|map| map.get(key))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        write_content(&self.clone().into_content(), &mut out);
        f.write_str(&out)
    }
}

impl Serialize for Value {
    fn serialize_content(&self) -> Content {
        self.clone().into_content()
    }
}

impl Deserialize for Value {
    fn deserialize_content(content: &Content) -> Result<Self, serde::DeError> {
        Ok(Self::from_content(content.clone()))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`: the member, or `Null` when absent or not an
    /// object — mirroring `serde_json`'s non-panicking read indexing.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// `value["key"] = …`: inserts `Null` under a missing key first.
    /// Unlike the read side this panics when `self` is not an object,
    /// because there is nowhere coherent to write.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        let map = self
            .as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object value with key {key:?}"));
        if !map.contains_key(key) {
            map.insert(key.to_string(), Value::Null);
        }
        map.get_mut(key).expect("just inserted")
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;

    /// `value[i]`: the element, or `Null` when out of bounds or not an
    /// array.
    fn index(&self, index: usize) -> &Value {
        self.as_array()
            .and_then(|items| items.get(index))
            .unwrap_or(&NULL)
    }
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::I64(i) => out.push_str(&i.to_string()),
        Content::U64(u) => out.push_str(&u.to_string()),
        Content::F64(f) => {
            if f.is_finite() {
                // Rust's Display is the shortest representation that
                // round-trips; integral floats render with a trailing `.0`
                // omitted, which the shim's numeric deserializers accept.
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(k, out);
                out.push(':');
                write_content(v, out);
            }
            out.push('}');
        }
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_content(s: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters"));
    }
    Ok(value)
}

impl<'a> Parser<'a> {
    fn error(&self, msg: impl fmt::Display) -> Error {
        let mut line = 1;
        let mut column = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        Error::parse(msg, line, column)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.keyword("null", Content::Null),
            Some(b't') => self.keyword("true", Content::Bool(true)),
            Some(b'f') => self.keyword("false", Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.error(format!("unexpected character `{}`", other as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn keyword(&mut self, kw: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected `{kw}`")))
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.error("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.error("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let ch = if (0xD800..0xDC00).contains(&cp) {
                                // High surrogate: require the low half.
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(self.error("invalid low surrogate"));
                                    }
                                    let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or_else(|| self.error("invalid codepoint"))?
                                } else {
                                    return Err(self.error("unpaired surrogate"));
                                }
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(self.error("unpaired surrogate"));
                            } else {
                                char::from_u32(cp).ok_or_else(|| self.error("invalid codepoint"))?
                            };
                            out.push(ch);
                            continue; // hex4 advanced past the digits
                        }
                        _ => return Err(self.error("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => return Err(self.error("control character in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // bytes are valid UTF-8).
                    let start = self.pos;
                    let len = utf8_len(self.bytes[start]);
                    let chunk = &self.bytes[start..start + len];
                    out.push_str(std::str::from_utf8(chunk).expect("valid utf8"));
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| self.error("invalid \\u escape"))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let int_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == int_start {
            return Err(self.error("expected digits"));
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.error("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.error("expected exponent digits"));
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits are ascii");
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.error("invalid number"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Content::I64(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Content::U64(u))
        } else {
            // Overflowing integers degrade to floats, as serde_json's
            // arbitrary-precision-off mode effectively does.
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| self.error("invalid number"))
        }
    }
}

fn utf8_len(b: u8) -> usize {
    match b {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(to_string(&-1.5f64).unwrap(), "-1.5");
        assert_eq!(to_string(&"a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<String>(r#""aAb""#).unwrap(), "aAb");
        assert_eq!(from_str::<String>(r#""😀""#).unwrap(), "😀");
    }

    #[test]
    fn containers_roundtrip() {
        let v = vec![1i64, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![true, false]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"k":[true,false]}"#);
        assert_eq!(from_str::<BTreeMap<String, Vec<bool>>>(&s).unwrap(), m);
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<Vec<i64>>("[1, 2,\n x]").unwrap_err();
        assert_eq!(err.line(), 2);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(from_str::<i64>("42 garbage").is_err());
        assert!(from_str::<i64>("42  ").is_ok());
    }

    #[test]
    fn float_int_boundary() {
        assert_eq!(from_str::<f64>("2").unwrap(), 2.0);
        assert_eq!(from_str::<f64>("2.5e1").unwrap(), 25.0);
        assert_eq!(from_str::<u64>("18446744073709551615").unwrap(), u64::MAX);
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(to_string(&Option::<i64>::None).unwrap(), "null");
        assert_eq!(from_str::<Option<i64>>("null").unwrap(), None);
        assert_eq!(from_str::<Option<i64>>("3").unwrap(), Some(3));
    }

    #[test]
    fn value_parses_and_indexes() {
        let v: Value = from_str(r#"{"rows":[{"n":1},{"n":2}],"ok":true}"#).unwrap();
        let rows = v["rows"].as_array().expect("rows is an array");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[1]["n"].as_i64(), Some(2));
        assert_eq!(v["ok"].as_bool(), Some(true));
        assert!(v["missing"].is_null());
        assert!(v["rows"][9].is_null());
        assert_eq!(v.to_string(), r#"{"rows":[{"n":1},{"n":2}],"ok":true}"#);
    }

    #[test]
    fn value_object_mutation() {
        let mut v: Value = from_str(r#"{"a":{"x":1,"y":2},"b":3}"#).unwrap();
        let a = v["a"].as_object_mut().expect("a is an object");
        assert_eq!(a.remove("y").and_then(|y| y.as_i64()), Some(2));
        assert!(a.remove("y").is_none());
        let obj = v.as_object_mut().expect("root is an object");
        assert!(obj.remove("b").is_some());
        assert_eq!(v.to_string(), r#"{"a":{"x":1}}"#);
        v["c"] = from_str("[true]").unwrap();
        assert_eq!(v["c"][0].as_bool(), Some(true));
    }

    #[test]
    fn value_round_trips_typed_data() {
        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1i64, 2]);
        let v = to_value(&m).unwrap();
        assert_eq!(v["k"].as_array().map(Vec::len), Some(2));
        let back: BTreeMap<String, Vec<i64>> = from_value(v).unwrap();
        assert_eq!(back, m);
        assert!(from_value::<bool>(Value::Null).is_err());
    }

    #[test]
    fn value_number_widths() {
        let v: Value = from_str("[1, -2, 18446744073709551615, 2.5]").unwrap();
        assert_eq!(v[0].as_u64(), Some(1));
        assert_eq!(v[1].as_i64(), Some(-2));
        assert_eq!(v[2].as_u64(), Some(u64::MAX));
        assert_eq!(v[2].as_i64(), None);
        assert_eq!(v[3].as_f64(), Some(2.5));
    }
}
