//! Offline shim for `serde`, vendored because the build environment has no
//! access to crates.io.
//!
//! Instead of serde's visitor-based data model, this shim serializes
//! through a concrete JSON-shaped [`Content`] tree: `Serialize` lowers a
//! value into `Content`, `Deserialize` lifts it back. The companion
//! `serde_derive` proc-macro generates impls compatible with serde's
//! derive semantics for the shapes used in this workspace (named structs,
//! externally tagged enums, `#[serde(untagged)]` enums), and the companion
//! `serde_json` shim renders `Content` to and from JSON text.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the serialization intermediate of this shim.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Integer that fits an `i64`.
    I64(i64),
    /// Integer above `i64::MAX`.
    U64(u64),
    /// Floating point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Content>),
    /// Object, with insertion order preserved.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// Borrow as an object, with a type name for the error message.
    pub fn as_map_for(&self, ty: &str) -> Result<&[(String, Content)], DeError> {
        match self {
            Content::Map(m) => Ok(m),
            other => Err(DeError::custom(format!(
                "expected a map for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Borrow as an array of exactly `len` elements.
    pub fn as_seq_for(&self, ty: &str, len: usize) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(s) if s.len() == len => Ok(s),
            Content::Seq(s) => Err(DeError::custom(format!(
                "expected {len} elements for {ty}, found {}",
                s.len()
            ))),
            other => Err(DeError::custom(format!(
                "expected a sequence for {ty}, found {}",
                other.kind()
            ))),
        }
    }

    /// Human-readable kind for error messages.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "a boolean",
            Content::I64(_) | Content::U64(_) => "an integer",
            Content::F64(_) => "a float",
            Content::Str(_) => "a string",
            Content::Seq(_) => "a sequence",
            Content::Map(_) => "a map",
        }
    }
}

/// Deserialization error: a message, optionally with input position
/// attached by `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// Construct from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }

    /// The error message.
    #[must_use]
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can lower itself into [`Content`].
pub trait Serialize {
    /// Lower into the content tree.
    fn serialize_content(&self) -> Content;
}

/// A type that can lift itself out of [`Content`].
pub trait Deserialize: Sized {
    /// Lift from the content tree.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when `content` has the wrong shape.
    fn deserialize_content(content: &Content) -> Result<Self, DeError>;

    /// Called when a struct field is absent from the input map. The default
    /// errors; `Option<T>` overrides it to produce `None`, matching serde's
    /// missing-field behaviour.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] naming the missing field.
    fn deserialize_missing(field: &str) -> Result<Self, DeError> {
        Err(DeError::custom(format!("missing field `{field}`")))
    }
}

/// Namespace mirroring `serde::de`.
pub mod de {
    pub use super::DeError as Error;

    /// Owned deserialization (every `Deserialize` in this shim is owned).
    pub trait DeserializeOwned: super::Deserialize {}
    impl<T: super::Deserialize> DeserializeOwned for T {}
}

/// Namespace mirroring `serde::ser`.
pub mod ser {
    pub use super::Serialize;
}

/// Look up a struct field by name in an object's entries (derive helper).
///
/// # Errors
///
/// Propagates field deserialization errors; absent fields go through
/// [`Deserialize::deserialize_missing`].
pub fn __field<T: Deserialize>(entries: &[(String, Content)], name: &str) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize_content(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
        }
        None => T::deserialize_missing(name),
    }
}

/// Like [`__field`], but for fields marked `#[serde(default)]`: an absent
/// field takes `T::default()` instead of going through
/// [`Deserialize::deserialize_missing`].
///
/// # Errors
///
/// Propagates field deserialization errors for present fields.
pub fn __field_or_default<T: Deserialize + Default>(
    entries: &[(String, Content)],
    name: &str,
) -> Result<T, DeError> {
    match entries.iter().find(|(k, _)| k == name) {
        Some((_, v)) => {
            T::deserialize_content(v).map_err(|e| DeError::custom(format!("field `{name}`: {e}")))
        }
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize_content(&self) -> Content {
        Content::Bool(*self)
    }
}

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_content(&self) -> Content {
                Content::I64(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize, u8, u16, u32);

impl Serialize for u64 {
    fn serialize_content(&self) -> Content {
        if let Ok(i) = i64::try_from(*self) {
            Content::I64(i)
        } else {
            Content::U64(*self)
        }
    }
}

impl Serialize for usize {
    fn serialize_content(&self) -> Content {
        (*self as u64).serialize_content()
    }
}

impl Serialize for f64 {
    fn serialize_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl Serialize for f32 {
    fn serialize_content(&self) -> Content {
        Content::F64(f64::from(*self))
    }
}

impl Serialize for char {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Serialize for String {
    fn serialize_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Serialize for str {
    fn serialize_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize_content(&self) -> Content {
        (**self).serialize_content()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_content(&self) -> Content {
        match self {
            Some(v) => v.serialize_content(),
            None => Content::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::serialize_content).collect())
    }
}

impl Serialize for () {
    fn serialize_content(&self) -> Content {
        Content::Null
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_content(&self) -> Content {
                Content::Seq(vec![$(self.$n.serialize_content()),+])
            }
        }
    )*};
}
impl_ser_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

/// Map keys must render as JSON strings.
pub trait JsonKey: Ord {
    /// The key as a JSON object key.
    fn to_json_key(&self) -> String;
    /// Parse back from a JSON object key.
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] when the key does not parse.
    fn from_json_key(key: &str) -> Result<Self, DeError>
    where
        Self: Sized;
}

impl JsonKey for String {
    fn to_json_key(&self) -> String {
        self.clone()
    }
    fn from_json_key(key: &str) -> Result<Self, DeError> {
        Ok(key.to_string())
    }
}

macro_rules! impl_json_key_int {
    ($($t:ty),*) => {$(
        impl JsonKey for $t {
            fn to_json_key(&self) -> String {
                self.to_string()
            }
            fn from_json_key(key: &str) -> Result<Self, DeError> {
                key.parse().map_err(|_| {
                    DeError::custom(format!("invalid integer map key {key:?}"))
                })
            }
        }
    )*};
}
impl_json_key_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl<K: JsonKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_json_key(), v.serialize_content()))
                .collect(),
        )
    }
}

impl<K: JsonKey + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize_content(&self) -> Content {
        // Sorted for deterministic output (HashMap iteration order is not).
        let mut entries: Vec<(String, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_json_key(), v.serialize_content()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Content::Map(entries)
    }
}

impl<T: Serialize + Ord> Serialize for std::collections::BTreeSet<T> {
    fn serialize_content(&self) -> Content {
        Content::Seq(self.iter().map(|v| v.serialize_content()).collect())
    }
}

impl<T: Serialize + Ord + std::hash::Hash> Serialize for std::collections::HashSet<T> {
    fn serialize_content(&self) -> Content {
        // Sorted for deterministic output (HashSet iteration order is not).
        let mut items: Vec<&T> = self.iter().collect();
        items.sort();
        Content::Seq(items.iter().map(|v| v.serialize_content()).collect())
    }
}

impl Serialize for std::time::Duration {
    fn serialize_content(&self) -> Content {
        // Mirrors upstream serde's {secs, nanos} struct representation.
        Content::Map(vec![
            ("secs".to_string(), Content::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Content::U64(self.subsec_nanos() as u64),
            ),
        ])
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!(
                "expected a boolean, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let out = match content {
                    Content::I64(i) => <$t>::try_from(*i).ok(),
                    Content::U64(u) => <$t>::try_from(*u).ok(),
                    // Integral floats narrow losslessly (untagged enums and
                    // hand-written JSON produce these).
                    Content::F64(f) if f.fract() == 0.0
                        && *f >= i64::MIN as f64
                        && *f <= u64::MAX as f64 =>
                    {
                        if *f >= 0.0 {
                            <$t>::try_from(*f as u64).ok()
                        } else {
                            <$t>::try_from(*f as i64).ok()
                        }
                    }
                    other => {
                        return Err(DeError::custom(format!(
                            "expected an integer, found {}",
                            other.kind()
                        )))
                    }
                };
                out.ok_or_else(|| {
                    DeError::custom(format!(
                        "integer out of range for {}",
                        stringify!($t)
                    ))
                })
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Deserialize for f64 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::F64(f) => Ok(*f),
            Content::I64(i) => Ok(*i as f64),
            Content::U64(u) => Ok(*u as f64),
            other => Err(DeError::custom(format!(
                "expected a number, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for f32 {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        f64::deserialize_content(content).map(|f| f as f32)
    }
}

impl Deserialize for char {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) if s.chars().count() == 1 => {
                Ok(s.chars().next().expect("length checked"))
            }
            other => Err(DeError::custom(format!(
                "expected a single-character string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for String {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!(
                "expected a string, found {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        T::deserialize_content(content).map(Box::new)
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::deserialize_content(other).map(Some),
        }
    }

    fn deserialize_missing(_field: &str) -> Result<Self, DeError> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Seq(items) => items.iter().map(T::deserialize_content).collect(),
            other => Err(DeError::custom(format!(
                "expected a sequence, found {}",
                other.kind()
            ))),
        }
    }
}

impl Deserialize for () {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::custom(format!(
                "expected null, found {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+))*) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_content(content: &Content) -> Result<Self, DeError> {
                let s = content.as_seq_for("tuple", $len)?;
                Ok(($($t::deserialize_content(&s[$n])?,)+))
            }
        }
    )*};
}
impl_de_tuple! {
    (1; 0 A)
    (2; 0 A, 1 B)
    (3; 0 A, 1 B, 2 C)
    (4; 0 A, 1 B, 2 C, 3 D)
}

impl<K: JsonKey, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let entries = content.as_map_for("map")?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_json_key(k)?, V::deserialize_content(v)?)))
            .collect()
    }
}

impl<K: JsonKey + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let entries = content.as_map_for("map")?;
        entries
            .iter()
            .map(|(k, v)| Ok((K::from_json_key(k)?, V::deserialize_content(v)?)))
            .collect()
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let items = match content {
            Content::Seq(s) => s,
            other => {
                return Err(DeError::custom(format!(
                    "expected a sequence for set, found {}",
                    other.kind()
                )))
            }
        };
        items.iter().map(T::deserialize_content).collect()
    }
}

impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for std::collections::HashSet<T> {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let items = match content {
            Content::Seq(s) => s,
            other => {
                return Err(DeError::custom(format!(
                    "expected a sequence for set, found {}",
                    other.kind()
                )))
            }
        };
        items.iter().map(T::deserialize_content).collect()
    }
}

impl Deserialize for std::time::Duration {
    fn deserialize_content(content: &Content) -> Result<Self, DeError> {
        let entries = content.as_map_for("Duration")?;
        let secs = u64::deserialize_content(__field_content(entries, "secs")?)?;
        let nanos = u64::deserialize_content(__field_content(entries, "nanos")?)?;
        Ok(std::time::Duration::new(secs, nanos as u32))
    }
}

fn __field_content<'a>(
    entries: &'a [(String, Content)],
    name: &str,
) -> Result<&'a Content, DeError> {
    entries
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError::custom(format!("missing field `{name}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn std_roundtrips() {
        let v = vec![(1u64, "a".to_string()), (2, "b".to_string())];
        let c = v.serialize_content();
        let back: Vec<(u64, String)> = Deserialize::deserialize_content(&c).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn option_missing_field_is_none() {
        let got: Option<String> = Option::deserialize_missing("x").unwrap();
        assert!(got.is_none());
        assert!(String::deserialize_missing("x").is_err());
    }

    #[test]
    fn int_widening_and_narrowing() {
        assert_eq!(u8::deserialize_content(&Content::I64(7)).unwrap(), 7);
        assert!(u8::deserialize_content(&Content::I64(300)).is_err());
        assert_eq!(f64::deserialize_content(&Content::I64(2)).unwrap(), 2.0);
        assert_eq!(i64::deserialize_content(&Content::F64(2.0)).unwrap(), 2);
        assert!(i64::deserialize_content(&Content::F64(2.5)).is_err());
    }
}
