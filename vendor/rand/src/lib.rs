//! Offline shim for `rand` 0.8, backed by xoshiro256** seeded via
//! SplitMix64.
//!
//! Vendored because the build environment has no access to crates.io. The
//! streams are deterministic and self-consistent but intentionally do NOT
//! match upstream `rand`'s output bit-for-bit; everything in this workspace
//! that consumes randomness only requires reproducibility under a fixed
//! seed, which this provides.

use std::ops::Range;

/// Core random-number source: a 64-bit generator.
pub trait RngCore {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32 bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Construct from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256** state.
#[derive(Debug, Clone)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    fn from_u64(seed: u64) -> Self {
        // SplitMix64 expansion of the seed into the four lanes.
        let mut x = seed;
        let mut next = move || {
            x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        Self { s }
    }
}

impl RngCore for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Standard generator (same algorithm as [`SmallRng`] in this shim).
pub type StdRngImpl = Xoshiro256;

/// Generator namespace mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, Xoshiro256};

    /// The "standard" RNG of this shim.
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    /// A small, fast RNG (identical algorithm in this shim).
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }
}

/// A type that can be sampled uniformly from a `Range`.
pub trait SampleUniform: Sized {
    /// Sample uniformly from `range`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range: empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is ~2^-64 for the spans used here; acceptable
                // for a simulation shim.
                let draw = (rng.next_u64() as u128) % span;
                (range.start as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        let unit = (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32;
        range.start + unit * (range.end - range.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn gen_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Sequence-related sampling, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = rng.gen_range(0..self.len());
                Some(&self[i])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(3..9u8);
            assert!((3..9).contains(&v));
            let f = r.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_and_choose() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut r).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut r).is_none());
    }
}
