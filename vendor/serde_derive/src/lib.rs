//! Offline shim for `serde_derive`: hand-written `#[derive(Serialize)]` /
//! `#[derive(Deserialize)]` proc-macros with no dependency on `syn` or
//! `quote` (neither is available offline).
//!
//! The macros parse the item's token stream directly and emit impls of the
//! vendored `serde` shim's `Serialize` / `Deserialize` traits (which lower
//! to / lift from `serde::Content`). Supported item shapes — everything
//! this workspace derives on:
//!
//! - structs with named fields (possibly generic over plain type params)
//! - unit structs
//! - enums with unit, tuple, and struct variants, externally tagged
//!   (serde's default representation)
//! - `#[serde(untagged)]` enums: variants are tried in declaration order
//! - `#[serde(default)]` on named fields: an absent field takes the
//!   field type's `Default` instead of erroring
//!
//! Unknown fields are ignored and missing `Option` fields deserialize to
//! `None`, matching serde's defaults.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => item
            .serialize_impl()
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derive `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match Item::parse(input) {
        Ok(item) => item
            .deserialize_impl()
            .parse()
            .expect("generated code parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("literal parses")
}

// ---------------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    generics: Vec<String>,
    untagged: bool,
    kind: ItemKind,
}

enum ItemKind {
    Struct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(default)]`: absent fields take the type's `Default`.
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

impl Item {
    fn parse(input: TokenStream) -> Result<Item, String> {
        let tokens: Vec<TokenTree> = input.into_iter().collect();
        let mut i = 0usize;
        let mut untagged = false;

        // Item-level attributes: record #[serde(untagged)], skip the rest
        // (doc comments, #[derive(...)] of other traits, etc.).
        while matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = tokens.get(i + 1) {
                if attr_is_serde_word(g.stream(), "untagged") {
                    untagged = true;
                }
            }
            i += 2;
        }

        // Visibility.
        if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }

        let keyword = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected `struct` or `enum`, found {other:?}")),
        };
        i += 1;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected item name, found {other:?}")),
        };
        i += 1;

        // Generics: only plain type-parameter lists (`<V>`, `<A, B>`).
        let mut generics = Vec::new();
        if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            i += 1;
            loop {
                match tokens.get(i) {
                    Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                        i += 1;
                        break;
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
                    Some(TokenTree::Ident(id)) => {
                        generics.push(id.to_string());
                        i += 1;
                    }
                    other => {
                        return Err(format!(
                            "unsupported generics on {name} (only plain type params): {other:?}"
                        ))
                    }
                }
            }
        }

        let kind = match keyword.as_str() {
            "struct" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    ItemKind::Struct(parse_named_fields(g.stream())?)
                }
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    return Err(format!(
                        "tuple struct {name} is not supported by the vendored serde derive"
                    ))
                }
                other => return Err(format!("unexpected struct body: {other:?}")),
            },
            "enum" => match tokens.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    ItemKind::Enum(parse_variants(g.stream())?)
                }
                other => return Err(format!("unexpected enum body: {other:?}")),
            },
            other => return Err(format!("expected `struct` or `enum`, found `{other}`")),
        };

        Ok(Item {
            name,
            generics,
            untagged,
            kind,
        })
    }

    /// `<V>` for the type position, empty string when non-generic.
    fn type_args(&self) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            format!("<{}>", self.generics.join(", "))
        }
    }

    /// `<V: ::serde::Serialize>`-style impl generics.
    fn impl_generics(&self, bound: &str) -> String {
        if self.generics.is_empty() {
            String::new()
        } else {
            let params: Vec<String> = self
                .generics
                .iter()
                .map(|g| format!("{g}: {bound}"))
                .collect();
            format!("<{}>", params.join(", "))
        }
    }

    // -- Serialize ----------------------------------------------------------

    fn serialize_impl(&self) -> String {
        let body = match &self.kind {
            ItemKind::Struct(fields) => ser_named_fields_body(fields, "self.", ""),
            ItemKind::UnitStruct => "::serde::Content::Null".to_string(),
            ItemKind::Enum(variants) => self.ser_enum_body(variants),
        };
        format!(
            "#[automatically_derived]\n\
             impl{ig} ::serde::Serialize for {name}{ta} {{\n\
                 fn serialize_content(&self) -> ::serde::Content {{\n\
                     {body}\n\
                 }}\n\
             }}",
            ig = self.impl_generics("::serde::Serialize"),
            name = self.name,
            ta = self.type_args(),
        )
    }

    fn ser_enum_body(&self, variants: &[Variant]) -> String {
        let mut arms = String::new();
        for v in variants {
            let vname = &v.name;
            let arm = match &v.shape {
                VariantShape::Unit => {
                    let content = if self.untagged {
                        "::serde::Content::Null".to_string()
                    } else {
                        format!("::serde::Content::Str(::std::string::String::from({vname:?}))")
                    };
                    format!("Self::{vname} => {content},\n")
                }
                VariantShape::Tuple(arity) => {
                    let binds: Vec<String> = (0..*arity).map(|k| format!("__t{k}")).collect();
                    let inner = if *arity == 1 {
                        "::serde::Serialize::serialize_content(__t0)".to_string()
                    } else {
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::serialize_content({b})"))
                            .collect();
                        format!("::serde::Content::Seq(::std::vec![{}])", items.join(", "))
                    };
                    let content = if self.untagged {
                        inner
                    } else {
                        tag_map(vname, &inner)
                    };
                    format!("Self::{vname}({}) => {content},\n", binds.join(", "))
                }
                VariantShape::Struct(fields) => {
                    let binds = fields
                        .iter()
                        .map(|f| f.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ");
                    let inner = ser_named_fields_body(fields, "", "");
                    let content = if self.untagged {
                        inner
                    } else {
                        tag_map(vname, &inner)
                    };
                    format!("Self::{vname} {{ {binds} }} => {content},\n")
                }
            };
            arms.push_str(&arm);
        }
        format!("match self {{\n{arms}}}")
    }

    // -- Deserialize --------------------------------------------------------

    fn deserialize_impl(&self) -> String {
        let body = match &self.kind {
            ItemKind::Struct(fields) => de_named_fields_body(&self.name, fields, "Self"),
            ItemKind::UnitStruct => "::std::result::Result::Ok(Self)".to_string(),
            ItemKind::Enum(variants) if self.untagged => self.de_untagged_body(variants),
            ItemKind::Enum(variants) => self.de_tagged_body(variants),
        };
        format!(
            "#[automatically_derived]\n\
             impl{ig} ::serde::Deserialize for {name}{ta} {{\n\
                 fn deserialize_content(__c: &::serde::Content) \
                     -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                     {body}\n\
                 }}\n\
             }}",
            ig = self.impl_generics("::serde::Deserialize"),
            name = self.name,
            ta = self.type_args(),
        )
    }

    fn de_tagged_body(&self, variants: &[Variant]) -> String {
        let ty = &self.name;
        let mut unit_arms = String::new();
        let mut payload_arms = String::new();
        for v in variants {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => {
                    unit_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok(Self::{vname}),\n"
                    ));
                    // Also accept the map form `{"Variant": null}`.
                    payload_arms.push_str(&format!(
                        "{vname:?} => ::std::result::Result::Ok(Self::{vname}),\n"
                    ));
                }
                VariantShape::Tuple(arity) => {
                    let expr = de_tuple_expr(ty, vname, *arity, "__v");
                    payload_arms.push_str(&format!("{vname:?} => {expr},\n"));
                }
                VariantShape::Struct(fields) => {
                    let inner = de_named_fields_from(ty, fields, &format!("Self::{vname}"), "__v");
                    payload_arms.push_str(&format!("{vname:?} => {{ {inner} }}\n"));
                }
            }
        }
        format!(
            "match __c {{\n\
                 ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                     {unit_arms}\
                     __other => ::std::result::Result::Err(::serde::DeError::custom(\
                         format!(\"unknown variant `{{__other}}` for {ty}\"))),\n\
                 }},\n\
                 ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                     let (__tag, __v) = &__entries[0];\n\
                     match __tag.as_str() {{\n\
                         {payload_arms}\
                         __other => ::std::result::Result::Err(::serde::DeError::custom(\
                             format!(\"unknown variant `{{__other}}` for {ty}\"))),\n\
                     }}\n\
                 }}\n\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                     format!(\"expected a variant of {ty}, found {{}}\", __other.kind()))),\n\
             }}"
        )
    }

    fn de_untagged_body(&self, variants: &[Variant]) -> String {
        let ty = &self.name;
        let mut tries = String::new();
        for v in variants {
            let vname = &v.name;
            match &v.shape {
                VariantShape::Unit => {
                    tries.push_str(&format!(
                        "if ::std::matches!(__c, ::serde::Content::Null) {{\n\
                             return ::std::result::Result::Ok(Self::{vname});\n\
                         }}\n"
                    ));
                }
                VariantShape::Tuple(arity) => {
                    let expr = de_tuple_expr(ty, vname, *arity, "__c");
                    tries.push_str(&format!(
                        "if let ::std::result::Result::Ok(__ok) = \
                             (|| -> ::std::result::Result<Self, ::serde::DeError> {{ {expr} }})() {{\n\
                             return ::std::result::Result::Ok(__ok);\n\
                         }}\n"
                    ));
                }
                VariantShape::Struct(fields) => {
                    let inner = de_named_fields_from(ty, fields, &format!("Self::{vname}"), "__c");
                    tries.push_str(&format!(
                        "if let ::std::result::Result::Ok(__ok) = \
                             (|| -> ::std::result::Result<Self, ::serde::DeError> {{ {inner} }})() {{\n\
                             return ::std::result::Result::Ok(__ok);\n\
                         }}\n"
                    ));
                }
            }
        }
        format!(
            "{tries}\
             ::std::result::Result::Err(::serde::DeError::custom(format!(\
                 \"no untagged variant of {ty} matched {{}}\", __c.kind())))"
        )
    }
}

/// `Content::Map(vec![("Tag", inner)])`.
fn tag_map(tag: &str, inner: &str) -> String {
    format!("::serde::Content::Map(::std::vec![(::std::string::String::from({tag:?}), {inner})])")
}

/// Serialize named fields (struct body or struct-variant body).
/// `access` is `"self."` for structs and `""` for variant bindings.
fn ser_named_fields_body(fields: &[Field], access: &str, _unused: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            format!(
                "(::std::string::String::from({name:?}), \
                 ::serde::Serialize::serialize_content(&{access}{name}))"
            )
        })
        .collect();
    format!("::serde::Content::Map(::std::vec![{}])", entries.join(", "))
}

/// Deserialize named fields from the top-level content `__c`.
fn de_named_fields_body(ty: &str, fields: &[Field], constructor: &str) -> String {
    de_named_fields_from(ty, fields, constructor, "__c")
}

/// Deserialize named fields from content expression `src`.
fn de_named_fields_from(ty: &str, fields: &[Field], constructor: &str, src: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| {
            let name = &f.name;
            let helper = if f.default {
                "__field_or_default"
            } else {
                "__field"
            };
            format!("{name}: ::serde::{helper}(__m, {name:?})?")
        })
        .collect();
    format!(
        "let __m = {src}.as_map_for({ty:?})?;\n\
         ::std::result::Result::Ok({constructor} {{ {} }})",
        inits.join(", ")
    )
}

/// Deserialize a tuple variant: arity 1 is serde's newtype form (payload is
/// the inner value), arity ≥ 2 expects a sequence.
fn de_tuple_expr(ty: &str, vname: &str, arity: usize, src: &str) -> String {
    if arity == 1 {
        format!(
            "::std::result::Result::Ok(Self::{vname}(\
                 ::serde::Deserialize::deserialize_content({src})?))"
        )
    } else {
        let label = format!("{ty}::{vname}");
        let items: Vec<String> = (0..arity)
            .map(|k| format!("::serde::Deserialize::deserialize_content(&__s[{k}])?"))
            .collect();
        format!(
            "{{ let __s = {src}.as_seq_for({label:?}, {arity})?;\n\
               ::std::result::Result::Ok(Self::{vname}({})) }}",
            items.join(", ")
        )
    }
}

// ---------------------------------------------------------------------------
// Token-stream parsing helpers
// ---------------------------------------------------------------------------

/// Does this attribute group (the `[...]` after `#`) say `serde(<word>)`?
fn attr_is_serde_word(stream: TokenStream, word: &str) -> bool {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    match (tokens.first(), tokens.get(1)) {
        (Some(TokenTree::Ident(name)), Some(TokenTree::Group(args)))
            if name.to_string() == "serde" =>
        {
            args.stream()
                .into_iter()
                .any(|t| matches!(&t, TokenTree::Ident(id) if id.to_string() == word))
        }
        _ => false,
    }
}

/// Split a token list on top-level commas, tracking `<...>` depth so that
/// generic arguments (`BTreeMap<String, Value>`) do not split.
fn split_top_level_commas(tokens: Vec<TokenTree>) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut cur = Vec::new();
    let mut angle_depth = 0i32;
    for t in tokens {
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                out.push(std::mem::take(&mut cur));
                continue;
            }
            _ => {}
        }
        cur.push(t);
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Parse `{ field: Ty, ... }` contents into fields, noting which carry
/// `#[serde(default)]`.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut fields = Vec::new();
    for field_tokens in split_top_level_commas(stream.into_iter().collect()) {
        let mut i = 0usize;
        let mut default = false;
        // Attributes: record #[serde(default)], skip the rest (doc
        // comments etc.).
        while matches!(&field_tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            if let Some(TokenTree::Group(g)) = field_tokens.get(i + 1) {
                if attr_is_serde_word(g.stream(), "default") {
                    default = true;
                }
            }
            i += 2;
        }
        if field_tokens.get(i).is_none() {
            continue; // trailing comma
        }
        // Visibility.
        if matches!(&field_tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
            i += 1;
            if matches!(&field_tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        match (field_tokens.get(i), field_tokens.get(i + 1)) {
            (Some(TokenTree::Ident(name)), Some(TokenTree::Punct(colon)))
                if colon.as_char() == ':' =>
            {
                fields.push(Field {
                    name: name.to_string(),
                    default,
                });
            }
            other => return Err(format!("unsupported field syntax: {other:?}")),
        }
    }
    Ok(fields)
}

/// Parse enum body contents into variants.
fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut variants = Vec::new();
    for var_tokens in split_top_level_commas(stream.into_iter().collect()) {
        let mut i = 0usize;
        while matches!(&var_tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(tree) = var_tokens.get(i) else {
            continue; // trailing comma
        };
        let name = match tree {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("unsupported variant syntax: {other:?}")),
        };
        i += 1;
        let shape = match var_tokens.get(i) {
            None => VariantShape::Unit,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                VariantShape::Struct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let elems = split_top_level_commas(g.stream().into_iter().collect());
                let arity = elems.iter().filter(|e| !e.is_empty()).count();
                VariantShape::Tuple(arity)
            }
            Some(other) => {
                return Err(format!(
                    "unsupported tokens after variant {name}: {other:?} \
                     (discriminants are not supported)"
                ))
            }
        };
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}
