//! Offline shim of the `criterion` crate.
//!
//! Implements the subset used by this workspace's `[[bench]]` targets:
//! `Criterion::{bench_function, benchmark_group}`, `BenchmarkGroup`
//! with `sample_size`/`bench_function`/`finish`, `Bencher::{iter,
//! iter_batched}`, `BatchSize`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Instead of criterion's statistical sampling, each benchmark runs a
//! short calibration pass followed by a fixed number of timed batches
//! and reports median ns/iter on stdout. This keeps `cargo bench`
//! functional (and the targets compiling) without external
//! dependencies; serious measurements in this repo go through the
//! dedicated `crates/bench` binaries instead.

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup; the shim treats all variants
/// identically (setup is excluded from timing either way).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    /// Target wall-clock budget per measurement.
    budget: Duration,
    /// Collected ns/iter samples, one per batch.
    samples: Vec<f64>,
}

impl Bencher {
    fn new(budget: Duration) -> Self {
        Bencher {
            budget,
            samples: Vec::new(),
        }
    }

    /// Time `routine` repeatedly; the return value is black-boxed so the
    /// optimizer cannot delete the work.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that takes roughly 1/8 of
        // the budget, starting from a single call.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.budget / 8 || iters >= 1 << 20 {
                break;
            }
            iters = iters.saturating_mul(2);
        }
        // Measure a handful of batches at the calibrated count.
        for _ in 0..8 {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters as f64;
            self.samples.push(ns);
        }
    }

    /// Like `iter`, but `setup` output feeds each routine call and setup
    /// time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..16 {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed().as_nanos() as f64);
        }
    }

    fn report(&mut self, id: &str) {
        if self.samples.is_empty() {
            println!("bench {:<48} (no samples)", id);
            return;
        }
        self.samples.sort_by(|a, b| a.total_cmp(b));
        let median = self.samples[self.samples.len() / 2];
        println!("bench {:<48} {:>14.1} ns/iter", id, median);
    }
}

/// Top-level harness entry point.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            budget: Duration::from_millis(200),
        }
    }
}

impl Criterion {
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.budget);
        f(&mut b);
        b.report(id);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's fixed batch count does
    /// not change with the requested sample size.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    pub fn finish(self) {}
}

/// Declares a function that runs each listed benchmark with a fresh
/// `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("shim/trivial", |b| b.iter(|| black_box(1u64 + 1)));
    }

    #[test]
    fn harness_runs() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        trivial(&mut c);
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        });
        group.finish();
    }
}
