//! Offline shim of the `proptest` crate.
//!
//! Implements the subset of the proptest API used by this workspace:
//! `Strategy` + combinators (`prop_map`, `boxed`, `prop_recursive`),
//! `any::<T>()`, range strategies, tuple strategies, `Just`,
//! `prop_oneof!`, `collection::{vec, btree_map}`, `option::of`,
//! regex-like string strategies (`"[a-z]{1,8}"` etc.), the `proptest!`
//! macro with `#![proptest_config(...)]`, and `prop_assert*` /
//! `prop_assume!`.
//!
//! Differences from upstream: generation is deterministic per test case
//! index (no OS entropy), and there is **no shrinking** — a failing case
//! reports the values via the assertion message instead. That is
//! sufficient for the workspace's invariant tests while keeping the
//! shim dependency-free and offline-buildable.

use std::fmt::Debug;
use std::rc::Rc;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

pub mod test_runner {
    /// Deterministic xoshiro256** generator seeded per test case.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl TestRng {
        pub fn from_seed(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            TestRng { s }
        }

        /// Seed stream for the `case`-th generated input of a run.
        pub fn for_case(case: u64) -> Self {
            Self::from_seed(0x5EA2_C0DE_0000_0000 ^ case.wrapping_mul(0x9E37_79B9))
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            // Rejection sampling to remove modulo bias.
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }

        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Outcome of a single property-test case body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// Assertion failure with a rendered message.
        Fail(String),
        /// `prop_assume!` rejected the inputs; case is retried.
        Reject,
    }

    impl TestCaseError {
        pub fn fail<S: Into<String>>(msg: S) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject<S: Into<String>>(_msg: S) -> Self {
            TestCaseError::Reject
        }
    }

    /// Run configuration; only `cases` is honored by the shim.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        pub cases: u32,
        pub max_global_rejects: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig {
                cases,
                ..Default::default()
            }
        }
    }
}

use test_runner::TestRng;

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

pub mod strategy {
    use super::*;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike upstream proptest there is no value-tree/shrinking layer:
    /// `generate` produces the final value directly.
    pub trait Strategy {
        type Value: Debug;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            O: Debug,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool,
        {
            Filter { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                inner: Rc::new(self),
            }
        }

        /// Build a recursive strategy: `self` is the leaf case, `recurse`
        /// wraps an inner strategy into a deeper one. `depth` bounds the
        /// nesting; `_desired_size` and `_expected_branch_size` are
        /// accepted for API compatibility and ignored.
        fn prop_recursive<F, R>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
            R: Strategy<Value = Self::Value> + 'static,
        {
            let mut cur = self.boxed();
            for level in 0..depth {
                // Deeper levels favor the leaf so generated sizes stay small.
                let leaf_weight = 1 + level;
                cur = BoxedStrategy {
                    inner: Rc::new(WeightedUnion {
                        options: vec![(leaf_weight, cur.clone()), (1, recurse(cur).boxed())],
                    }),
                };
            }
            cur
        }
    }

    /// `prop_map` combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, O> Strategy for Map<S, F>
    where
        S: Strategy,
        O: Debug,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// `prop_filter` combinator (bounded rejection sampling).
    pub struct Filter<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool,
    {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1024 {
                let v = self.inner.generate(rng);
                if (self.f)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected 1024 consecutive candidates");
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<T> {
        pub(crate) inner: Rc<dyn Strategy<Value = T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Rc::clone(&self.inner),
            }
        }
    }

    impl<T: Debug> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.generate(rng)
        }
    }

    /// Always produces a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone + Debug>(pub T);

    impl<T: Clone + Debug> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice among boxed alternatives (`prop_oneof!` backend).
    pub struct WeightedUnion<T> {
        pub(crate) options: Vec<(u32, BoxedStrategy<T>)>,
    }

    impl<T: Debug> Strategy for WeightedUnion<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let total: u64 = self.options.iter().map(|(w, _)| *w as u64).sum();
            let mut pick = rng.below(total.max(1));
            for (w, s) in &self.options {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            self.options
                .last()
                .expect("prop_oneof! requires at least one alternative")
                .1
                .generate(rng)
        }
    }

    #[doc(hidden)]
    pub fn __union<T: Debug>(options: Vec<(u32, BoxedStrategy<T>)>) -> WeightedUnion<T> {
        WeightedUnion { options }
    }

    // -- scalar strategies --------------------------------------------------

    macro_rules! impl_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(span);
                    (self.start as i128 + off as i128) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty integer range strategy");
                    let span = (hi as i128 - lo as i128 + 1) as u64;
                    let off = rng.below(span);
                    (lo as i128 + off as i128) as $t
                }
            }
        )*};
    }

    impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl Strategy for std::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for std::ops::Range<f32> {
        type Value = f32;

        fn generate(&self, rng: &mut TestRng) -> f32 {
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    // -- tuple strategies ---------------------------------------------------

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }

    // -- string strategies from regex-ish patterns --------------------------

    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }

    impl Strategy for String {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            super::pattern::generate(self, rng)
        }
    }
}

pub use strategy::{BoxedStrategy, Just, Strategy};

// ---------------------------------------------------------------------------
// Regex-like string generation
// ---------------------------------------------------------------------------

mod pattern {
    use super::test_runner::TestRng;

    #[derive(Debug, Clone)]
    enum Node {
        Literal(char),
        /// Sorted candidate set (positive classes) or excluded set (negated).
        Class {
            chars: Vec<char>,
            negated: bool,
        },
        Group(Vec<Node>),
        Repeat {
            node: Box<Node>,
            min: u32,
            max: u32,
        },
    }

    /// Printable ASCII universe used for negated classes and `.`.
    fn universe() -> impl Iterator<Item = char> {
        (0x20u8..0x7f).map(|b| b as char)
    }

    struct Parser<'a> {
        chars: std::iter::Peekable<std::str::Chars<'a>>,
        pattern: &'a str,
    }

    impl<'a> Parser<'a> {
        fn fail(&self, why: &str) -> ! {
            panic!(
                "proptest shim: unsupported regex pattern {:?}: {}",
                self.pattern, why
            );
        }

        fn parse_escape(&mut self) -> char {
            match self.chars.next() {
                Some('n') => '\n',
                Some('t') => '\t',
                Some('r') => '\r',
                Some(c) if !c.is_alphanumeric() => c,
                Some(c) => self.fail(&format!("escape \\{}", c)),
                None => self.fail("dangling backslash"),
            }
        }

        fn parse_class(&mut self) -> Node {
            let mut negated = false;
            if self.chars.peek() == Some(&'^') {
                self.chars.next();
                negated = true;
            }
            let mut chars: Vec<char> = Vec::new();
            let mut first = true;
            loop {
                let c = match self.chars.next() {
                    Some(']') if !first => break,
                    Some('\\') => self.parse_escape(),
                    Some(c) => c,
                    None => self.fail("unterminated character class"),
                };
                first = false;
                // Range like `a-z` — only when `-` is followed by a non-`]`.
                if self.chars.peek() == Some(&'-') {
                    let mut ahead = self.chars.clone();
                    ahead.next();
                    if ahead.peek().is_some() && ahead.peek() != Some(&']') {
                        self.chars.next(); // consume '-'
                        let hi = match self.chars.next() {
                            Some('\\') => self.parse_escape(),
                            Some(h) => h,
                            None => self.fail("unterminated range"),
                        };
                        if (c as u32) > (hi as u32) {
                            self.fail("inverted range");
                        }
                        for u in (c as u32)..=(hi as u32) {
                            if let Some(ch) = char::from_u32(u) {
                                chars.push(ch);
                            }
                        }
                        continue;
                    }
                }
                chars.push(c);
            }
            chars.sort_unstable();
            chars.dedup();
            Node::Class { chars, negated }
        }

        fn parse_quantifier(&mut self, node: Node) -> Node {
            match self.chars.peek() {
                Some('{') => {
                    self.chars.next();
                    let mut min_s = String::new();
                    let mut max_s = String::new();
                    let mut in_max = false;
                    loop {
                        match self.chars.next() {
                            Some('}') => break,
                            Some(',') => in_max = true,
                            Some(d) if d.is_ascii_digit() => {
                                if in_max {
                                    max_s.push(d)
                                } else {
                                    min_s.push(d)
                                }
                            }
                            _ => self.fail("bad {n,m} quantifier"),
                        }
                    }
                    let min: u32 = min_s.parse().unwrap_or(0);
                    let max: u32 = if !in_max {
                        min
                    } else if max_s.is_empty() {
                        min + 8
                    } else {
                        max_s.parse().unwrap_or(min)
                    };
                    Node::Repeat {
                        node: Box::new(node),
                        min,
                        max,
                    }
                }
                Some('?') => {
                    self.chars.next();
                    Node::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: 1,
                    }
                }
                Some('*') => {
                    self.chars.next();
                    Node::Repeat {
                        node: Box::new(node),
                        min: 0,
                        max: 8,
                    }
                }
                Some('+') => {
                    self.chars.next();
                    Node::Repeat {
                        node: Box::new(node),
                        min: 1,
                        max: 8,
                    }
                }
                _ => node,
            }
        }

        fn parse_sequence(&mut self, in_group: bool) -> Vec<Node> {
            let mut out = Vec::new();
            loop {
                let atom = match self.chars.peek().copied() {
                    None => {
                        if in_group {
                            self.fail("unterminated group");
                        }
                        break;
                    }
                    Some(')') if in_group => {
                        self.chars.next();
                        break;
                    }
                    Some('[') => {
                        self.chars.next();
                        self.parse_class()
                    }
                    Some('(') => {
                        self.chars.next();
                        Node::Group(self.parse_sequence(true))
                    }
                    Some('.') => {
                        self.chars.next();
                        Node::Class {
                            chars: universe().collect(),
                            negated: false,
                        }
                    }
                    Some('\\') => {
                        self.chars.next();
                        Node::Literal(self.parse_escape())
                    }
                    Some('|') => self.fail("alternation is not supported"),
                    Some(c) => {
                        self.chars.next();
                        Node::Literal(c)
                    }
                };
                out.push(self.parse_quantifier(atom));
            }
            out
        }
    }

    fn emit(node: &Node, rng: &mut TestRng, out: &mut String) {
        match node {
            Node::Literal(c) => out.push(*c),
            Node::Class { chars, negated } => {
                if *negated {
                    let candidates: Vec<char> = universe().filter(|c| !chars.contains(c)).collect();
                    let i = rng.below(candidates.len() as u64) as usize;
                    out.push(candidates[i]);
                } else {
                    assert!(!chars.is_empty(), "empty character class");
                    let i = rng.below(chars.len() as u64) as usize;
                    out.push(chars[i]);
                }
            }
            Node::Group(seq) => {
                for n in seq {
                    emit(n, rng, out);
                }
            }
            Node::Repeat { node, min, max } => {
                let n = if max > min {
                    min + rng.below((max - min + 1) as u64) as u32
                } else {
                    *min
                };
                for _ in 0..n {
                    emit(node, rng, out);
                }
            }
        }
    }

    pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
        let mut parser = Parser {
            chars: pattern.chars().peekable(),
            pattern,
        };
        let seq = parser.parse_sequence(false);
        let mut out = String::new();
        for n in &seq {
            emit(n, rng, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;

    /// Types with a canonical "anything goes" strategy.
    pub trait Arbitrary: Sized + Debug {
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    pub struct AnyStrategy<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T> Clone for AnyStrategy<T> {
        fn clone(&self) -> Self {
            AnyStrategy {
                _marker: PhantomData,
            }
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: PhantomData,
        }
    }

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f64 {
        fn arbitrary_value(rng: &mut TestRng) -> f64 {
            // Mix of magnitudes, always finite.
            let mag = [1.0, 1e3, 1e6, 1e-3][(rng.next_u64() % 4) as usize];
            (rng.unit_f64() * 2.0 - 1.0) * mag
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut TestRng) -> char {
            (0x20u8 + (rng.next_u64() % 0x5f) as u8) as char
        }
    }
}

pub use arbitrary::any;

// ---------------------------------------------------------------------------
// Collections / option
// ---------------------------------------------------------------------------

pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::fmt::Debug;
    use std::ops::Range;

    /// Element-count specification accepted by collection strategies.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        pub min: usize,
        pub max: usize, // inclusive
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl SizeRange {
        fn sample(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below((self.max - self.min + 1) as u64) as usize
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    pub struct BTreeMapStrategy<K, V> {
        key: K,
        val: V,
        size: SizeRange,
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord + Debug,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = self.size.sample(rng);
            let mut out = BTreeMap::new();
            // Duplicate keys may make the map smaller than `n`; acceptable.
            for _ in 0..n {
                out.insert(self.key.generate(rng), self.val.generate(rng));
            }
            out
        }
    }

    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        val: V,
        size: impl Into<SizeRange>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy {
            key,
            val,
            size: size.into(),
        }
    }
}

pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            // Some ~75% of the time, like upstream's default weight.
            if rng.next_u64().is_multiple_of(4) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }

    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Weighted/unweighted choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::__union(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::__union(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", l, r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    l, r, format!($($fmt)*)
                ),
            ));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `left != right`\n  both: {:?}", l),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `left != right`\n  both: {:?}\n{}",
                    l, format!($($fmt)*)
                ),
            ));
        }
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $($pat:pat in $strat:expr),+ ; $body:block) => {{
        let __cfg: $crate::test_runner::ProptestConfig = $cfg;
        let mut __case: u64 = 0;
        let mut __ran: u32 = 0;
        let mut __rejects: u32 = 0;
        while __ran < __cfg.cases {
            if __rejects > __cfg.max_global_rejects {
                panic!("proptest shim: too many prop_assume! rejections");
            }
            let mut __rng = $crate::test_runner::TestRng::for_case(__case);
            __case += 1;
            $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
            let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                (move || {
                    $body
                    ::std::result::Result::Ok(())
                })();
            match __outcome {
                ::std::result::Result::Ok(()) => {
                    __ran += 1;
                }
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                    __rejects += 1;
                }
                ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(__msg)) => {
                    panic!("proptest case {} failed: {}", __case - 1, __msg);
                }
            }
        }
    }};
}

/// Shim of `proptest::proptest!`: generates one `#[test]` fn per item,
/// running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            // Callers write `#[test]` themselves (it arrives via `$meta`),
            // matching upstream proptest's macro shape.
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_body!($cfg; $($pat in $strat),+ ; $body);
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::__proptest_body!(
                    $crate::test_runner::ProptestConfig::default();
                    $($pat in $strat),+ ; $body
                );
            }
        )*
    };
}

// ---------------------------------------------------------------------------
// Prelude
// ---------------------------------------------------------------------------

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::test_runner::TestRng;

    #[test]
    fn pattern_generation_respects_classes() {
        for case in 0..200u64 {
            let mut rng = TestRng::for_case(case);
            let s = crate::pattern::generate("[a-z]{1,8}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 8);
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));

            let s = crate::pattern::generate("[^{}]{0,30}", &mut rng);
            assert!(s.len() <= 30);
            assert!(!s.contains('{') && !s.contains('}'));

            let s = crate::pattern::generate("[ab]/[a-d]{1,3}", &mut rng);
            let (l, r) = s.split_once('/').unwrap();
            assert!(l == "a" || l == "b");
            assert!((1..=3).contains(&r.len()));
            assert!(r.chars().all(|c| ('a'..='d').contains(&c)));

            let s = crate::pattern::generate("[a-z]{1,3}( [a-z]{1,3}){0,2}", &mut rng);
            assert!(s.split(' ').count() <= 3);

            let s = crate::pattern::generate("[a-z \\n]{0,10}", &mut rng);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c == ' ' || c == '\n'));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        for case in 0..200u64 {
            let mut rng = TestRng::for_case(case);
            let v = Strategy::generate(&(3i64..17), &mut rng);
            assert!((3..17).contains(&v));
            let v = Strategy::generate(&(0.0f64..1.0), &mut rng);
            assert!((0.0..1.0).contains(&v));
            let v = Strategy::generate(&(5usize..=5), &mut rng);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn determinism_per_case() {
        let strat = crate::collection::vec(0u8..255, 0..20);
        let mut a = TestRng::for_case(7);
        let mut b = TestRng::for_case(7);
        assert_eq!(
            Strategy::generate(&strat, &mut a),
            Strategy::generate(&strat, &mut b)
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn shim_macro_works(x in 0u32..100, s in "[a-c]{2}") {
            prop_assert!(x < 100);
            prop_assert_eq!(s.len(), 2);
        }

        #[test]
        fn shim_assume_works(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(pair in (any::<bool>(), 0i64..10)) {
            // The bool half exercises any::<bool>() generation itself.
            let (_, v) = pair;
            prop_assert!((0..10).contains(&v), "range strategy stays in range");
        }
    }

    #[test]
    fn oneof_and_recursive() {
        #[derive(Debug, Clone)]
        enum T {
            Leaf(u8),
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf(v) => {
                    assert!(*v < 10, "leaf strategy range");
                    1
                }
                T::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let leaf = prop_oneof![(0u8..10).prop_map(T::Leaf), Just(T::Leaf(0))];
        let strat = Strategy::prop_recursive(leaf, 3, 16, 4, |inner| {
            crate::collection::vec(inner, 0..3).prop_map(T::Node)
        });
        for case in 0..100u64 {
            let mut rng = TestRng::for_case(case);
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 4, "depth bound violated: {:?}", t);
        }
    }
}
