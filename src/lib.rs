//! # SPEAR — Structured Prompt Execution and Adaptive Refinement
//!
//! A Rust implementation of *"Making Prompts First-Class Citizens for
//! Adaptive LLM Pipelines"* (CIDR 2026): prompts as structured, versioned,
//! adaptive data, governed by a composable operator algebra over the
//! execution-state triple **(P, C, M)**.
//!
//! This facade crate re-exports the whole workspace:
//!
//! - [`core`] — the prompt algebra, execution state, views, histories,
//!   refinement modes, meta prompts, shadow execution, and replay,
//! - [`kv`] — the versioned key-value substrate backing the stores,
//! - [`llm`] — a deterministic LLM inference simulator with vLLM-style
//!   automatic prefix caching (swap in a real backend by implementing
//!   [`core::LlmClient`]),
//! - [`retrieval`] — a BM25 document engine with structured and
//!   prompt-based retrieval,
//! - [`optimizer`] — operator fusion, the structured prompt cache,
//!   cost-based refinement planning, predictive refinement, and view
//!   selection,
//! - [`serve`] — an admission-controlled serving layer scheduling request
//!   streams onto executor lanes with cache-affinity routing, priority
//!   classes, deadlines, and a seeded open-loop load generator,
//! - [`cluster`] — a sharded multi-node serving fabric: prefix-aware
//!   request placement over simulated nodes, hot-prefix replication for
//!   skewed families, and deterministic membership churn,
//! - [`dl`] — SPEAR-DL, the declarative language for views and pipelines,
//! - [`data`] — synthetic datasets and metrics used by the benchmarks.
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use spear::core::prelude::*;
//!
//! let views = ViewCatalog::new();
//! views.register(
//!     ViewDef::new("qa", "Highlight any use of {{drug}}.\nNotes: {{ctx:notes}}")
//!         .with_param(ParamSpec::required("drug")),
//! );
//! let runtime = Runtime::builder()
//!     .llm(Arc::new(EchoLlm::default()))
//!     .views(views)
//!     .build();
//!
//! let pipeline = Pipeline::builder("demo")
//!     .create_from_view(
//!         "qa_prompt",
//!         "qa",
//!         [("drug".to_string(), Value::from("Enoxaparin"))].into_iter().collect(),
//!     )
//!     .gen("answer_0", "qa_prompt")
//!     .check(Cond::low_confidence(0.7), |b| {
//!         b.refine(
//!             "qa_prompt",
//!             RefAction::Update,
//!             "auto_refine",
//!             Value::Null,
//!             RefinementMode::Auto,
//!         )
//!         .gen("answer_1", "qa_prompt")
//!     })
//!     .build();
//!
//! let mut state = ExecState::new();
//! state.context.set("notes", "enoxaparin 40 mg daily");
//! runtime.execute(&pipeline, &mut state).unwrap();
//! assert!(state.context.contains("answer_0"));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench/`
//! for the harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use spear_cluster as cluster;
pub use spear_core as core;
pub use spear_data as data;
pub use spear_dl as dl;
pub use spear_kv as kv;
pub use spear_llm as llm;
pub use spear_optimizer as optimizer;
pub use spear_retrieval as retrieval;
pub use spear_serve as serve;
