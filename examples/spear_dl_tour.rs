//! SPEAR-DL tour: declare views and an adaptive pipeline in the
//! declarative language (paper §6), compile it, and execute it.
//!
//! Run with: `cargo run --example spear_dl_tour`

use std::sync::Arc;

use spear::core::prelude::*;
use spear::dl;
use spear::llm::{ModelProfile, SimLlm};

const PROGRAM: &str = r#"
# Views are parameterized, versioned, and composable (paper §4.2).
VIEW output_format = "Answer with the label, then ' :: ', then the summary.";

VIEW med_summary(drug, word_limit = 60)
  TAGS [clinical]
  DESC "Medication summary scaffold for one drug"
= "Summarize the patient's medication history and highlight any use of
{{drug}} within a word limit of {{word_limit}}.
{{view:output_format}}
Notes: {{ctx:notes}}";

PIPELINE enoxaparin_qa {
  REF CREATE "qa_prompt" FROM VIEW med_summary(drug = "Enoxaparin");
  GEN "answer_0" USING "qa_prompt";

  # Manual expansion (the derived EXPAND of Table 2).
  EXPAND "qa_prompt" "Include dosage and timing.";

  # Confidence-driven retry, lowered onto CHECK + REF + GEN.
  RETRY "answer" USING "qa_prompt" IF M["confidence"] < 0.9
    WITH auto_refine() MODE AUTO MAX 2;

  # Fallback logic over context membership.
  CHECK "orders" NOT IN C {
    REF CREATE "note" TEXT "No structured orders were retrieved.";
  } ELSE {
    REF CREATE "note" TEXT "Structured orders present.";
  }

  DIFF "qa_prompt" "qa_prompt" INTO "self_diff";
}
"#;

fn main() -> Result<()> {
    // Compile: lexer → parser → core pipeline. Errors carry positions:
    let bad = dl::compile("PIPELINE p { GEN \"a\" \"b\"; }");
    println!("error reporting demo: {}\n", bad.unwrap_err());

    let compiled = dl::compile(PROGRAM).map_err(|e| SpearError::InvalidPipeline(e.to_string()))?;
    println!(
        "compiled {} views and {} pipelines",
        compiled.views.len(),
        compiled.pipelines.len()
    );
    let pipeline = compiled.pipeline("enoxaparin_qa").expect("declared");
    println!("{}", pipeline.describe());

    // Install the declared views, statically validate, and execute.
    let views = ViewCatalog::new();
    compiled.install_views(&views);
    let runtime = Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .views(views)
        .build();
    let issues = compiled.validate(&runtime);
    println!(
        "static validation: {}",
        if issues.is_empty() {
            "clean".to_string()
        } else {
            format!("{issues:?}")
        }
    );

    let mut state = ExecState::new();
    state
        .context
        .set("notes", "enoxaparin 40 mg SC daily for DVT prophylaxis");
    let report = runtime.execute(pipeline, &mut state)?;

    println!(
        "ran {} ops / {} gens; answer_0 = {}",
        report.ops_executed,
        report.gens,
        state.context.get("answer_0").unwrap_or_default().render()
    );
    println!("fallback note: {}", state.prompts.get("note")?.text);
    println!(
        "self-diff similarity: {}",
        state
            .context
            .get("self_diff")
            .and_then(|v| v.path("similarity").cloned())
            .unwrap_or_default()
    );

    // The trace is structured data — serialize it like a query plan log.
    let jsonl = state
        .trace
        .to_jsonl()
        .map_err(|e| SpearError::InvalidPipeline(e.to_string()))?;
    println!("\ntrace has {} events; first three:", jsonl.lines().count());
    for line in jsonl.lines().take(3) {
        println!("  {line}");
    }
    Ok(())
}
