//! The paper's §7 evaluation workload as an application: a tweet
//! summarize+filter pipeline built from a reusable view, refined at
//! runtime, executed with prefix caching, and planned by the
//! selectivity-aware fusion optimizer.
//!
//! Run with: `cargo run --example sentiment_pipeline`

use spear::core::llm::{GenRequest, LlmClient};
use spear::core::prelude::*;
use spear::data::tweets::{self, Sentiment, TweetConfig};
use spear::llm::{ModelProfile, SimLlm};
use spear::optimizer::cost::CostModel;
use spear::optimizer::fusion::{self, PlanEstimates, StageEstimate};
use spear::optimizer::plan::{PhysicalPlan, SemanticPlan};
use spear::optimizer::run_plan;

fn main() -> Result<()> {
    let corpus = tweets::generate(&TweetConfig {
        count: 60,
        negative_fraction: 0.4,
        school_fraction: 0.4,
        hard_fraction: 0.1,
        seed: 7,
    });

    // ---------------------------------------------------------------
    // Part 1: view reuse + prefix caching across a batch of requests.
    // ---------------------------------------------------------------
    let views = ViewCatalog::new();
    views.register(
        ViewDef::new(
            "tweet_filter",
            "Classify the sentiment of the tweet as positive or negative; \
             select negative tweets about {{topic}}. Consider the whole \
             wording, sarcasm, and trailing qualifiers before deciding, and \
             answer with one word using a word limit of 1.\nTweet: {{ctx:tweet}}",
        )
        .with_param(ParamSpec::optional("topic", "any topic")),
    );
    let entry = views.instantiate(
        "tweet_filter",
        [("topic".to_string(), Value::from("school"))]
            .into_iter()
            .collect(),
    )?;
    let identity = entry
        .cache_identity()
        .expect("view-derived prompts have identity");

    let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
    let mut context = Context::new();
    let mut kept = 0usize;
    let mut correct = 0usize;
    for tweet in &corpus {
        context.set("tweet", tweet.text.clone());
        let rendered = entry.render(&context)?;
        let response = llm.generate(&GenRequest::structured(rendered, identity.clone()))?;
        // The refined filter answers yes/no (negative AND school-related).
        let selected = response.text.starts_with("yes");
        if selected {
            kept += 1;
        }
        let truth = tweet.label == Sentiment::Negative && tweet.topic == spear::data::Topic::School;
        if selected == truth {
            correct += 1;
        }
    }
    let stats = llm.cache_stats();
    println!(
        "view-based filter over {} tweets: kept {}, accuracy {:.2}",
        corpus.len(),
        kept,
        correct as f64 / corpus.len() as f64
    );
    println!(
        "prefix cache: {:.1}% of prompt tokens served from cache \
         (the instruction prefix is shared; only each tweet misses)",
        100.0 * stats.hit_rate().unwrap_or(0.0)
    );

    // ---------------------------------------------------------------
    // Part 2: the fusion optimizer deciding sequential vs fused plans.
    // ---------------------------------------------------------------
    let items: Vec<String> = corpus.iter().map(|t| t.text.clone()).collect();
    for (name, plan) in [
        (
            "Map→Filter",
            SemanticPlan::map_then_filter(
                "Clean up the tweet and summarize the remaining content.",
                "Classify the sentiment of the tweet as positive or negative \
                 and keep only negative tweets; state a justification.",
            ),
        ),
        (
            "Filter→Map",
            SemanticPlan::filter_then_map(
                "Classify the sentiment of the tweet as positive or negative \
                 and keep only negative tweets; state a justification.",
                "Clean up the tweet and summarize the remaining content.",
            ),
        ),
    ] {
        let seq_engine = std::sync::Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
        let seq = run_plan(seq_engine, &PhysicalPlan::sequential(&plan), &items)?;
        let fused_engine = std::sync::Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
        let fused = run_plan(fused_engine, &PhysicalPlan::fused(&plan), &items)?;

        // Ask the optimizer what it would have chosen, from the observed
        // token profile and selectivity.
        let selectivity = seq.selectivity().unwrap_or(0.5);
        let per = |usage: spear::core::TokenUsage, calls: u64| StageEstimate {
            prompt_tokens: usage.prompt_tokens as f64 / calls.max(1) as f64,
            cached_fraction: 0.0,
            decode_tokens: usage.completion_tokens as f64 / calls.max(1) as f64,
        };
        let decision = fusion::decide(
            &plan,
            &PlanEstimates {
                n_items: items.len() as f64,
                selectivity,
                per_stage: per(seq.usage, seq.gen_calls),
                fused: per(fused.usage, fused.gen_calls),
            },
            &CostModel::default(),
        );
        println!(
            "\n{name} (selectivity {:.0}%): sequential {:.1}s, fused {:.1}s \
             → measured gain {:+.1}%",
            selectivity * 100.0,
            seq.latency.as_secs_f64(),
            fused.latency.as_secs_f64(),
            100.0 * (seq.latency.as_secs_f64() - fused.latency.as_secs_f64())
                / seq.latency.as_secs_f64(),
        );
        println!("optimizer decision: {}", decision.reason);
    }
    Ok(())
}
