//! Quickstart: a view-based prompt, a generation, and a confidence-driven
//! automatic refinement — the smallest complete SPEAR pipeline.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use spear::core::prelude::*;
use spear::llm::{ModelProfile, SimLlm};

fn main() -> Result<()> {
    // 1. Register a parameterized prompt view (paper §4.2). Views are the
    //    unit of reuse: named, versioned, and instantiable with arguments.
    let views = ViewCatalog::new();
    views.register(
        ViewDef::new(
            "med_summary",
            "Summarize the patient's medication history and highlight any \
             use of {{drug}}.\nNotes: {{ctx:notes}}",
        )
        .with_param(ParamSpec::required("drug"))
        .with_tag("clinical"),
    );

    // 2. Build a runtime over the simulated LLM backend. Swap in any
    //    backend by implementing `spear::core::LlmClient`.
    let runtime = Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .views(views)
        .build();

    // 3. Compose a pipeline from the prompt algebra: REF creates the prompt
    //    from the view, GEN invokes the model, and the derived RETRY
    //    pattern (CHECK + REF + GEN) refines automatically when confidence
    //    is low (paper Table 1, "Confidence-Based Retry").
    let pipeline = Pipeline::builder("quickstart")
        .create_from_view(
            "qa_prompt",
            "med_summary",
            [("drug".to_string(), Value::from("Enoxaparin"))]
                .into_iter()
                .collect(),
        )
        .retry_gen(
            "answer",
            "qa_prompt",
            Cond::low_confidence(0.7),
            "auto_refine",
            Value::Null,
            RefinementMode::Auto,
            2,
        )
        .build();
    println!("{}", pipeline.describe());

    // EXPLAIN the plan before running it — cost estimates and optimization
    // hints, "instrumented like query plans" (paper §9).
    let (plan_text, _) = spear::optimizer::explain::explain(
        &pipeline,
        &spear::optimizer::cost::CostModel::default(),
        &spear::optimizer::explain::ExplainAssumptions::default(),
    );
    println!("{plan_text}");

    // 4. Execute against the state triple (P, C, M).
    let mut state = ExecState::new();
    state.context.set(
        "notes",
        "Patient started on enoxaparin 40 mg SC daily for DVT prophylaxis; \
         also on lisinopril 10 mg.",
    );
    let report = runtime.execute(&pipeline, &mut state)?;

    println!(
        "executed {} ops ({} generations, {} refinements) in {:.0} ms simulated",
        report.ops_executed,
        report.gens,
        report.refs,
        report.latency.as_secs_f64() * 1e3
    );
    println!(
        "answer_0: {}",
        state.context.get("answer_0").unwrap_or_default().render()
    );
    println!(
        "confidence: {:.2}",
        state
            .metadata
            .get("confidence")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    );

    // 5. The prompt's full evolution is first-class data (paper §4.3).
    let entry = state.prompts.get("qa_prompt")?;
    println!("\nprompt history of \"qa_prompt\" (v{}):", entry.version);
    for rec in &entry.ref_log {
        println!("  {}", rec.summary());
    }
    Ok(())
}
