//! Prompt management deep-dive: the three refinement modes, prompt
//! histories, rollback, DIFF, shadow execution, and meta-analysis of which
//! refiners actually help (paper §4.1–§4.4, §6).
//!
//! Run with: `cargo run --example adaptive_retry`

use std::sync::Arc;

use spear::core::prelude::*;
use spear::core::shadow::ShadowDiff;
use spear::core::{meta, replay};
use spear::llm::{ModelProfile, SimLlm};

fn main() -> Result<()> {
    let runtime = Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .build();
    let mut state = ExecState::new();
    state
        .context
        .set("notes", "enoxaparin 40 mg SC daily for DVT prophylaxis");

    // One pipeline exercising all three refinement modes on one prompt.
    let pipeline = Pipeline::builder("three_modes")
        .create_text(
            "qa_prompt",
            "Summarize the medication history and highlight any use of \
             Enoxaparin.\nNotes: {{ctx:notes}}",
            RefinementMode::Manual,
        )
        .gen("answer_0", "qa_prompt")
        // Manual: the developer appends domain knowledge (paper §4.1).
        .refine(
            "qa_prompt",
            RefAction::Append,
            "append",
            Value::from("Include lab values like D-dimer and the provider rationale."),
            RefinementMode::Manual,
        )
        // Assisted: high-level intent, LLM produces the rewrite.
        .refine(
            "qa_prompt",
            RefAction::Update,
            "llm_rewrite",
            Value::from("highlight PE-related justification"),
            RefinementMode::Assisted,
        )
        .gen("answer_1", "qa_prompt")
        // Automatic: signal-driven hint injection on low confidence.
        .check(Cond::low_confidence(0.95), |b| {
            b.refine(
                "qa_prompt",
                RefAction::Update,
                "auto_refine",
                Value::Null,
                RefinementMode::Auto,
            )
            .gen("answer_2", "qa_prompt")
        })
        .build();
    runtime.execute(&pipeline, &mut state)?;

    let entry = state.prompts.get("qa_prompt")?;
    println!("prompt evolved through {} versions:", entry.version);
    for rec in &entry.ref_log {
        println!("  {}", rec.summary());
    }

    // Replay and verify the history (paper §6 "refinement replay").
    replay::verify(&entry)?;
    let v2 = replay::replay_to(&entry, 2)?;
    println!(
        "\nreplayed v2 text starts: {:?}…",
        &v2.text[..60.min(v2.text.len())]
    );

    // DIFF between versions (derived operator, Table 2).
    let d = state.prompts.diff_versions("qa_prompt", 1, entry.version)?;
    println!(
        "diff v1 → v{}: +{} lines, -{} lines, similarity {:.2}",
        entry.version, d.added, d.removed, d.similarity
    );

    // Rollback: the history is append-only, so rolling back *adds* a step.
    state.prompts.rollback("qa_prompt", 2, 99)?;
    let rolled = state.prompts.get("qa_prompt")?;
    println!(
        "after rollback to v2: now v{} with {} history records",
        rolled.version,
        rolled.ref_log.len()
    );

    // Shadow execution (paper §6): trial a different refinement strategy
    // against a cloned state; the primary is untouched.
    let variant = Pipeline::builder("shadow_variant")
        .refine(
            "qa_prompt",
            RefAction::Update,
            "inject_example",
            map([
                ("input", Value::from("enoxaparin 60 mg nightly")),
                (
                    "output",
                    Value::from("Enoxaparin use documented: 60 mg nightly"),
                ),
            ]),
            RefinementMode::Manual,
        )
        .gen("shadow_answer", "qa_prompt")
        .build();
    let shadow = runtime.shadow_execute(&variant, &state)?;
    let diff = ShadowDiff::between(&state, &shadow.state);
    println!(
        "\nshadow run: {} changed prompts, {} new context keys, \
         confidence delta {:?}",
        diff.changed_prompts.len(),
        diff.changed_context_keys.len(),
        diff.confidence_delta
    );
    assert!(
        !state.context.contains("shadow_answer"),
        "primary untouched"
    );

    // Meta-analysis (paper §4.4): which refiners raise confidence?
    let stats = meta::analyze_refiners(&state.prompts);
    println!("\nrefiner effectiveness mined from ref_logs:");
    for s in &stats {
        println!(
            "  {:12} applications={} avg_gain={:?}",
            s.f_name, s.applications, s.avg_gain
        );
    }
    if let Some(best) = meta::recommend(&stats) {
        println!("recommended refiner: {}", best.f_name);
    }
    Ok(())
}
