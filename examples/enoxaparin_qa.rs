//! The paper's §2 use case end-to-end: an Enoxaparin QA pipeline over
//! clinical notes with per-note-type view dispatch, confidence-based
//! retry, missing-order retrieval, and a delegated evidence check.
//!
//! Run with: `cargo run --example enoxaparin_qa`

use std::sync::Arc;

use spear::core::agent::EvidenceValidator;
use spear::core::prelude::*;
use spear::data::{clinical, ClinicalConfig};
use spear::llm::{ModelProfile, SimLlm};
use spear::retrieval::doc_store_from_notes;

fn main() -> Result<()> {
    // Synthetic clinical cohort (DESIGN.md substitution for gated notes).
    let cohort = clinical::generate(&ClinicalConfig {
        patients: 20,
        ..ClinicalConfig::default()
    });
    let patient = cohort
        .truth
        .iter()
        .find(|t| t.received && t.within_48h)
        .expect("cohort contains a recent Enoxaparin patient");
    println!(
        "patient {} — ground truth: dose {:?} mg, within 48h: {}",
        patient.patient_id, patient.dose_mg, patient.within_48h
    );

    // Per-note-type views (paper §4.2: "different types of input notes may
    // invoke different views").
    let views = ViewCatalog::new();
    views.register(
        ViewDef::new(
            "discharge_summary",
            "Summarize the patient's medication history and highlight any \
             use of {{drug}}, emphasizing medications, hospital course, and \
             follow-up.\nNotes: {{ctx:notes_text}}",
        )
        .with_param(ParamSpec::required("drug"))
        .with_tag("discharge"),
    );
    views.register(
        ViewDef::new(
            "nursing_note",
            "Review the nursing observations and highlight any administration \
             of {{drug}}, including timing and care delivered.\nNotes: \
             {{ctx:notes_text}}",
        )
        .with_param(ParamSpec::required("drug"))
        .with_tag("nursing"),
    );

    // Retrieval substrate: BM25 document store over the cohort's notes.
    let doc_store = Arc::new(doc_store_from_notes(&cohort.notes));

    let runtime = Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .retriever("clinical_notes", doc_store.clone())
        .retriever("order_lookup", doc_store)
        .agent(
            "validation_agent",
            Arc::new(EvidenceValidator {
                evidence_key: "notes_text".into(),
            }),
        )
        .views(views)
        .build();

    // Structured retrieval: this patient's notes from the last 72 hours
    // (paper §2's `RET["order_lookup", patient_id, time_window]`).
    let mut filters = std::collections::BTreeMap::new();
    filters.insert(
        "patient_id".to_string(),
        Value::from(patient.patient_id.clone()),
    );
    filters.insert("max_age_hours".to_string(), Value::from(200));

    let pipeline = Pipeline::builder("enoxaparin_qa")
        // Retrieve this patient's notes.
        .ret_structured("clinical_notes", filters.clone(), "notes", 10)
        // Construct the QA prompt from the discharge view.
        .create_from_view(
            "qa_prompt",
            "discharge_summary",
            [("drug".to_string(), Value::from("Enoxaparin"))]
                .into_iter()
                .collect(),
        )
        // Initial answer + confidence retry with the auto refiner.
        .retry_gen(
            "answer",
            "qa_prompt",
            Cond::low_confidence(0.8),
            "auto_refine",
            Value::Null,
            RefinementMode::Auto,
            2,
        )
        // Missing-order retrieval (Table 1: `CHECK["orders" not in C]`).
        .check(Cond::NotInContext("orders".into()), |b| {
            b.op(Op::Ret {
                source: "order_lookup".into(),
                query: RetrievalQuery::Structured(filters.clone()),
                prompt: None,
                into: "orders".into(),
                limit: 5,
            })
        })
        // Delegated evidence check (Table 1: DELEGATE → C["evidence_score"]).
        .delegate(
            "validation_agent",
            PayloadSpec::CtxKey("answer_0".into()),
            "evidence_score",
        )
        .build();

    let mut state = ExecState::new();
    // Flatten retrieved notes into the text the views interpolate.
    // (A REF with ctx_writes could do this inside the pipeline; doing it in
    // the host shows the two layers interoperating.)
    let runtime_report = {
        // First run RET alone so we can flatten, then run the rest.
        let ret_only = Pipeline::builder("fetch")
            .ret_structured("clinical_notes", filters.clone(), "notes", 10)
            .build();
        runtime.execute(&ret_only, &mut state)?;
        let notes_text = state
            .context
            .get("notes")
            .and_then(|v| {
                v.as_list().map(|docs| {
                    docs.iter()
                        .filter_map(|d| d.path("text").and_then(Value::as_str).map(str::to_string))
                        .collect::<Vec<_>>()
                        .join("\n")
                })
            })
            .unwrap_or_default();
        state.context.set("notes_text", notes_text);
        runtime.execute(&pipeline, &mut state)?
    };

    println!(
        "\npipeline ran {} ops, {} generations, {} checks taken",
        runtime_report.ops_executed, runtime_report.gens, runtime_report.checks_taken
    );
    println!(
        "answer_0: {}",
        state.context.get("answer_0").unwrap_or_default().render()
    );
    println!(
        "evidence_score: {:.2}",
        state
            .context
            .get("evidence_score")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    );
    println!(
        "orders retrieved: {}",
        state
            .context
            .get("orders")
            .and_then(|v| v.as_list().map(<[Value]>::len))
            .unwrap_or(0)
    );

    // Introspection: the prompt's provenance and the meta prompt SPEAR
    // would feed back to an LLM for meta-optimization (paper §4.4).
    let entry = state.prompts.get("qa_prompt")?;
    println!("\n--- meta prompt (paper §4.4) ---");
    println!(
        "{}",
        spear::core::meta::meta_prompt_for("qa_prompt", &entry)
    );
    Ok(())
}
