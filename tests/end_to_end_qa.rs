//! Cross-crate integration: the §2 Enoxaparin QA pipeline wired end to end
//! over the real substrates — synthetic cohort (`spear-data`), BM25
//! retrieval (`spear-retrieval`), simulated inference with prefix caching
//! (`spear-llm`), and the core runtime with views, retries, delegation,
//! tracing, and shadow execution.

use std::collections::BTreeMap;
use std::sync::Arc;

use spear::core::agent::EvidenceValidator;
use spear::core::prelude::*;
use spear::core::trace::TraceKind;
use spear::data::{clinical, ClinicalConfig};
use spear::llm::{ModelProfile, SimLlm};
use spear::retrieval::doc_store_from_notes;

fn build_runtime(cohort: &spear::data::Cohort) -> Runtime {
    let views = ViewCatalog::new();
    views.register(
        ViewDef::new(
            "discharge_summary",
            "Summarize the patient's medication history and highlight any use \
             of {{drug}}.\nNotes: {{ctx:notes_text}}",
        )
        .with_param(ParamSpec::required("drug"))
        .with_tag("discharge"),
    );
    let docs = Arc::new(doc_store_from_notes(&cohort.notes));
    Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .retriever("clinical_notes", docs)
        .agent(
            "validation_agent",
            Arc::new(EvidenceValidator {
                evidence_key: "notes_text".into(),
            }),
        )
        .views(views)
        .build()
}

fn patient_filters(patient_id: &str) -> BTreeMap<String, Value> {
    let mut filters = BTreeMap::new();
    filters.insert("patient_id".to_string(), Value::from(patient_id));
    filters
}

#[test]
fn clinical_pipeline_answers_with_grounded_evidence() {
    let cohort = clinical::generate(&ClinicalConfig::default());
    let runtime = build_runtime(&cohort);
    let on_drug = cohort.truth.iter().find(|t| t.received).unwrap();

    let mut state = ExecState::new();
    // Stage 1: retrieve and flatten this patient's notes.
    let fetch = Pipeline::builder("fetch")
        .ret_structured(
            "clinical_notes",
            patient_filters(&on_drug.patient_id),
            "notes",
            10,
        )
        .build();
    runtime.execute(&fetch, &mut state).unwrap();
    let notes = state.context.get("notes").unwrap();
    let notes_text: String = notes
        .as_list()
        .unwrap()
        .iter()
        .filter_map(|d| d.path("text").and_then(Value::as_str).map(str::to_string))
        .collect::<Vec<_>>()
        .join("\n");
    assert_eq!(notes.as_list().unwrap().len(), 3, "all three note types");
    state.context.set("notes_text", notes_text);

    // Stage 2: QA with retry + delegated validation.
    let qa = Pipeline::builder("qa")
        .create_from_view(
            "qa_prompt",
            "discharge_summary",
            [("drug".to_string(), Value::from("Enoxaparin"))]
                .into_iter()
                .collect(),
        )
        .retry_gen(
            "answer",
            "qa_prompt",
            Cond::low_confidence(0.8),
            "auto_refine",
            Value::Null,
            RefinementMode::Auto,
            2,
        )
        .delegate(
            "validation_agent",
            PayloadSpec::CtxKey("answer_0".into()),
            "evidence_score",
        )
        .build();
    let report = runtime.execute(&qa, &mut state).unwrap();

    // The answer quotes the dose the generator planted.
    let answer = state.context.get("answer_0").unwrap();
    let dose = on_drug.dose_mg.unwrap();
    assert!(
        answer.as_str().unwrap().contains(&format!("{dose} mg")),
        "answer {:?} should quote the {dose} mg dose",
        answer
    );
    // Delegated evidence check scores high (the answer is extractive).
    let score = state
        .context
        .get("evidence_score")
        .unwrap()
        .as_f64()
        .unwrap();
    assert!(score > 0.8, "evidence score {score}");
    assert!(report.gens >= 1);

    // Trace covers every operator class used.
    assert!(state.trace.count(TraceKind::Gen) >= 1);
    assert_eq!(state.trace.count(TraceKind::Delegate), 1);
    assert_eq!(state.trace.count(TraceKind::Error), 0);
}

#[test]
fn patient_without_drug_gets_negative_answer() {
    let cohort = clinical::generate(&ClinicalConfig::default());
    let runtime = build_runtime(&cohort);
    let off_drug = cohort.truth.iter().find(|t| !t.received).unwrap();

    let mut state = ExecState::new();
    let fetch = Pipeline::builder("fetch")
        .ret_structured(
            "clinical_notes",
            patient_filters(&off_drug.patient_id),
            "notes",
            10,
        )
        .build();
    runtime.execute(&fetch, &mut state).unwrap();
    let notes_text: String = state
        .context
        .get("notes")
        .unwrap()
        .as_list()
        .unwrap()
        .iter()
        .filter_map(|d| d.path("text").and_then(Value::as_str).map(str::to_string))
        .collect::<Vec<_>>()
        .join("\n");
    state.context.set("notes_text", notes_text);

    let qa = Pipeline::builder("qa")
        .create_from_view(
            "qa_prompt",
            "discharge_summary",
            [("drug".to_string(), Value::from("Enoxaparin"))]
                .into_iter()
                .collect(),
        )
        .gen("answer_0", "qa_prompt")
        .build();
    runtime.execute(&qa, &mut state).unwrap();
    let answer = state.context.get("answer_0").unwrap();
    assert!(
        answer.as_str().unwrap().contains("No Enoxaparin"),
        "got {answer}"
    );
}

#[test]
fn shadow_execution_keeps_the_primary_clean_across_crates() {
    let cohort = clinical::generate(&ClinicalConfig::default());
    let runtime = build_runtime(&cohort);
    let mut primary = ExecState::new();
    primary.context.set("notes_text", "enoxaparin 80 mg order");
    primary.prompts.define(
        "qa_prompt",
        "Highlight any use of Enoxaparin.\nNotes: {{ctx:notes_text}}",
        "f_base",
        RefinementMode::Manual,
    );
    runtime
        .execute(
            &Pipeline::builder("base")
                .gen("answer_0", "qa_prompt")
                .build(),
            &mut primary,
        )
        .unwrap();

    let variant = Pipeline::builder("variant")
        .expand("qa_prompt", "Think step by step about the dosage.")
        .gen("answer_variant", "qa_prompt")
        .build();
    let shadow = runtime.shadow_execute(&variant, &primary).unwrap();
    let diff = spear::core::shadow::ShadowDiff::between(&primary, &shadow.state);

    assert!(diff.changed_prompts.contains_key("qa_prompt"));
    assert!(!primary.context.contains("answer_variant"));
    assert_eq!(primary.prompts.get("qa_prompt").unwrap().version, 1);
    assert_eq!(shadow.state.prompts.get("qa_prompt").unwrap().version, 2);
    // The hinted variant raises confidence (QA task rewards hints).
    assert!(diff.confidence_delta.unwrap() > 0.0);
}

#[test]
fn prompt_based_retrieval_is_refinable_at_runtime() {
    let cohort = clinical::generate(&ClinicalConfig::default());
    let runtime = build_runtime(&cohort);
    let mut state = ExecState::new();

    // A retrieval prompt lives in P and is refined mid-pipeline: first
    // fetch radiology impressions, then refine toward nursing timing.
    let pipeline = Pipeline::builder("refinable_ret")
        .create_text(
            "ret_prompt",
            "radiology impression pulmonary embolism",
            RefinementMode::Manual,
        )
        .ret_with_prompt("clinical_notes", "ret_prompt", "radiology_hits", 5)
        .refine(
            "ret_prompt",
            RefAction::Update,
            "replace",
            map([
                (
                    "find",
                    Value::from("radiology impression pulmonary embolism"),
                ),
                ("with", Value::from("nursing administered enoxaparin 2100")),
            ]),
            RefinementMode::Manual,
        )
        .ret_with_prompt("clinical_notes", "ret_prompt", "nursing_hits", 5)
        .build();
    runtime.execute(&pipeline, &mut state).unwrap();

    let radiology = state.context.get("radiology_hits").unwrap();
    let nursing = state.context.get("nursing_hits").unwrap();
    assert!(!radiology.as_list().unwrap().is_empty());
    assert!(!nursing.as_list().unwrap().is_empty());
    let top_nursing = nursing.as_list().unwrap()[0]
        .path("text")
        .and_then(Value::as_str)
        .unwrap();
    assert!(
        top_nursing.contains("NURSING"),
        "refined retrieval prompt should surface nursing notes, got {top_nursing:?}"
    );
    // Retrieval-prompt evolution is in the ref_log like any other prompt.
    assert_eq!(state.prompts.get("ret_prompt").unwrap().version, 2);
}
