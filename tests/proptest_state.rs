//! Workspace-level property tests: invariants of the prompt algebra that
//! must hold for *arbitrary* refinement sequences, templates, pipelines,
//! and tokenizer/cache inputs.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;

use spear::core::prelude::*;
use spear::core::replay;
use spear::llm::{ModelProfile, SimLlm, Tokenizer};

/// An arbitrary refinement step against a prompt store.
#[derive(Debug, Clone)]
enum RefStep {
    Update(String),
    Append(String),
    Rollback(u64),
    Clone,
}

fn ref_step() -> impl Strategy<Value = RefStep> {
    prop_oneof![
        "[a-z ]{0,40}".prop_map(RefStep::Update),
        "[a-z ]{1,20}".prop_map(RefStep::Append),
        (1u64..20).prop_map(RefStep::Rollback),
        Just(RefStep::Clone),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any refinement sequence, every entry's history verifies:
    /// versions strictly increase and the final record matches the entry.
    /// Every retained version replays to exactly the text it recorded.
    #[test]
    fn histories_always_verify_and_replay(steps in proptest::collection::vec(ref_step(), 0..30)) {
        let store = PromptStore::new();
        store.define("p", "base text", "f_base", RefinementMode::Manual);
        let mut clones = 0usize;
        for (i, step) in steps.iter().enumerate() {
            match step {
                RefStep::Update(text) => {
                    store.refine(
                        "p", text.clone(), RefAction::Update, "f_up",
                        RefinementMode::Auto, i as u64, None, BTreeMap::new(), None,
                    ).unwrap();
                }
                RefStep::Append(text) => {
                    let current = store.get("p").unwrap();
                    let new = if current.text.is_empty() {
                        text.clone()
                    } else {
                        format!("{}\n{}", current.text, text)
                    };
                    store.refine(
                        "p", new, RefAction::Append, "f_app",
                        RefinementMode::Manual, i as u64, None, BTreeMap::new(), None,
                    ).unwrap();
                }
                RefStep::Rollback(v) => {
                    let current = store.get("p").unwrap();
                    let target = 1 + (v % current.version);
                    store.rollback("p", target, i as u64).unwrap();
                }
                RefStep::Clone => {
                    clones += 1;
                    store.clone_entry("p", format!("clone-{clones}")).unwrap();
                }
            }
        }
        for key in store.keys() {
            let entry = store.get(&key).unwrap();
            replay::verify(&entry).unwrap();
            for rec in &entry.ref_log {
                let replayed = replay::replay_to(&entry, rec.version).unwrap();
                prop_assert_eq!(&replayed.text, &rec.text_after);
                prop_assert_eq!(replayed.version, rec.version);
            }
        }
    }

    /// Rendering a template built from arbitrary literal text with one
    /// placeholder always substitutes exactly the bound value.
    #[test]
    fn template_substitution_is_exact(
        prefix in "[^{}]{0,30}",
        suffix in "[^{}]{0,30}",
        value in "[a-zA-Z0-9 ]{0,20}",
    ) {
        let template = format!("{prefix}{{{{x}}}}{suffix}");
        let entry = PromptEntry::new(&template, "f", RefinementMode::Manual)
            .with_param("x", value.clone());
        let rendered = entry.render(&Context::new()).unwrap();
        prop_assert_eq!(rendered, format!("{prefix}{value}{suffix}"));
    }

    /// The tokenizer's prefix-sharing property: two texts with a common
    /// string prefix ending at a word boundary share at least the token
    /// prefix of that common part.
    #[test]
    fn tokenizer_preserves_word_boundary_prefixes(
        common in "[a-z]{1,8}( [a-z]{1,8}){0,10}",
        a_tail in "[a-z]{1,8}",
        b_tail in "[0-9]{1,8}",
    ) {
        let tok = Tokenizer::new();
        let a = tok.encode(&format!("{common} {a_tail}"));
        let b = tok.encode(&format!("{common} {b_tail}"));
        let common_tokens = tok.count(&common);
        let shared = a.iter().zip(&b).take_while(|(x, y)| x == y).count();
        prop_assert!(shared >= common_tokens);
    }

    /// Engine determinism: the same request on a fresh engine always yields
    /// the identical response, for arbitrary tweet-ish inputs.
    #[test]
    fn engine_is_deterministic_for_arbitrary_inputs(tweet in "[a-zA-Z0-9 #@!.]{1,80}") {
        let req = spear::core::llm::GenRequest::structured(
            format!("Classify the sentiment. Respond with one word.\nTweet: {tweet}"),
            "view:t@1#0/v1",
        );
        let r1 = {
            use spear::core::llm::LlmClient;
            SimLlm::new(ModelProfile::qwen25_7b_instruct()).generate(&req).unwrap()
        };
        let r2 = {
            use spear::core::llm::LlmClient;
            SimLlm::new(ModelProfile::qwen25_7b_instruct()).generate(&req).unwrap()
        };
        prop_assert_eq!(r1, r2);
    }

    /// Executor robustness: arbitrary CHECK nesting over arbitrary signal
    /// values never panics — it either runs or returns a typed error — and
    /// the op budget is never exceeded.
    #[test]
    fn executor_never_panics_on_arbitrary_checks(
        confidence in proptest::option::of(0.0f64..1.0),
        depth in 1usize..6,
        threshold in 0.0f64..1.0,
    ) {
        let rt = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .config(RuntimeConfig {
                max_ops: 64,
                ..RuntimeConfig::default()
            })
            .build();
        let mut state = ExecState::new();
        state.prompts.define("p", "text", "f", RefinementMode::Manual);
        if let Some(c) = confidence {
            state.metadata.set("confidence", c);
        }
        let mut builder = Pipeline::builder("nested");
        for _ in 0..depth {
            builder = builder.check(Cond::low_confidence(threshold), |b| {
                b.expand("p", "x").gen("out", "p")
            });
        }
        let result = rt.execute(&builder.build(), &mut state);
        match result {
            Ok(report) => prop_assert!(report.ops_executed <= 64),
            Err(e) => {
                // Missing confidence makes the comparison incomparable —
                // the only acceptable failure here.
                prop_assert!(matches!(e, SpearError::Condition(_)), "{e}");
                prop_assert!(confidence.is_none());
            }
        }
    }
}
