//! The tentpole invariant, end to end: running the Sentiment140-style
//! workload of `examples/sentiment_pipeline.rs` through the concurrent
//! [`BatchRunner`] produces **byte-identical per-pipeline traces and
//! reports at 1, 2, and 8 workers** for a fixed seed — concurrency changes
//! wall-clock, never results.

use std::sync::Arc;

use spear::core::prelude::*;
use spear::data::tweets::{self, TweetConfig};
use spear::llm::{EngineConfig, ModelProfile, SimLlm};

const N_TWEETS: usize = 48;
const SEED: u64 = 140;

fn corpus() -> Vec<spear::data::Tweet> {
    tweets::generate(&TweetConfig {
        count: N_TWEETS,
        negative_fraction: 0.4,
        school_fraction: 0.4,
        hard_fraction: 0.1,
        seed: 7,
    })
}

/// The example's view: sentiment filter with a topic parameter.
fn views() -> ViewCatalog {
    let views = ViewCatalog::new();
    views.register(
        ViewDef::new(
            "tweet_filter",
            "Classify the sentiment of the tweet as positive or negative; \
             select negative tweets about {{topic}}. Consider the whole \
             wording, sarcasm, and trailing qualifiers before deciding, and \
             answer with one word using a word limit of 1.\nTweet: {{ctx:tweet}}",
        )
        .with_param(ParamSpec::optional("topic", "any topic")),
    );
    views
}

fn runtime() -> (Runtime, Arc<SimLlm>) {
    let llm = Arc::new(SimLlm::with_config(
        ModelProfile::qwen25_7b_instruct(),
        EngineConfig {
            seed: SEED,
            ..EngineConfig::default()
        },
    ));
    let rt = Runtime::builder()
        .llm(llm.clone() as Arc<dyn spear::core::llm::LlmClient>)
        .views(views())
        .build();
    (rt, llm)
}

fn pipeline() -> Arc<Pipeline> {
    Arc::new(
        Pipeline::builder("sentiment_filter")
            .create_from_view(
                "filter_prompt",
                "tweet_filter",
                [("topic".to_string(), Value::from("school"))]
                    .into_iter()
                    .collect(),
            )
            .gen("verdict", "filter_prompt")
            .build(),
    )
}

fn states() -> Vec<ExecState> {
    corpus()
        .iter()
        .map(|tweet| {
            let mut state = ExecState::new();
            state.context.set("tweet", tweet.text.clone());
            state
        })
        .collect()
}

/// Run the whole workload at `workers` and return, per pipeline, the
/// serialized trace and debug-formatted report.
fn run_at(workers: usize) -> Vec<(String, String)> {
    let (rt, llm) = runtime();
    // Warm the shared instruction prefix, as a prior run of the view
    // would have: every pipeline instance then hits it, concurrently.
    let entry = rt
        .views()
        .instantiate(
            "tweet_filter",
            [("topic".to_string(), Value::from("school"))]
                .into_iter()
                .collect(),
        )
        .expect("view registered");
    let mut warm_ctx = Context::new();
    warm_ctx.set("tweet", "");
    llm.warm(&entry.render(&warm_ctx).expect("renders"));

    let runner = BatchRunner::new(workers);
    runner
        .run_states(&rt, &pipeline(), states())
        .into_iter()
        .map(|outcome| {
            let outcome = outcome.expect("pipeline succeeds");
            (
                outcome.state.trace.to_jsonl().expect("serializable trace"),
                format!("{:?}", outcome.report),
            )
        })
        .collect()
}

#[test]
fn traces_and_reports_are_byte_identical_at_1_2_and_8_workers() {
    let one = run_at(1);
    let two = run_at(2);
    let eight = run_at(8);
    assert_eq!(one.len(), N_TWEETS);
    for i in 0..N_TWEETS {
        assert_eq!(
            one[i].0, two[i].0,
            "pipeline {i}: trace differs between 1 and 2 workers"
        );
        assert_eq!(
            one[i].0, eight[i].0,
            "pipeline {i}: trace differs between 1 and 8 workers"
        );
        assert_eq!(
            one[i].1, eight[i].1,
            "pipeline {i}: report differs between 1 and 8 workers"
        );
    }
}

#[test]
fn traces_are_genuinely_cache_dependent() {
    // Guard against the determinism test passing vacuously: the traces
    // must actually embed cache-sensitive numbers (cached_tokens > 0 for
    // warm-prefix pipelines), so identical traces really do prove the
    // cache behaved identically.
    let runs = run_at(4);
    let with_hits = runs
        .iter()
        .filter(|(trace, _)| {
            Trace::from_jsonl(trace)
                .expect("roundtrips")
                .of_kind(TraceKind::Gen)
                .iter()
                .any(|e| {
                    e.detail
                        .path("cached_tokens")
                        .and_then(spear::core::Value::as_i64)
                        .unwrap_or(0)
                        > 0
                })
        })
        .count();
    assert!(
        with_hits == N_TWEETS,
        "all {N_TWEETS} pipelines should hit the warm prefix, got {with_hits}"
    );
}

#[test]
fn aggregate_busy_time_is_worker_count_independent_but_makespan_shrinks() {
    let totals: Vec<(std::time::Duration, std::time::Duration)> = [1usize, 8]
        .iter()
        .map(|&workers| {
            let (rt, llm) = runtime();
            let runner = BatchRunner::new(workers);
            let outcomes = runner.run_states(&rt, &pipeline(), states());
            assert!(outcomes.iter().all(Result::is_ok));
            (llm.clock().elapsed(), llm.clock().max_lane_elapsed())
        })
        .collect();
    let (busy_1, makespan_1) = totals[0];
    let (busy_8, makespan_8) = totals[1];
    assert_eq!(
        busy_1, busy_8,
        "total simulated busy time is a workload property, not a scheduling one"
    );
    assert_eq!(makespan_1, busy_1, "one worker: makespan == busy time");
    assert!(
        makespan_8 < busy_8,
        "eight workers: the busiest lane holds only a slice of the work"
    );
}
