//! Integration: durable prompt stores over the KV substrate's append-only
//! log, recovery after "restart", and prompt-history replay invariants
//! (paper §4.3/§6: versioned stores, structured logging, refinement
//! replay).

use std::collections::BTreeMap;
use std::path::PathBuf;

use spear::core::prelude::*;
use spear::core::replay;
use spear::kv::{DurableStore, JsonlLog, KvStore};

fn temp_path(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spear-it-{name}-{}", std::process::id()));
    p
}

#[test]
fn prompt_entries_survive_a_restart_via_the_kv_log() {
    let path = temp_path("prompt-log");
    let _ = std::fs::remove_file(&path);

    // Session 1: evolve a prompt, mirroring entries into the durable log.
    {
        let log = JsonlLog::open(&path).unwrap();
        let durable: DurableStore<PromptEntry, _> = DurableStore::new(KvStore::new(), log);
        let mut entry = PromptEntry::new(
            "Summarize the medication history.",
            "f_base",
            RefinementMode::Manual,
        );
        durable.put("qa_prompt", entry.clone()).unwrap();
        entry.apply_refinement(
            "Summarize the medication history.\nFocus on dosage.".into(),
            RefAction::Append,
            "f_add_specificity",
            RefinementMode::Manual,
            1,
            None,
            BTreeMap::new(),
            None,
        );
        durable.put("qa_prompt", entry).unwrap();
        durable.sync().unwrap();
    }

    // Session 2: recover the store and verify the entry (including its
    // embedded ref_log) came back intact.
    let recovered: KvStore<PromptEntry> = JsonlLog::recover(&path).unwrap();
    let store = PromptStore::with_backend(recovered);
    let entry = store.get("qa_prompt").unwrap();
    assert_eq!(entry.version, 2);
    assert_eq!(entry.ref_log.len(), 2);
    assert!(entry.text.contains("Focus on dosage."));
    replay::verify(&entry).unwrap();

    // Storage-level versioning also survived: both writes are addressable.
    assert_eq!(store.backend().history("qa_prompt").len(), 2);
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn replay_reconstructs_any_version_after_a_long_evolution() {
    let store = PromptStore::new();
    store.define("p", "v1 text", "f_base", RefinementMode::Manual);
    for v in 2..=10u64 {
        store
            .refine(
                "p",
                format!("v{v} text"),
                RefAction::Update,
                &format!("f_{v}"),
                if v % 2 == 0 {
                    RefinementMode::Auto
                } else {
                    RefinementMode::Assisted
                },
                v,
                Some(format!("M[\"confidence\"] < 0.{v}")),
                BTreeMap::new(),
                None,
            )
            .unwrap();
    }
    let entry = store.get("p").unwrap();
    replay::verify(&entry).unwrap();
    for v in 1..=10u64 {
        let at = replay::replay_to(&entry, v).unwrap();
        assert_eq!(at.text, format!("v{v} text"));
        assert_eq!(at.version, v);
        replay::verify(&at).unwrap();
    }
    // Forks share history up to the fork point.
    let fork = replay::fork_at(&entry, 5).unwrap();
    assert_eq!(fork.ref_log.len(), 5);
    assert!(fork.ref_log[4].note.as_deref().unwrap().contains("forked"));
}

#[test]
fn trace_roundtrips_through_jsonl_for_offline_analysis() {
    use std::sync::Arc;
    let rt = Runtime::builder().llm(Arc::new(EchoLlm::default())).build();
    let mut state = ExecState::new();
    let pipeline = Pipeline::builder("traced")
        .create_text("p", "Classify the note.", RefinementMode::Manual)
        .gen("a", "p")
        .check(Cond::low_confidence(0.99), |b| b.expand("p", "hint"))
        .gen("b", "p")
        .build();
    rt.execute(&pipeline, &mut state).unwrap();

    let jsonl = state.trace.to_jsonl().unwrap();
    let parsed = spear::core::trace::Trace::from_jsonl(&jsonl).unwrap();
    assert_eq!(parsed.events(), state.trace.events());
    assert!(jsonl.lines().count() >= 6, "start + 4 ops + nested + end");
}

#[test]
fn rollback_then_replay_is_consistent() {
    let store = PromptStore::new();
    store.define("p", "good version", "f", RefinementMode::Manual);
    store
        .refine(
            "p",
            "regressed version".into(),
            RefAction::Update,
            "f_bad",
            RefinementMode::Auto,
            2,
            None,
            BTreeMap::new(),
            None,
        )
        .unwrap();
    store.rollback("p", 1, 3).unwrap();

    let entry = store.get("p").unwrap();
    assert_eq!(entry.text, "good version");
    assert_eq!(entry.version, 3, "rollback appends rather than erases");
    replay::verify(&entry).unwrap();
    // The regressed state is still replayable for post-mortems.
    assert_eq!(
        replay::replay_to(&entry, 2).unwrap().text,
        "regressed version"
    );
}

#[test]
fn prompt_store_with_persister_survives_restart_transparently() {
    use std::sync::Arc;
    let path = temp_path("store-persister");
    let _ = std::fs::remove_file(&path);

    // Session 1: a durable PromptStore used through its normal API —
    // nothing in the pipeline code knows about durability.
    {
        let log = Arc::new(JsonlLog::open(&path).unwrap());
        let store = PromptStore::new().with_persister(log);
        store.define(
            "qa_prompt",
            "Summarize the medication history.",
            "f_base",
            RefinementMode::Manual,
        );
        store
            .refine(
                "qa_prompt",
                "Summarize the medication history.\nFocus on dosage.".into(),
                RefAction::Append,
                "f_specificity",
                RefinementMode::Manual,
                1,
                None,
                std::collections::BTreeMap::new(),
                None,
            )
            .unwrap();
        store.clone_entry("qa_prompt", "qa_fork").unwrap();
        store.define("scratch", "temp", "f", RefinementMode::Manual);
        assert!(store.remove("scratch"));
        store.sync().unwrap();
    }

    // Session 2: full recovery, including clones and deletes.
    let recovered = PromptStore::with_backend(JsonlLog::recover(&path).unwrap());
    let entry = recovered.get("qa_prompt").unwrap();
    assert_eq!(entry.version, 2);
    assert_eq!(entry.ref_log.len(), 2);
    assert!(recovered.contains("qa_fork"));
    assert!(!recovered.contains("scratch"));
    replay::verify(&entry).unwrap();
    std::fs::remove_file(&path).unwrap();
}
