//! Integration: SPEAR-DL programs compile to core pipelines that execute
//! against the simulated LLM and retrieval substrates, with correct
//! adaptive behaviour (retries, fallbacks, merges, delegation).

use std::sync::Arc;

use spear::core::agent::FnAgent;
use spear::core::prelude::*;
use spear::llm::{ModelProfile, SimLlm};

const PROGRAM: &str = r#"
VIEW qa(drug, word_limit = 60) TAGS [clinical] =
  "Summarize the medication history and highlight any use of {{drug}}
within a word limit of {{word_limit}}.
Notes: {{ctx:notes}}";

PIPELINE adaptive_qa {
  REF CREATE "qa_prompt" FROM VIEW qa(drug = "Enoxaparin");
  GEN "answer_0" USING "qa_prompt";
  RETRY "retry" USING "qa_prompt" IF M["confidence"] < 0.9
    WITH auto_refine() MODE AUTO MAX 2;
  CHECK "orders" NOT IN C {
    RET "order_lookup" INTO "orders" LIMIT 3;
  }
  REF CREATE "fallback" TEXT "State that no medication data was found.";
  MERGE "qa_prompt" "fallback" INTO "final_prompt"
    POLICY BY_SIGNAL("confidence:retry_0", "confidence:fallback");
  DELEGATE "scorer" PAYLOAD C["answer_0"] INTO "score";
}
"#;

fn runtime() -> Runtime {
    Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .retriever(
            "order_lookup",
            Arc::new(InMemoryRetriever::from_texts([
                ("o1", "enoxaparin 40 mg order active"),
                ("o2", "lisinopril 10 mg order active"),
            ])),
        )
        .agent(
            "scorer",
            Arc::new(FnAgent(|payload: &Value, _ctx: &Context| {
                Ok(Value::from(payload.as_str().map_or(0, str::len)))
            })),
        )
        .build()
}

#[test]
fn compiled_program_runs_the_full_adaptive_flow() {
    let compiled = spear::dl::compile(PROGRAM).expect("program compiles");
    let rt = runtime();
    compiled.install_views(rt.views());

    let mut state = ExecState::new();
    state
        .context
        .set("notes", "enoxaparin 40 mg SC daily for DVT prophylaxis");
    let pipeline = compiled.pipeline("adaptive_qa").unwrap();
    let report = rt.execute(pipeline, &mut state).unwrap();

    // The base answer and at least one retry exist (QA confidence without
    // hints sits below 0.9, so the RETRY fires and the auto hint lifts it).
    assert!(state.context.contains("answer_0"));
    assert!(state.context.contains("retry_0"));
    assert!(report.checks_taken >= 2, "retry + missing-orders fallback");

    // The fallback retrieval populated orders.
    let orders = state.context.get("orders").unwrap();
    assert_eq!(orders.as_list().unwrap().len(), 2);

    // MERGE produced a prompt with merge provenance.
    let merged = state.prompts.get("final_prompt").unwrap();
    assert!(matches!(merged.origin, PromptOrigin::Merged { .. }));

    // DELEGATE wrote the agent's output.
    assert!(state.context.get("score").unwrap().as_i64().unwrap() > 0);

    // The view-derived prompt carries its origin and an AUTO record with
    // the triggering condition, straight from the DL text.
    let entry = state.prompts.get("qa_prompt").unwrap();
    assert!(entry.derives_from_view("qa"));
    let auto_recs: Vec<_> = entry
        .ref_log
        .iter()
        .filter(|r| r.mode == RefinementMode::Auto)
        .collect();
    assert!(!auto_recs.is_empty());
    assert!(auto_recs[0]
        .trigger
        .as_deref()
        .unwrap()
        .contains("confidence"));
}

#[test]
fn dl_views_are_versioned_on_reinstall() {
    let compiled = spear::dl::compile(PROGRAM).unwrap();
    let catalog = ViewCatalog::new();
    compiled.install_views(&catalog);
    compiled.install_views(&catalog);
    assert_eq!(catalog.get("qa").unwrap().version, 2);
    // Old version retrievable.
    assert!(catalog.get_version("qa", 1).is_ok());
}

#[test]
fn dl_errors_surface_with_positions() {
    let err = spear::dl::compile("PIPELINE p {\n  GEN \"a\";\n}").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("2:"), "line number in {msg}");
    assert!(msg.contains("USING"));
}

#[test]
fn executing_a_dl_pipeline_without_its_views_fails_cleanly() {
    let compiled = spear::dl::compile(PROGRAM).unwrap();
    let rt = Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .build(); // views never installed
    let mut state = ExecState::new();
    state.context.set("notes", "x");
    let err = rt
        .execute(compiled.pipeline("adaptive_qa").unwrap(), &mut state)
        .unwrap_err();
    assert!(matches!(err, SpearError::ViewNotFound(_)));
}
