//! Integration: the optimizer's decisions validated against measured
//! behaviour of the simulated serving stack — fusion choices vs actual
//! latencies, cost-model calibration from live observations, refinement
//! planning from mined ref_logs, and the structured prompt cache warming
//! the serving cache.

use std::collections::BTreeMap;

use spear::core::llm::{GenRequest, LlmClient};
use spear::core::prelude::*;
use spear::core::{meta, view::param_hash};
use spear::data::tweets::{self, TweetConfig};
use spear::llm::{ModelProfile, SimLlm};
use spear::optimizer::cost::{CostModel, CostObservation};
use spear::optimizer::fusion::{decide, PlanEstimates, StageEstimate};
use spear::optimizer::plan::{PhysicalPlan, SemanticPlan};
use spear::optimizer::prompt_cache::StructuredPromptCache;
use spear::optimizer::refinement_planner::{plan as plan_refinements, Budget, RefinerProfile};
use spear::optimizer::run_plan;

fn items(n: usize, negative_fraction: f64) -> Vec<String> {
    tweets::generate(&TweetConfig {
        count: n,
        negative_fraction,
        school_fraction: 0.3,
        hard_fraction: 0.1,
        seed: 99,
    })
    .into_iter()
    .map(|t| t.text)
    .collect()
}

#[test]
fn fusion_decision_agrees_with_measured_latency_on_both_sides_of_the_crossover() {
    let plan = SemanticPlan::filter_then_map(
        &spear_bench_filter_instruction(),
        "Clean up the tweet and summarize the remaining content.",
    );
    for (selectivity, expect_fuse) in [(0.1, false), (1.0, true)] {
        let corpus = items(120, selectivity);
        let seq_llm = std::sync::Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
        let seq = run_plan(seq_llm, &PhysicalPlan::sequential(&plan), &corpus).unwrap();
        let fused_llm = std::sync::Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct()));
        let fused = run_plan(fused_llm, &PhysicalPlan::fused(&plan), &corpus).unwrap();

        let measured_fuse_wins = fused.latency < seq.latency;
        assert_eq!(
            measured_fuse_wins, expect_fuse,
            "measured outcome at selectivity {selectivity}"
        );

        let estimates = PlanEstimates {
            n_items: corpus.len() as f64,
            selectivity,
            per_stage: StageEstimate {
                prompt_tokens: seq.usage.prompt_tokens as f64 / seq.gen_calls as f64,
                cached_fraction: 0.0,
                decode_tokens: seq.usage.completion_tokens as f64 / seq.gen_calls as f64,
            },
            fused: StageEstimate {
                prompt_tokens: fused.usage.prompt_tokens as f64 / fused.gen_calls as f64,
                cached_fraction: 0.0,
                decode_tokens: fused.usage.completion_tokens as f64 / fused.gen_calls as f64,
            },
        };
        let decision = decide(&plan, &estimates, &CostModel::default());
        assert_eq!(
            decision.fuse, expect_fuse,
            "optimizer decision at selectivity {selectivity}: {}",
            decision.reason
        );
    }
}

#[test]
fn token_budget_aborts_optimized_plans_with_the_same_error_as_the_tree_walk() {
    use spear::optimizer::{run_plan_with, to_pipeline, PlanRunOptions};
    use std::sync::Arc;

    let plan = SemanticPlan::map_then_filter(
        "Clean up the tweet.",
        "Classify the sentiment as positive or negative; keep negative.",
    );
    let physical = PhysicalPlan::sequential(&plan);
    let corpus = items(4, 0.5);
    let config = RuntimeConfig {
        max_tokens: Some(10),
        ..RuntimeConfig::default()
    };

    // The optimized path: run_plan over the lowered IR. The first GEN
    // crosses the 10-token line, so the gate before the second stage
    // aborts the item mid-plan.
    let err = run_plan_with(
        Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())),
        &physical,
        &corpus,
        &PlanRunOptions {
            workers: 1,
            config: config.clone(),
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, SpearError::TokenBudgetExceeded { .. }),
        "optimized plan aborts on the runtime's budget: {err}"
    );

    // The tree-walk path over the same lowered pipeline hits the identical
    // variant — there is no budget bypass left in the optimizer executor.
    let rt = Runtime::builder()
        .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
        .config(config)
        .build();
    let mut state = ExecState::new();
    state.context.set("item", corpus[0].clone());
    let tree_err = rt
        .execute_tree(&to_pipeline(&physical), &mut state)
        .unwrap_err();
    assert!(
        matches!(tree_err, SpearError::TokenBudgetExceeded { .. }),
        "tree walk reports the same variant: {tree_err}"
    );
}

#[test]
fn sentiment_workload_traces_are_byte_identical_across_both_executors() {
    use spear::core::agent::FnAgent;
    use std::sync::Arc;

    // The paper's sentiment workload, lowered once; each executor gets its
    // own identically-seeded engine so backend state cannot leak between
    // the two paths.
    let plan = SemanticPlan::map_then_filter(
        "Clean up the tweet.",
        "Classify the sentiment as positive or negative; keep negative.",
    )
    .with_identity("view:tweet_pipeline@1");
    let pipeline = spear::optimizer::to_pipeline(&PhysicalPlan::sequential(&plan));
    let lowered = spear::core::lower(&pipeline).expect("lowers");

    let verdict = |payload: &Value, _: &Context| {
        Ok(Value::from(
            payload
                .as_str()
                .unwrap_or_default()
                .to_lowercase()
                .starts_with("negative"),
        ))
    };
    let runtime = || {
        Runtime::builder()
            .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
            .agent("plan_filter_verdict", Arc::new(FnAgent(verdict)))
            .build()
    };
    let tree_rt = runtime();
    let ir_rt = runtime();

    for tweet in items(6, 0.5) {
        let mut tree_state = ExecState::new();
        tree_state.context.set("item", tweet.clone());
        let mut ir_state = ExecState::new();
        ir_state.context.set("item", tweet.clone());

        let tree_report = tree_rt.execute_tree(&pipeline, &mut tree_state).unwrap();
        let ir_report = ir_rt.execute_lowered(&lowered, &mut ir_state).unwrap();

        assert_eq!(tree_report, ir_report, "reports diverge on {tweet:?}");
        assert_eq!(
            tree_state.trace.to_jsonl().unwrap(),
            ir_state.trace.to_jsonl().unwrap(),
            "traces diverge on {tweet:?}"
        );
    }
}

/// A long filter instruction (mirrors the benchmark workload's shape where
/// the filter is the expensive stage).
fn spear_bench_filter_instruction() -> String {
    format!(
        "Classify the sentiment of the tweet as positive or negative and keep \
         only negative tweets. Decision criteria:\n{}\nApply every criterion \
         above before answering, and state a justification.",
        (1..=4)
            .map(|i| format!(
                "{i}. Weigh the full wording including trailing qualifiers, \
                 sarcasm, quoted material, and the subject the author spends \
                 the most words on before deciding the label."
            ))
            .collect::<Vec<_>>()
            .join("\n")
    )
}

#[test]
fn cost_model_calibrated_from_live_traffic_predicts_unseen_calls() {
    let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
    let mut observations = Vec::new();
    for i in 0..16 {
        let filler = "some additional context material for the request. ".repeat(i);
        let resp = llm
            .generate(&GenRequest::structured(
                format!("Classify the sentiment.\n{filler}Tweet: sample number {i}"),
                format!("view:probe@1#{i}/v1"),
            ))
            .unwrap();
        observations.push(CostObservation {
            usage: resp.usage,
            latency: resp.latency,
        });
    }
    let model = CostModel::fit(&observations).expect("enough observations to fit");

    // Predict a fresh call and compare against the engine.
    let resp = llm
        .generate(&GenRequest::structured(
            "Classify the sentiment.\nTweet: an entirely new probe item with more words"
                .to_string(),
            "view:probe@1#fresh/v1".to_string(),
        ))
        .unwrap();
    let predicted = model.estimate_call(
        (resp.usage.prompt_tokens - resp.usage.cached_tokens) as f64,
        resp.usage.cached_tokens as f64,
        resp.usage.completion_tokens as f64,
    );
    let actual = resp.latency.as_secs_f64();
    let err = (predicted.as_secs_f64() - actual).abs() / actual;
    assert!(err < 0.05, "prediction error {err:.3} should be < 5%");
}

#[test]
fn refinement_planner_consumes_mined_ref_logs() {
    // Build a store whose histories show one helpful and one harmful
    // refiner, mine it with core::meta, and confirm the planner keeps the
    // helpful one and drops the harmful one.
    let store = PromptStore::new();
    for i in 0..4 {
        let key = format!("p{i}");
        store.define(&key, "base", "f_base", RefinementMode::Manual);
        let mut sig = BTreeMap::new();
        sig.insert("confidence".to_string(), Value::from(0.55));
        store
            .refine(
                &key,
                "base + hint".into(),
                RefAction::Update,
                "add_hint",
                RefinementMode::Auto,
                1,
                None,
                sig,
                None,
            )
            .unwrap();
        let mut sig = BTreeMap::new();
        sig.insert("confidence".to_string(), Value::from(0.8));
        store
            .refine(
                &key,
                "base + hint + noise".into(),
                RefAction::Update,
                "generic_rewriter",
                RefinementMode::Auto,
                2,
                None,
                sig,
                None,
            )
            .unwrap();
        let mut sig = BTreeMap::new();
        sig.insert("confidence".to_string(), Value::from(0.72));
        store
            .refine(
                &key,
                "final".into(),
                RefAction::Update,
                "closer",
                RefinementMode::Manual,
                3,
                None,
                sig,
                None,
            )
            .unwrap();
    }
    let stats = meta::analyze_refiners(&store);
    let profiles: Vec<RefinerProfile> = stats
        .iter()
        .map(|s| RefinerProfile::from_stats(s, 15.0, 0.0))
        .collect();
    let plan = plan_refinements(&profiles, &Budget::default(), 0.0);
    assert!(plan.refiners.contains(&"add_hint".to_string()));
    assert!(
        !plan.refiners.contains(&"generic_rewriter".to_string()),
        "harmful refiner skipped: {:?}",
        plan
    );
}

#[test]
fn structured_prompt_cache_warms_the_serving_cache() {
    // Render a view once, cache it in the structured cache, and use it to
    // warm a *fresh* engine: the first request over that view then hits.
    let views = ViewCatalog::new();
    views.register(ViewDef::new(
        "scaffold",
        "Classify the sentiment of the tweet as positive or negative, \
         weighing sarcasm, emphasis, trailing qualifiers, quoted material, \
         and the dominant subject before deciding; respond with exactly one \
         word under a word limit of 1.\nTweet: {{ctx:tweet}}",
    ));
    let args: BTreeMap<String, Value> = BTreeMap::new();
    let entry = views.instantiate("scaffold", args.clone()).unwrap();
    let mut ctx = Context::new();
    ctx.set("tweet", "placeholder");
    // The stable prefix is everything before the per-item tweet.
    let rendered_prefix = entry.text.replace("{{ctx:tweet}}", "");

    let cache = StructuredPromptCache::new();
    cache.insert(
        Some("scaffold"),
        param_hash(&args),
        entry.version,
        rendered_prefix,
    );

    // "Restart": fresh engine, warmed from the structured cache.
    let llm = SimLlm::new(ModelProfile::qwen25_7b_instruct());
    let warm_entry = cache.latest_version("scaffold", param_hash(&args)).unwrap();
    llm.warm(&warm_entry.rendered);

    ctx.set("tweet", "what a terrible exam today");
    let rendered = entry.render(&ctx).unwrap();
    let resp = llm
        .generate(&GenRequest::structured(
            rendered,
            entry.cache_identity().unwrap(),
        ))
        .unwrap();
    assert!(
        resp.usage.cache_hit_rate().unwrap() > 0.5,
        "first request after warm-up already hits: {:?}",
        resp.usage
    );
    assert!(cache.is_view_warm("scaffold"));
}

#[test]
fn meta_optimization_closes_the_loop_end_to_end() {
    // A pipeline uses a harmful custom refiner (it deletes the reasoning
    // hints the QA task rewards). Run it, mine the ref_logs, let the
    // meta-optimizer swap the refiner, re-run, and verify the outcome
    // improved — §4.4's loop, executed for real.
    use spear::core::prelude::*;
    use spear::core::refiner::{FnRefiner, RefineOutput};
    use spear::llm::{ModelProfile, SimLlm};
    use spear::optimizer::meta_opt::{self, MetaOptConfig, Substitute};
    use std::sync::Arc;

    let build_runtime = || {
        Runtime::builder()
            .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
            .refiner(
                "hint_stripper",
                Arc::new(FnRefiner(|rcx: &spear::core::refiner::RefineCtx<'_>| {
                    Ok(RefineOutput::text(
                        rcx.current_text()
                            .replace("Think step by step about dosage and timing.", "")
                            .trim()
                            .to_string(),
                    ))
                })),
            )
            .build()
    };

    let pipeline = |refiner: &str, args: Value| {
        Pipeline::builder("qa")
            .create_text(
                "qa_prompt",
                "Highlight any use of Enoxaparin in the medication history. \
                 Think step by step about dosage and timing.\nNotes: {{ctx:notes}}",
                RefinementMode::Manual,
            )
            .gen("answer_0", "qa_prompt")
            .refine(
                "qa_prompt",
                RefAction::Update,
                refiner,
                args,
                RefinementMode::Auto,
            )
            .gen("answer_1", "qa_prompt")
            // Closing no-op refinement: its ref_log record snapshots the
            // post-regeneration confidence, which is what the miner reads
            // as the previous refiner's "after" observation.
            .refine(
                "qa_prompt",
                RefAction::Update,
                "normalize",
                Value::Null,
                RefinementMode::Manual,
            )
            .build()
    };

    // Round 1: the harmful refiner runs and the logs record its effect.
    let rt = build_runtime();
    let mut state = ExecState::new();
    state
        .context
        .set("notes", "enoxaparin 40 mg SC daily at 2100");
    rt.execute(&pipeline("hint_stripper", Value::Null), &mut state)
        .unwrap();
    let conf_after_bad = state
        .metadata
        .get("confidence:answer_1")
        .and_then(|v| v.as_f64())
        .unwrap();

    // Seed the stats with several observations (one pipeline run yields one
    // before/after pair per refiner; repeat to clear min_measured).
    for i in 0..2 {
        let mut s2 = ExecState::new();
        s2.context.set("notes", "enoxaparin 40 mg SC daily at 2100");
        rt.execute(&pipeline("hint_stripper", Value::Null), &mut s2)
            .unwrap();
        // Merge the mined entries into the main store under fresh keys.
        state
            .prompts
            .insert(format!("run-{i}"), s2.prompts.get("qa_prompt").unwrap());
    }
    let stats = spear::core::meta::analyze_refiners(&state.prompts);
    let stripper = stats.iter().find(|s| s.f_name == "hint_stripper").unwrap();
    assert!(
        stripper.avg_gain.unwrap() < 0.0,
        "logs show the refiner hurts"
    );

    // Also measure the substitute once so the optimizer has evidence for it.
    let mut s3 = ExecState::new();
    s3.context.set("notes", "enoxaparin 40 mg SC daily at 2100");
    rt.execute(
        &pipeline(
            "append",
            Value::from("Think step by step about the timing."),
        ),
        &mut s3,
    )
    .unwrap();
    for i in 0..2 {
        state.prompts.insert(
            format!("append-run-{i}"),
            s3.prompts.get("qa_prompt").unwrap(),
        );
    }
    let stats = spear::core::meta::analyze_refiners(&state.prompts);

    // Meta-optimize and re-run.
    let config = MetaOptConfig {
        underperformance_threshold: 0.0,
        min_measured: 2,
        pool: vec![Substitute {
            refiner: "append".into(),
            args: Value::from("Think step by step about the timing."),
        }],
    };
    let (better, applied) =
        meta_opt::replace_underperformers(&pipeline("hint_stripper", Value::Null), &stats, &config);
    assert_eq!(applied.len(), 1);
    assert_eq!(applied[0].to, "append");

    let rt2 = build_runtime();
    let mut state2 = ExecState::new();
    state2
        .context
        .set("notes", "enoxaparin 40 mg SC daily at 2100");
    rt2.execute(&better, &mut state2).unwrap();
    let conf_after_good = state2
        .metadata
        .get("confidence:answer_1")
        .and_then(|v| v.as_f64())
        .unwrap();
    assert!(
        conf_after_good > conf_after_bad,
        "substituted pipeline outperforms: {conf_after_good} vs {conf_after_bad}"
    );
}
