//! Durability-layer edge cases: `Trace::from_jsonl` failure modes (with
//! line-accurate diagnostics) and `ExecState::deep_clone` independence.

use spear::core::prelude::*;
use spear::core::trace::Trace;
use spear::core::SpearError;

fn sample_trace() -> Trace {
    let mut t = Trace::new();
    t.record(
        0,
        TraceKind::PipelineStart,
        "pipeline \"p\"".into(),
        Value::Null,
    );
    t.record(
        1,
        TraceKind::Gen,
        "GEN[\"a\"]".into(),
        spear::core::value::map([
            ("cached_tokens", Value::from(32)),
            ("latency_us", Value::from(1500)),
        ]),
    );
    t.record(
        2,
        TraceKind::PipelineEnd,
        "pipeline \"p\"".into(),
        Value::Null,
    );
    t
}

#[test]
fn malformed_line_mid_file_reports_its_line_number() {
    let jsonl = sample_trace().to_jsonl().unwrap();
    let mut lines: Vec<&str> = jsonl.lines().collect();
    lines[1] = "{\"seq\": 1, \"step\": oops";
    let corrupted = lines.join("\n");
    let err = Trace::from_jsonl(&corrupted).expect_err("malformed line must fail");
    match err {
        SpearError::TraceParse { line, .. } => {
            assert_eq!(line, 2, "the corrupted line is line 2");
        }
        other => panic!("expected TraceParse, got {other:?}"),
    }
}

#[test]
fn trailing_garbage_after_a_valid_object_is_rejected() {
    let jsonl = sample_trace().to_jsonl().unwrap();
    let mut lines: Vec<String> = jsonl.lines().map(str::to_string).collect();
    let last = lines.len();
    lines[last - 1].push_str(" trailing garbage");
    let corrupted = lines.join("\n");
    let err = Trace::from_jsonl(&corrupted).expect_err("trailing garbage must fail");
    match err {
        SpearError::TraceParse { line, reason } => {
            assert_eq!(line, last, "the garbage is on the final line");
            assert!(!reason.is_empty());
        }
        other => panic!("expected TraceParse, got {other:?}"),
    }
}

#[test]
fn completely_non_json_input_fails_on_line_one() {
    let err = Trace::from_jsonl("this is not json\n{}").expect_err("must fail");
    match err {
        SpearError::TraceParse { line, .. } => assert_eq!(line, 1),
        other => panic!("expected TraceParse, got {other:?}"),
    }
}

#[test]
fn blank_lines_are_skipped_and_roundtrip_is_lossless() {
    let t = sample_trace();
    let jsonl = t.to_jsonl().unwrap();
    let with_blanks = jsonl.replace('\n', "\n\n");
    let back = Trace::from_jsonl(&with_blanks).unwrap();
    assert_eq!(back.events(), t.events());
}

#[test]
fn error_display_names_the_line() {
    let err = Trace::from_jsonl("not json").expect_err("must fail");
    let msg = err.to_string();
    assert!(
        msg.contains("line 1"),
        "diagnostic should place the failure: {msg}"
    );
}

#[test]
fn deep_clone_is_fully_independent() {
    let mut original = ExecState::new();
    original.context.set("doc", "original context value");
    original
        .prompts
        .define("p", "original prompt text", "test", RefinementMode::Manual);
    original.metadata.set("confidence:answer", 0.9);
    original.trace = sample_trace();
    original.step = 3;

    let mut clone = original.deep_clone();

    // Mutate every component of the clone.
    clone.context.set("doc", "mutated");
    clone.context.set("extra", "new key");
    clone
        .prompts
        .refine(
            "p",
            "mutated prompt text".into(),
            RefAction::Update,
            "test",
            RefinementMode::Auto,
            1,
            None,
            std::collections::BTreeMap::new(),
            None,
        )
        .unwrap();
    clone.metadata.set("confidence:answer", 0.1);
    clone
        .trace
        .record(4, TraceKind::Error, "synthetic".into(), Value::Null);
    clone.step = 99;

    // The original is untouched.
    assert_eq!(
        original.context.get("doc"),
        Some(Value::from("original context value"))
    );
    assert!(original.context.get("extra").is_none());
    let entry = original.prompts.get("p").unwrap();
    assert_eq!(entry.text, "original prompt text");
    assert_eq!(
        entry.version, 1,
        "clone's refine must not bump the original"
    );
    assert_eq!(
        original.metadata.get("confidence:answer"),
        Some(Value::from(0.9))
    );
    assert_eq!(original.trace.events().len(), 3);
    assert_eq!(original.step, 3);

    // And the clone saw all its own mutations.
    assert_eq!(clone.prompts.get("p").unwrap().version, 2);
    assert_eq!(clone.trace.events().len(), 4);
}
