#!/bin/sh
# Tier-1 gate: everything a PR must keep green. Runnable directly
# (`sh scripts/check.sh`) or via `just check`.
set -eux

cargo build --release
cargo test -q
cargo test --workspace -q
# Named gates (already part of the workspace run, re-run here so a failure
# is attributable at a glance): the three-way tree/interpreter/VM trace
# equivalence and the compiled-program cache soundness suites.
cargo test -p spear-core --test trace_equivalence -q
cargo test -p spear-serve --test program_cache -q
# Static-analysis gate: bytecode lints, translation validation, and the
# verified optimizer's bisimulation check over the golden plan corpus.
cargo run --release -p spear-bench --bin analyze
# Cluster scale-out gate: exits non-zero below 0.7x ideal scaling at 8
# nodes, if hash-random matches prefix-aware on fleet hit rate, or on
# any cross-lane fingerprint divergence (incl. churn replay).
cargo run --release -p spear-bench --bin bench_cluster -- --out BENCH_cluster.json
# Generation-reuse gate: exits non-zero below 1.5x host throughput with
# the whole-call memo on, on any fingerprint divergence from reuse-off,
# or if the hit/coalesced ledger varies across lane counts.
cargo run --release -p spear-bench --bin bench_serve -- --reuse --out BENCH_reuse.json
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check
