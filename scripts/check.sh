#!/bin/sh
# Tier-1 gate: everything a PR must keep green. Runnable directly
# (`sh scripts/check.sh`) or via `just check`.
set -eux

cargo build --release
cargo test -q
cargo test --workspace -q
cargo clippy --workspace --all-targets -- -D warnings
cargo fmt --all -- --check
