//! Property tests for SPEAR-DL: the lexer and parser must be total over
//! arbitrary input (typed errors, never panics), and well-formed generated
//! programs must roundtrip through parse → compile.

use proptest::prelude::*;
use spear_dl::{compile, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The full front end never panics on arbitrary bytes.
    #[test]
    fn frontend_is_total(input in ".{0,200}") {
        match compile(&input) {
            Ok(_) => {}
            Err(e) => {
                let msg = e.to_string();
                prop_assert!(msg.contains("error at"), "{msg}");
            }
        }
    }

    /// Arbitrary keyword soup (the adversarial case for a keyword-driven
    /// parser) never panics.
    #[test]
    fn keyword_soup_is_total(
        words in proptest::collection::vec(
            prop_oneof![
                Just("PIPELINE"), Just("VIEW"), Just("GEN"), Just("REF"),
                Just("CHECK"), Just("MERGE"), Just("DELEGATE"), Just("RETRY"),
                Just("SWITCH"), Just("MAP"), Just("{"), Just("}"), Just("("),
                Just(")"), Just(";"), Just("\"x\""), Just("USING"),
                Just("INTO"), Just("IF"), Just("WITH"), Just("=")
            ],
            0..30,
        )
    ) {
        let src = words.join(" ");
        let _ = compile(&src);
    }

    /// Generated well-formed programs parse and compile, and the compiled
    /// op count matches the statement count (GEN statements are 1:1).
    #[test]
    fn generated_programs_roundtrip(
        pipeline_name in "[a-z][a-z0-9_]{0,10}",
        labels in proptest::collection::vec("[a-z][a-z0-9_]{0,8}", 1..6),
        threshold in 0.0f64..1.0,
    ) {
        let mut body = String::new();
        for (i, label) in labels.iter().enumerate() {
            body.push_str(&format!(
                "  REF CREATE \"p{i}\" TEXT \"prompt {i}\";\n  GEN \"{label}\" USING \"p{i}\";\n"
            ));
        }
        body.push_str(&format!(
            "  CHECK M[\"confidence\"] < {threshold} {{ EXPAND \"p0\" \"more\"; }}\n"
        ));
        let src = format!("PIPELINE {pipeline_name} {{\n{body}}}\n");
        let compiled = compile(&src).unwrap();
        let p = compiled.pipeline(&pipeline_name).unwrap();
        prop_assert_eq!(p.ops.len(), labels.len() * 2 + 1);

        // Compile-time verification: everything the DL front end emits
        // must lower without placeholder leaks and pass the IR verifier
        // clean against a runtime with the program's own views installed.
        let lowered = compiled.lower().expect("DL pipelines lower clean");
        prop_assert_eq!(lowered.len(), 1);
        let views = spear_core::view::ViewCatalog::new();
        compiled.install_views(&views);
        let runtime = spear_core::runtime::Runtime::builder()
            .llm(std::sync::Arc::new(spear_core::llm::EchoLlm::default()))
            .views(views)
            .build();
        let diagnostics = compiled.verify(&runtime).expect("DL pipelines lower clean");
        prop_assert!(
            diagnostics.is_empty(),
            "DL-compiled plan tripped the verifier: {diagnostics:?}"
        );
    }

    /// String literals survive the lexer's escape handling: a program
    /// embedding an arbitrary (escaped) string yields a view whose template
    /// is exactly that string.
    #[test]
    fn string_literal_roundtrip(text in "[a-zA-Z0-9 .,!?-]{0,60}") {
        let src = format!("VIEW v = \"{text}\";");
        let program = parse(&src).unwrap();
        prop_assert_eq!(&program.views[0].template, &text);
    }
}
