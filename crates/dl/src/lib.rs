//! # spear-dl — the SPEAR declarative language
//!
//! The developer-facing layer of the SPEAR architecture (paper §6): "SPEAR
//! provides a declarative language (SPEAR-DL) to define prompt views and
//! refinement logic. These views are parameterized, versioned, and
//! composable." Programs declare VIEWs and PIPELINEs; pipelines use the
//! core operators (RET, GEN, REF, CHECK, MERGE, DELEGATE) and the derived
//! ones (EXPAND, RETRY, DIFF), with the paper's condition notation
//! (`M["confidence"] < 0.7`, `"orders" NOT IN C`).
//!
//! ```
//! use spear_dl::compile;
//!
//! let compiled = compile(r#"
//!     VIEW qa(drug) = "Highlight any use of {{drug}}.\nNotes: {{ctx:notes}}";
//!
//!     PIPELINE demo {
//!       REF CREATE "qa_prompt" FROM VIEW qa(drug = "Enoxaparin");
//!       GEN "answer_0" USING "qa_prompt";
//!       CHECK M["confidence"] < 0.7 {
//!         REF UPDATE "qa_prompt" WITH auto_refine() MODE AUTO;
//!         GEN "answer_1" USING "qa_prompt";
//!       }
//!     }
//! "#).unwrap();
//! assert_eq!(compiled.pipelines[0].name, "demo");
//! assert_eq!(compiled.views[0].name, "qa");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod compile;
pub mod error;
pub mod lexer;
pub mod parser;

pub use compile::{compile, compile_program, Compiled};
pub use error::{DlError, Phase, Result};
pub use parser::parse;
