//! SPEAR-DL abstract syntax.
//!
//! The AST reuses `spear-core`'s data types where the mapping is 1:1
//! (conditions, values, refinement actions/modes, merge policies), so
//! compilation is mostly structural assembly.

use std::collections::BTreeMap;

use spear_core::condition::Cond;
use spear_core::history::{RefAction, RefinementMode};
use spear_core::ops::{MergePolicy, PayloadSpec};
use spear_core::value::Value;

/// A parsed program: view declarations plus pipelines.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Declared views, in source order.
    pub views: Vec<ViewDecl>,
    /// Declared pipelines, in source order.
    pub pipelines: Vec<PipelineDecl>,
}

/// `VIEW name(params) TAGS [..] DESC ".." = "template";`
#[derive(Debug, Clone, PartialEq)]
pub struct ViewDecl {
    /// View name.
    pub name: String,
    /// Parameters: `(name, default)` — `None` default means required.
    pub params: Vec<(String, Option<Value>)>,
    /// Tags.
    pub tags: Vec<String>,
    /// Description.
    pub description: Option<String>,
    /// Template text.
    pub template: String,
}

/// `PIPELINE name { stmts }`
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineDecl {
    /// Pipeline name.
    pub name: String,
    /// Body.
    pub stmts: Vec<Stmt>,
}

/// The prompt source of a GEN statement.
#[derive(Debug, Clone, PartialEq)]
pub enum UsingClause {
    /// `USING "prompt_key"`
    Key(String),
    /// `USING VIEW name(args)`
    View {
        /// View name.
        name: String,
        /// Instantiation arguments.
        args: BTreeMap<String, Value>,
    },
    /// `USING INLINE "text"` — an opaque ad-hoc prompt.
    Inline(String),
}

/// The body of a REF statement.
#[derive(Debug, Clone, PartialEq)]
pub enum RefBody {
    /// `FROM VIEW name(args)`
    FromView {
        /// View name.
        view: String,
        /// Instantiation arguments.
        args: BTreeMap<String, Value>,
    },
    /// `TEXT "raw text"`
    Text(String),
    /// `WITH refiner(args) [MODE mode]`
    With {
        /// Registered refiner name.
        refiner: String,
        /// Refiner arguments.
        args: Value,
        /// Refinement mode (defaults to Manual).
        mode: RefinementMode,
    },
}

/// One pipeline statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `RET "source" [WHERE {..}] [WITH PROMPT "key"] INTO "ctx" [LIMIT n];`
    Ret {
        /// Retriever source name.
        source: String,
        /// Structured filters, when given.
        filters: Option<BTreeMap<String, Value>>,
        /// Prompt key for prompt-based retrieval.
        prompt: Option<String>,
        /// Context destination.
        into: String,
        /// Document limit.
        limit: usize,
    },
    /// `GEN "label" USING ...;`
    Gen {
        /// Context label.
        label: String,
        /// Prompt source.
        using: UsingClause,
    },
    /// `REF ACTION "target" <body>;`
    Ref {
        /// Action (CREATE / APPEND / PREPEND / UPDATE).
        action: RefAction,
        /// Target prompt key.
        target: String,
        /// What to apply.
        body: RefBody,
    },
    /// `CHECK cond { .. } [ELSE { .. }]`
    Check {
        /// The condition.
        cond: Cond,
        /// Then-branch.
        then: Vec<Stmt>,
        /// Else-branch.
        els: Vec<Stmt>,
    },
    /// `MERGE "left" "right" INTO "dst" [POLICY ..];`
    Merge {
        /// Left prompt key.
        left: String,
        /// Right prompt key.
        right: String,
        /// Destination prompt key.
        into: String,
        /// Policy (defaults to `PreferLeft`).
        policy: MergePolicy,
    },
    /// `DELEGATE "agent" PAYLOAD .. INTO "ctx";`
    Delegate {
        /// Agent name.
        agent: String,
        /// Payload.
        payload: PayloadSpec,
        /// Context destination.
        into: String,
    },
    /// `EXPAND "target" "addition";` (derived operator)
    Expand {
        /// Target prompt key.
        target: String,
        /// Text to append.
        addition: String,
    },
    /// `RETRY "label" USING "key" IF cond WITH refiner(args) [MODE m] [MAX n];`
    Retry {
        /// Generation label prefix.
        label: String,
        /// Prompt key.
        prompt_key: String,
        /// Retry condition.
        cond: Cond,
        /// Refiner applied before each retry.
        refiner: String,
        /// Refiner args.
        args: Value,
        /// Mode of the retry refinements.
        mode: RefinementMode,
        /// Maximum retries.
        max: u32,
    },
    /// `DIFF "left" "right" INTO "ctx";` (derived operator)
    Diff {
        /// Left prompt key.
        left: String,
        /// Right prompt key.
        right: String,
        /// Context destination.
        into: String,
    },
    /// `MAP ["k1", "k2"] WITH refiner(args) [MODE m];` (derived operator:
    /// apply one refiner to a list of prompt fragments)
    Map {
        /// Target prompt keys.
        keys: Vec<String>,
        /// Refiner name.
        refiner: String,
        /// Refiner args.
        args: Value,
        /// Mode.
        mode: RefinementMode,
    },
    /// `SWITCH { CASE cond { .. } ... [DEFAULT { .. }] }` (derived
    /// operator: first matching case wins)
    Switch {
        /// `(condition, body)` cases in order.
        cases: Vec<(Cond, Vec<Stmt>)>,
        /// Default body (may be empty).
        default: Vec<Stmt>,
    },
}
