//! SPEAR-DL recursive-descent parser.

use std::collections::BTreeMap;

use spear_core::condition::{CmpOp, Cond, Operand};
use spear_core::history::{RefAction, RefinementMode};
use spear_core::ops::{MergePolicy, PayloadSpec};
use spear_core::value::Value;

use crate::ast::{PipelineDecl, Program, RefBody, Stmt, UsingClause, ViewDecl};
use crate::error::{DlError, Result};
use crate::lexer::{lex, Pos, Tok, Token};

/// Parse a complete SPEAR-DL source file.
///
/// # Errors
///
/// Returns the first lexing or parsing error, with position.
pub fn parse(src: &str) -> Result<Program> {
    let tokens = lex(src)?;
    Parser { tokens, at: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    at: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.at.min(self.tokens.len() - 1)]
    }

    fn pos(&self) -> Pos {
        self.peek().pos
    }

    fn advance(&mut self) -> Token {
        let t = self.tokens[self.at.min(self.tokens.len() - 1)].clone();
        self.at += 1;
        t
    }

    fn err(&self, message: impl Into<String>) -> DlError {
        DlError::parse(self.pos(), message)
    }

    /// Consume a specific punctuation token.
    fn expect(&mut self, tok: &Tok) -> Result<()> {
        if &self.peek().tok == tok {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected '{tok}', found '{}'", self.peek().tok)))
        }
    }

    /// Consume a specific keyword (uppercase identifier).
    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.peek_kw(kw) {
            self.advance();
            Ok(())
        } else {
            Err(self.err(format!("expected '{kw}', found '{}'", self.peek().tok)))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        matches!(&self.peek().tok, Tok::Ident(s) if s == kw)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek_kw(kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<String> {
        match &self.peek().tok {
            Tok::Ident(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found '{other}'"))),
        }
    }

    fn string(&mut self) -> Result<String> {
        match &self.peek().tok {
            Tok::Str(s) => {
                let s = s.clone();
                self.advance();
                Ok(s)
            }
            other => Err(self.err(format!("expected string literal, found '{other}'"))),
        }
    }

    fn number(&mut self) -> Result<f64> {
        match &self.peek().tok {
            Tok::Num(n) => {
                let n = *n;
                self.advance();
                Ok(n)
            }
            other => Err(self.err(format!("expected number, found '{other}'"))),
        }
    }

    fn value(&mut self) -> Result<Value> {
        match &self.peek().tok {
            Tok::Str(s) => {
                let v = Value::from(s.clone());
                self.advance();
                Ok(v)
            }
            Tok::Num(n) => {
                let n = *n;
                self.advance();
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    Ok(Value::Int(n as i64))
                } else {
                    Ok(Value::Float(n))
                }
            }
            Tok::Ident(s) if s == "TRUE" => {
                self.advance();
                Ok(Value::Bool(true))
            }
            Tok::Ident(s) if s == "FALSE" => {
                self.advance();
                Ok(Value::Bool(false))
            }
            Tok::Ident(s) if s == "NULL" => {
                self.advance();
                Ok(Value::Null)
            }
            other => Err(self.err(format!("expected a value, found '{other}'"))),
        }
    }

    // -----------------------------------------------------------------
    // Program structure
    // -----------------------------------------------------------------

    fn program(&mut self) -> Result<Program> {
        let mut program = Program::default();
        loop {
            if self.peek().tok == Tok::Eof {
                return Ok(program);
            }
            if self.peek_kw("VIEW") {
                program.views.push(self.view_decl()?);
            } else if self.peek_kw("PIPELINE") {
                program.pipelines.push(self.pipeline_decl()?);
            } else {
                return Err(self.err(format!(
                    "expected 'VIEW' or 'PIPELINE' at top level, found '{}'",
                    self.peek().tok
                )));
            }
        }
    }

    fn view_decl(&mut self) -> Result<ViewDecl> {
        self.expect_kw("VIEW")?;
        let name = self.ident()?;
        let mut params = Vec::new();
        if self.peek().tok == Tok::LParen {
            self.advance();
            if self.peek().tok != Tok::RParen {
                loop {
                    let pname = self.ident()?;
                    let default = if self.peek().tok == Tok::Eq {
                        self.advance();
                        Some(self.value()?)
                    } else {
                        None
                    };
                    params.push((pname, default));
                    if self.peek().tok == Tok::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RParen)?;
        }
        let mut tags = Vec::new();
        if self.eat_kw("TAGS") {
            self.expect(&Tok::LBracket)?;
            if self.peek().tok != Tok::RBracket {
                loop {
                    tags.push(self.ident()?);
                    if self.peek().tok == Tok::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RBracket)?;
        }
        let description = if self.eat_kw("DESC") {
            Some(self.string()?)
        } else {
            None
        };
        self.expect(&Tok::Eq)?;
        let template = self.string()?;
        self.expect(&Tok::Semi)?;
        Ok(ViewDecl {
            name,
            params,
            tags,
            description,
            template,
        })
    }

    fn pipeline_decl(&mut self) -> Result<PipelineDecl> {
        self.expect_kw("PIPELINE")?;
        let name = self.ident()?;
        let stmts = self.block()?;
        Ok(PipelineDecl { name, stmts })
    }

    fn block(&mut self) -> Result<Vec<Stmt>> {
        self.expect(&Tok::LBrace)?;
        let mut stmts = Vec::new();
        while self.peek().tok != Tok::RBrace {
            if self.peek().tok == Tok::Eof {
                return Err(self.err("unterminated block: expected '}'"));
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&Tok::RBrace)?;
        Ok(stmts)
    }

    // -----------------------------------------------------------------
    // Statements
    // -----------------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt> {
        let kw = match &self.peek().tok {
            Tok::Ident(s) => s.clone(),
            other => return Err(self.err(format!("expected statement, found '{other}'"))),
        };
        match kw.as_str() {
            "RET" => self.stmt_ret(),
            "GEN" => self.stmt_gen(),
            "REF" => self.stmt_ref(),
            "CHECK" => self.stmt_check(),
            "MERGE" => self.stmt_merge(),
            "DELEGATE" => self.stmt_delegate(),
            "EXPAND" => self.stmt_expand(),
            "RETRY" => self.stmt_retry(),
            "DIFF" => self.stmt_diff(),
            "MAP" => self.stmt_map(),
            "SWITCH" => self.stmt_switch(),
            other => Err(self.err(format!("unknown statement '{other}'"))),
        }
    }

    fn stmt_ret(&mut self) -> Result<Stmt> {
        self.expect_kw("RET")?;
        let source = self.string()?;
        let mut filters = None;
        if self.eat_kw("WHERE") {
            self.expect(&Tok::LBrace)?;
            let mut map = BTreeMap::new();
            if self.peek().tok != Tok::RBrace {
                loop {
                    let key = match &self.peek().tok {
                        Tok::Ident(s) => {
                            let s = s.clone();
                            self.advance();
                            s
                        }
                        Tok::Str(s) => {
                            let s = s.clone();
                            self.advance();
                            s
                        }
                        other => {
                            return Err(
                                self.err(format!("expected filter field name, found '{other}'"))
                            )
                        }
                    };
                    self.expect(&Tok::Colon)?;
                    map.insert(key, self.value()?);
                    if self.peek().tok == Tok::Comma {
                        self.advance();
                    } else {
                        break;
                    }
                }
            }
            self.expect(&Tok::RBrace)?;
            filters = Some(map);
        }
        let prompt = if self.eat_kw("WITH") {
            self.expect_kw("PROMPT")?;
            Some(self.string()?)
        } else {
            None
        };
        self.expect_kw("INTO")?;
        let into = self.string()?;
        let limit = if self.eat_kw("LIMIT") {
            self.number()? as usize
        } else {
            16
        };
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Ret {
            source,
            filters,
            prompt,
            into,
            limit,
        })
    }

    fn named_args(&mut self) -> Result<BTreeMap<String, Value>> {
        let mut args = BTreeMap::new();
        self.expect(&Tok::LParen)?;
        if self.peek().tok != Tok::RParen {
            loop {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                args.insert(name, self.value()?);
                if self.peek().tok == Tok::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        Ok(args)
    }

    /// Refiner arguments: `()` → Null, `("text")` → Str, `(k = v, ...)` →
    /// Map.
    fn refiner_args(&mut self) -> Result<Value> {
        self.expect(&Tok::LParen)?;
        if self.peek().tok == Tok::RParen {
            self.advance();
            return Ok(Value::Null);
        }
        // Lookahead: ident '=' means named args.
        if matches!(&self.peek().tok, Tok::Ident(_))
            && self.tokens.get(self.at + 1).map(|t| &t.tok) == Some(&Tok::Eq)
        {
            let mut map = BTreeMap::new();
            loop {
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                map.insert(name, self.value()?);
                if self.peek().tok == Tok::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
            self.expect(&Tok::RParen)?;
            Ok(Value::Map(map))
        } else {
            let v = self.value()?;
            self.expect(&Tok::RParen)?;
            Ok(v)
        }
    }

    fn mode(&mut self) -> Result<RefinementMode> {
        if self.eat_kw("MODE") {
            let m = self.ident()?;
            match m.as_str() {
                "MANUAL" => Ok(RefinementMode::Manual),
                "ASSISTED" => Ok(RefinementMode::Assisted),
                "AUTO" => Ok(RefinementMode::Auto),
                other => Err(self.err(format!(
                    "unknown mode '{other}' (expected MANUAL, ASSISTED, or AUTO)"
                ))),
            }
        } else {
            Ok(RefinementMode::Manual)
        }
    }

    fn stmt_gen(&mut self) -> Result<Stmt> {
        self.expect_kw("GEN")?;
        let label = self.string()?;
        self.expect_kw("USING")?;
        let using = if self.eat_kw("VIEW") {
            let name = self.ident()?;
            let args = if self.peek().tok == Tok::LParen {
                self.named_args()?
            } else {
                BTreeMap::new()
            };
            UsingClause::View { name, args }
        } else if self.eat_kw("INLINE") {
            UsingClause::Inline(self.string()?)
        } else {
            UsingClause::Key(self.string()?)
        };
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Gen { label, using })
    }

    fn stmt_ref(&mut self) -> Result<Stmt> {
        self.expect_kw("REF")?;
        let action = match self.ident()?.as_str() {
            "CREATE" => RefAction::Create,
            "APPEND" => RefAction::Append,
            "PREPEND" => RefAction::Prepend,
            "UPDATE" => RefAction::Update,
            other => {
                return Err(self.err(format!(
                    "unknown REF action '{other}' (expected CREATE, APPEND, PREPEND, UPDATE)"
                )))
            }
        };
        let target = self.string()?;
        let body = if self.eat_kw("FROM") {
            self.expect_kw("VIEW")?;
            let view = self.ident()?;
            let args = if self.peek().tok == Tok::LParen {
                self.named_args()?
            } else {
                BTreeMap::new()
            };
            RefBody::FromView { view, args }
        } else if self.eat_kw("TEXT") {
            RefBody::Text(self.string()?)
        } else if self.eat_kw("WITH") {
            let refiner = self.ident()?;
            let args = self.refiner_args()?;
            let mode = self.mode()?;
            RefBody::With {
                refiner,
                args,
                mode,
            }
        } else {
            return Err(self.err("expected 'FROM VIEW', 'TEXT', or 'WITH' in REF"));
        };
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Ref {
            action,
            target,
            body,
        })
    }

    fn stmt_check(&mut self) -> Result<Stmt> {
        self.expect_kw("CHECK")?;
        let cond = self.cond()?;
        let then = self.block()?;
        let els = if self.eat_kw("ELSE") {
            self.block()?
        } else {
            Vec::new()
        };
        Ok(Stmt::Check { cond, then, els })
    }

    fn stmt_merge(&mut self) -> Result<Stmt> {
        self.expect_kw("MERGE")?;
        let left = self.string()?;
        let right = self.string()?;
        self.expect_kw("INTO")?;
        let into = self.string()?;
        let policy = if self.eat_kw("POLICY") {
            let p = self.ident()?;
            match p.as_str() {
                "PREFER_LEFT" => MergePolicy::PreferLeft,
                "PREFER_RIGHT" => MergePolicy::PreferRight,
                "CONCAT" => {
                    self.expect(&Tok::LParen)?;
                    let sep = self.string()?;
                    self.expect(&Tok::RParen)?;
                    MergePolicy::Concat { separator: sep }
                }
                "BY_SIGNAL" => {
                    self.expect(&Tok::LParen)?;
                    let l = self.string()?;
                    self.expect(&Tok::Comma)?;
                    let r = self.string()?;
                    self.expect(&Tok::RParen)?;
                    MergePolicy::BySignal {
                        left_signal: l,
                        right_signal: r,
                    }
                }
                other => return Err(self.err(format!("unknown merge policy '{other}'"))),
            }
        } else {
            MergePolicy::PreferLeft
        };
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Merge {
            left,
            right,
            into,
            policy,
        })
    }

    fn stmt_delegate(&mut self) -> Result<Stmt> {
        self.expect_kw("DELEGATE")?;
        let agent = self.string()?;
        self.expect_kw("PAYLOAD")?;
        let payload = match &self.peek().tok {
            Tok::Ident(s) if s == "C" => {
                self.advance();
                self.expect(&Tok::LBracket)?;
                let key = self.string()?;
                self.expect(&Tok::RBracket)?;
                PayloadSpec::CtxKey(key)
            }
            Tok::Ident(s) if s == "P" => {
                self.advance();
                self.expect(&Tok::LBracket)?;
                let key = self.string()?;
                self.expect(&Tok::RBracket)?;
                PayloadSpec::PromptKey(key)
            }
            _ => PayloadSpec::Lit(self.value()?),
        };
        self.expect_kw("INTO")?;
        let into = self.string()?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Delegate {
            agent,
            payload,
            into,
        })
    }

    fn stmt_expand(&mut self) -> Result<Stmt> {
        self.expect_kw("EXPAND")?;
        let target = self.string()?;
        let addition = self.string()?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Expand { target, addition })
    }

    fn stmt_retry(&mut self) -> Result<Stmt> {
        self.expect_kw("RETRY")?;
        let label = self.string()?;
        self.expect_kw("USING")?;
        let prompt_key = self.string()?;
        self.expect_kw("IF")?;
        let cond = self.cond()?;
        self.expect_kw("WITH")?;
        let refiner = self.ident()?;
        let args = self.refiner_args()?;
        let mode = self.mode()?;
        let max = if self.eat_kw("MAX") {
            self.number()? as u32
        } else {
            1
        };
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Retry {
            label,
            prompt_key,
            cond,
            refiner,
            args,
            mode,
            max,
        })
    }

    fn stmt_map(&mut self) -> Result<Stmt> {
        self.expect_kw("MAP")?;
        self.expect(&Tok::LBracket)?;
        let mut keys = Vec::new();
        if self.peek().tok != Tok::RBracket {
            loop {
                keys.push(self.string()?);
                if self.peek().tok == Tok::Comma {
                    self.advance();
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RBracket)?;
        self.expect_kw("WITH")?;
        let refiner = self.ident()?;
        let args = self.refiner_args()?;
        let mode = self.mode()?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Map {
            keys,
            refiner,
            args,
            mode,
        })
    }

    fn stmt_switch(&mut self) -> Result<Stmt> {
        self.expect_kw("SWITCH")?;
        self.expect(&Tok::LBrace)?;
        let mut cases = Vec::new();
        let mut default = Vec::new();
        loop {
            if self.eat_kw("CASE") {
                let cond = self.cond()?;
                let body = self.block()?;
                cases.push((cond, body));
            } else if self.eat_kw("DEFAULT") {
                default = self.block()?;
            } else if self.peek().tok == Tok::RBrace {
                self.advance();
                break;
            } else {
                return Err(self.err(format!(
                    "expected 'CASE', 'DEFAULT', or '}}' in SWITCH, found '{}'",
                    self.peek().tok
                )));
            }
        }
        if cases.is_empty() && default.is_empty() {
            return Err(self.err("SWITCH requires at least one CASE or DEFAULT"));
        }
        Ok(Stmt::Switch { cases, default })
    }

    fn stmt_diff(&mut self) -> Result<Stmt> {
        self.expect_kw("DIFF")?;
        let left = self.string()?;
        let right = self.string()?;
        self.expect_kw("INTO")?;
        let into = self.string()?;
        self.expect(&Tok::Semi)?;
        Ok(Stmt::Diff { left, right, into })
    }

    // -----------------------------------------------------------------
    // Conditions
    // -----------------------------------------------------------------

    fn cond(&mut self) -> Result<Cond> {
        self.cond_or()
    }

    fn cond_or(&mut self) -> Result<Cond> {
        let mut parts = vec![self.cond_and()?];
        while self.peek().tok == Tok::OrOr {
            self.advance();
            parts.push(self.cond_and()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Cond::Any(parts)
        })
    }

    fn cond_and(&mut self) -> Result<Cond> {
        let mut parts = vec![self.cond_unary()?];
        while self.peek().tok == Tok::AndAnd {
            self.advance();
            parts.push(self.cond_unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Cond::All(parts)
        })
    }

    fn cond_unary(&mut self) -> Result<Cond> {
        if self.peek().tok == Tok::Bang {
            self.advance();
            return Ok(Cond::Not(Box::new(self.cond_unary()?)));
        }
        if self.peek().tok == Tok::LParen {
            self.advance();
            let c = self.cond()?;
            self.expect(&Tok::RParen)?;
            return Ok(c);
        }
        self.cond_primary()
    }

    fn cond_primary(&mut self) -> Result<Cond> {
        if self.eat_kw("TRUE") {
            return Ok(Cond::Always);
        }
        if self.eat_kw("FALSE") {
            return Ok(Cond::Never);
        }
        // Membership: "key" [NOT] IN C|M
        if let Tok::Str(key) = &self.peek().tok {
            let next = self.tokens.get(self.at + 1).map(|t| &t.tok);
            let is_membership = matches!(next, Some(Tok::Ident(s)) if s == "IN" || s == "NOT");
            if is_membership {
                let key = key.clone();
                self.advance();
                let negated = self.eat_kw("NOT");
                self.expect_kw("IN")?;
                let target = self.ident()?;
                return match (target.as_str(), negated) {
                    ("C", false) => Ok(Cond::InContext(key)),
                    ("C", true) => Ok(Cond::NotInContext(key)),
                    ("M", false) => Ok(Cond::HasSignal(key)),
                    ("M", true) => Ok(Cond::Not(Box::new(Cond::HasSignal(key)))),
                    (other, _) => {
                        Err(self.err(format!("expected C or M after IN, found '{other}'")))
                    }
                };
            }
        }
        // Comparison: operand op operand, or bare operand (truthiness).
        let lhs = self.operand()?;
        let op = match self.peek().tok {
            Tok::Lt => Some(CmpOp::Lt),
            Tok::Le => Some(CmpOp::Le),
            Tok::Gt => Some(CmpOp::Gt),
            Tok::Ge => Some(CmpOp::Ge),
            Tok::EqEq => Some(CmpOp::Eq),
            Tok::NotEq => Some(CmpOp::Ne),
            _ => None,
        };
        match op {
            Some(op) => {
                self.advance();
                let rhs = self.operand()?;
                Ok(Cond::Cmp { lhs, op, rhs })
            }
            None => Ok(Cond::Truthy(lhs)),
        }
    }

    fn operand(&mut self) -> Result<Operand> {
        match &self.peek().tok {
            Tok::Ident(s) if s == "M" || s == "C" => {
                let which = s.clone();
                self.advance();
                self.expect(&Tok::LBracket)?;
                let key = self.string()?;
                self.expect(&Tok::RBracket)?;
                Ok(if which == "M" {
                    Operand::Signal(key)
                } else {
                    Operand::Ctx(key)
                })
            }
            _ => Ok(Operand::Lit(self.value()?)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_view_declarations() {
        let p = parse(
            r#"VIEW med_summary(drug, word_limit = 50)
                 TAGS [clinical, qa]
                 DESC "Medication summary scaffold"
               = "Summarize {{drug}} within {{word_limit}} words.";"#,
        )
        .unwrap();
        assert_eq!(p.views.len(), 1);
        let v = &p.views[0];
        assert_eq!(v.name, "med_summary");
        assert_eq!(v.params[0], ("drug".to_string(), None));
        assert_eq!(v.params[1].1, Some(Value::Int(50)));
        assert_eq!(v.tags, vec!["clinical", "qa"]);
        assert!(v.description.as_deref().unwrap().contains("scaffold"));
    }

    #[test]
    fn parses_the_paper_qa_pipeline() {
        let p = parse(
            r#"
            PIPELINE enoxaparin_qa {
              RET "initial_notes" INTO "notes" LIMIT 5;
              REF CREATE "qa_prompt" FROM VIEW med_summary(drug = "Enoxaparin");
              GEN "answer_0" USING "qa_prompt";
              CHECK M["confidence"] < 0.7 {
                REF UPDATE "qa_prompt" WITH auto_refine() MODE AUTO;
                GEN "answer_1" USING "qa_prompt";
              }
              CHECK "orders" NOT IN C {
                RET "order_lookup" INTO "orders";
              }
              DELEGATE "validation_agent" PAYLOAD C["answer_1"] INTO "evidence_score";
            }
            "#,
        )
        .unwrap();
        assert_eq!(p.pipelines.len(), 1);
        let stmts = &p.pipelines[0].stmts;
        assert_eq!(stmts.len(), 6);
        assert!(matches!(&stmts[0], Stmt::Ret { limit: 5, .. }));
        assert!(matches!(
            &stmts[1],
            Stmt::Ref {
                action: RefAction::Create,
                body: RefBody::FromView { .. },
                ..
            }
        ));
        let Stmt::Check { cond, then, els } = &stmts[3] else {
            panic!("expected CHECK");
        };
        assert_eq!(cond.to_string(), "M[\"confidence\"] < 0.7");
        assert_eq!(then.len(), 2);
        assert!(els.is_empty());
        let Stmt::Check { cond, .. } = &stmts[4] else {
            panic!("expected CHECK");
        };
        assert_eq!(cond.to_string(), "\"orders\" not in C");
    }

    #[test]
    fn parses_conditions_with_precedence() {
        let p =
            parse(r#"PIPELINE c { CHECK M["a"] < 1 && M["b"] > 2 || !("x" IN C) { } }"#).unwrap();
        let Stmt::Check { cond, .. } = &p.pipelines[0].stmts[0] else {
            panic!()
        };
        // OR of (AND, NOT).
        let Cond::Any(parts) = cond else {
            panic!("expected Any, got {cond:?}")
        };
        assert!(matches!(parts[0], Cond::All(_)));
        assert!(matches!(parts[1], Cond::Not(_)));
    }

    #[test]
    fn parses_merge_policies_and_delegate_payloads() {
        let p = parse(
            r#"PIPELINE m {
                 MERGE "a" "b" INTO "c" POLICY CONCAT("\n---\n");
                 MERGE "a" "b" INTO "d" POLICY BY_SIGNAL("confidence:a", "confidence:b");
                 MERGE "a" "b" INTO "e";
                 DELEGATE "agent" PAYLOAD P["a"] INTO "out";
                 DELEGATE "agent" PAYLOAD 42 INTO "out2";
               }"#,
        )
        .unwrap();
        let s = &p.pipelines[0].stmts;
        assert!(matches!(
            &s[0],
            Stmt::Merge {
                policy: MergePolicy::Concat { .. },
                ..
            }
        ));
        assert!(matches!(
            &s[1],
            Stmt::Merge {
                policy: MergePolicy::BySignal { .. },
                ..
            }
        ));
        assert!(matches!(
            &s[2],
            Stmt::Merge {
                policy: MergePolicy::PreferLeft,
                ..
            }
        ));
        assert!(matches!(
            &s[3],
            Stmt::Delegate {
                payload: PayloadSpec::PromptKey(_),
                ..
            }
        ));
        assert!(matches!(
            &s[4],
            Stmt::Delegate {
                payload: PayloadSpec::Lit(Value::Int(42)),
                ..
            }
        ));
    }

    #[test]
    fn parses_derived_operators() {
        let p = parse(
            r#"PIPELINE d {
                 EXPAND "qa_prompt" "Include PE risk factors.";
                 RETRY "answer" USING "qa_prompt" IF M["confidence"] < 0.7
                   WITH auto_refine() MODE AUTO MAX 2;
                 DIFF "v1" "v2" INTO "delta";
               }"#,
        )
        .unwrap();
        let s = &p.pipelines[0].stmts;
        assert!(matches!(&s[0], Stmt::Expand { .. }));
        let Stmt::Retry { max, mode, .. } = &s[1] else {
            panic!()
        };
        assert_eq!(*max, 2);
        assert_eq!(*mode, RefinementMode::Auto);
        assert!(matches!(&s[2], Stmt::Diff { .. }));
    }

    #[test]
    fn parses_gen_variants_and_ret_where() {
        let p = parse(
            r#"PIPELINE g {
                 GEN "a" USING VIEW summary(topic = "school");
                 GEN "b" USING INLINE "Classify: {{ctx:tweet}}";
                 RET "notes" WHERE { patient_id: "pt-1", max_age_hours: 72 }
                   INTO "recent" LIMIT 10;
                 RET "meds" WITH PROMPT "retrieve_meds" INTO "orders";
               }"#,
        )
        .unwrap();
        let s = &p.pipelines[0].stmts;
        assert!(matches!(
            &s[0],
            Stmt::Gen {
                using: UsingClause::View { .. },
                ..
            }
        ));
        assert!(matches!(
            &s[1],
            Stmt::Gen {
                using: UsingClause::Inline(_),
                ..
            }
        ));
        let Stmt::Ret { filters, limit, .. } = &s[2] else {
            panic!()
        };
        assert_eq!(*limit, 10);
        assert_eq!(
            filters.as_ref().unwrap().get("max_age_hours"),
            Some(&Value::Int(72))
        );
        assert!(matches!(
            &s[3],
            Stmt::Ret {
                prompt: Some(_),
                ..
            }
        ));
    }

    #[test]
    fn refiner_arg_forms() {
        let p = parse(
            r#"PIPELINE r {
                 REF APPEND "p" WITH append("Focus on dosage.");
                 REF UPDATE "p" WITH replace(find = "old", with_ = "new");
                 REF UPDATE "p" WITH normalize();
               }"#,
        )
        .unwrap();
        let s = &p.pipelines[0].stmts;
        let args = |i: usize| match &s[i] {
            Stmt::Ref {
                body: RefBody::With { args, .. },
                ..
            } => args.clone(),
            _ => panic!(),
        };
        assert_eq!(args(0), Value::from("Focus on dosage."));
        assert!(matches!(args(1), Value::Map(_)));
        assert_eq!(args(2), Value::Null);
    }

    #[test]
    fn parses_map_and_switch() {
        let p = parse(
            r#"PIPELINE d {
                 MAP ["intro_note", "followup_note"] WITH normalize();
                 SWITCH {
                   CASE C["note_type"] == "discharge" {
                     GEN "a" USING "discharge_view";
                   }
                   CASE C["note_type"] == "radiology" {
                     GEN "a" USING "radiology_view";
                   }
                   DEFAULT {
                     GEN "a" USING "generic_view";
                   }
                 }
               }"#,
        )
        .unwrap();
        let s = &p.pipelines[0].stmts;
        let Stmt::Map { keys, refiner, .. } = &s[0] else {
            panic!("expected MAP, got {:?}", s[0]);
        };
        assert_eq!(
            keys,
            &vec!["intro_note".to_string(), "followup_note".to_string()]
        );
        assert_eq!(refiner, "normalize");
        let Stmt::Switch { cases, default } = &s[1] else {
            panic!("expected SWITCH");
        };
        assert_eq!(cases.len(), 2);
        assert_eq!(default.len(), 1);
    }

    #[test]
    fn empty_switch_is_rejected() {
        let err = parse("PIPELINE p { SWITCH { } }").unwrap_err();
        assert!(err.to_string().contains("CASE"), "{err}");
    }

    #[test]
    fn errors_carry_positions_and_expectations() {
        let err = parse("PIPELINE p { GEN \"a\" \"b\"; }").unwrap_err();
        assert!(err.to_string().contains("USING"), "{err}");

        let err = parse("VIEW v = missing_string;").unwrap_err();
        assert!(err.to_string().contains("string literal"));

        let err = parse("NOISE").unwrap_err();
        assert!(err.to_string().contains("VIEW"));

        let err = parse("PIPELINE p { CHECK M[\"a\"] < 1 { ").unwrap_err();
        assert!(err.to_string().contains("unterminated"));
    }

    #[test]
    fn truthiness_condition() {
        let p = parse(r#"PIPELINE t { CHECK C["orders"] { } }"#).unwrap();
        let Stmt::Check { cond, .. } = &p.pipelines[0].stmts[0] else {
            panic!()
        };
        assert!(matches!(cond, Cond::Truthy(Operand::Ctx(_))));
    }
}
