//! SPEAR-DL lexer: source text → positioned tokens.

use std::fmt;

use crate::error::{DlError, Result};

/// A source position (1-based line and column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pos {
    /// Line, starting at 1.
    pub line: u32,
    /// Column, starting at 1.
    pub col: u32,
}

impl fmt::Display for Pos {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (keywords are uppercase identifiers; the
    /// parser distinguishes them).
    Ident(String),
    /// Double-quoted string literal (escapes `\"`, `\\`, `\n`, `\t`).
    Str(String),
    /// Numeric literal.
    Num(f64),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `=`
    Eq,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
    /// `:`
    Colon,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "{s}"),
            Tok::Str(s) => write!(f, "{s:?}"),
            Tok::Num(n) => write!(f, "{n}"),
            Tok::LBrace => f.write_str("{"),
            Tok::RBrace => f.write_str("}"),
            Tok::LParen => f.write_str("("),
            Tok::RParen => f.write_str(")"),
            Tok::LBracket => f.write_str("["),
            Tok::RBracket => f.write_str("]"),
            Tok::Comma => f.write_str(","),
            Tok::Semi => f.write_str(";"),
            Tok::Eq => f.write_str("="),
            Tok::EqEq => f.write_str("=="),
            Tok::NotEq => f.write_str("!="),
            Tok::Lt => f.write_str("<"),
            Tok::Le => f.write_str("<="),
            Tok::Gt => f.write_str(">"),
            Tok::Ge => f.write_str(">="),
            Tok::AndAnd => f.write_str("&&"),
            Tok::OrOr => f.write_str("||"),
            Tok::Bang => f.write_str("!"),
            Tok::Colon => f.write_str(":"),
            Tok::Eof => f.write_str("<eof>"),
        }
    }
}

/// A token with its source position.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub pos: Pos,
}

/// Tokenize SPEAR-DL source. `#` and `//` start line comments.
///
/// # Errors
///
/// Returns [`DlError`] for unterminated strings, bad escapes, malformed
/// numbers, and unexpected characters — always with a position.
pub fn lex(src: &str) -> Result<Vec<Token>> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! push {
        ($tok:expr, $pos:expr) => {
            tokens.push(Token {
                tok: $tok,
                pos: $pos,
            })
        };
    }

    while let Some(&c) = chars.peek() {
        let pos = Pos { line, col };
        match c {
            '\n' => {
                chars.next();
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                chars.next();
                col += 1;
            }
            '#' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    chars.next();
                }
            }
            '/' => {
                chars.next();
                col += 1;
                if chars.peek() == Some(&'/') {
                    while let Some(&c) = chars.peek() {
                        if c == '\n' {
                            break;
                        }
                        chars.next();
                    }
                } else {
                    return Err(DlError::lex(pos, "unexpected character '/'"));
                }
            }
            '"' => {
                chars.next();
                col += 1;
                let mut s = String::new();
                loop {
                    match chars.next() {
                        None => return Err(DlError::lex(pos, "unterminated string literal")),
                        Some('"') => {
                            col += 1;
                            break;
                        }
                        Some('\\') => {
                            col += 1;
                            match chars.next() {
                                Some('"') => s.push('"'),
                                Some('\\') => s.push('\\'),
                                Some('n') => s.push('\n'),
                                Some('t') => s.push('\t'),
                                Some(other) => {
                                    return Err(DlError::lex(
                                        Pos { line, col },
                                        format!("unknown escape '\\{other}'"),
                                    ))
                                }
                                None => {
                                    return Err(DlError::lex(pos, "unterminated string literal"))
                                }
                            }
                            col += 1;
                        }
                        Some('\n') => {
                            s.push('\n');
                            line += 1;
                            col = 1;
                        }
                        Some(other) => {
                            s.push(other);
                            col += 1;
                        }
                    }
                }
                push!(Tok::Str(s), pos);
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                if c == '-' {
                    s.push(c);
                    chars.next();
                    col += 1;
                    if !chars.peek().is_some_and(char::is_ascii_digit) {
                        return Err(DlError::lex(pos, "expected digits after '-'"));
                    }
                }
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() || d == '.' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                let n: f64 = s
                    .parse()
                    .map_err(|_| DlError::lex(pos, format!("malformed number {s:?}")))?;
                push!(Tok::Num(n), pos);
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' {
                        s.push(d);
                        chars.next();
                        col += 1;
                    } else {
                        break;
                    }
                }
                push!(Tok::Ident(s), pos);
            }
            _ => {
                chars.next();
                col += 1;
                let two = |chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
                           next: char,
                           col: &mut u32| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        *col += 1;
                        true
                    } else {
                        false
                    }
                };
                let tok = match c {
                    '{' => Tok::LBrace,
                    '}' => Tok::RBrace,
                    '(' => Tok::LParen,
                    ')' => Tok::RParen,
                    '[' => Tok::LBracket,
                    ']' => Tok::RBracket,
                    ',' => Tok::Comma,
                    ';' => Tok::Semi,
                    ':' => Tok::Colon,
                    '=' => {
                        if two(&mut chars, '=', &mut col) {
                            Tok::EqEq
                        } else {
                            Tok::Eq
                        }
                    }
                    '!' => {
                        if two(&mut chars, '=', &mut col) {
                            Tok::NotEq
                        } else {
                            Tok::Bang
                        }
                    }
                    '<' => {
                        if two(&mut chars, '=', &mut col) {
                            Tok::Le
                        } else {
                            Tok::Lt
                        }
                    }
                    '>' => {
                        if two(&mut chars, '=', &mut col) {
                            Tok::Ge
                        } else {
                            Tok::Gt
                        }
                    }
                    '&' => {
                        if two(&mut chars, '&', &mut col) {
                            Tok::AndAnd
                        } else {
                            return Err(DlError::lex(pos, "expected '&&'"));
                        }
                    }
                    '|' => {
                        if two(&mut chars, '|', &mut col) {
                            Tok::OrOr
                        } else {
                            return Err(DlError::lex(pos, "expected '||'"));
                        }
                    }
                    other => {
                        return Err(DlError::lex(pos, format!("unexpected character {other:?}")))
                    }
                };
                push!(tok, pos);
            }
        }
    }
    tokens.push(Token {
        tok: Tok::Eof,
        pos: Pos { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks(r#"GEN "answer_0" USING "qa_prompt";"#),
            vec![
                Tok::Ident("GEN".into()),
                Tok::Str("answer_0".into()),
                Tok::Ident("USING".into()),
                Tok::Str("qa_prompt".into()),
                Tok::Semi,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn operators_and_numbers() {
        assert_eq!(
            toks(r#"M["confidence"] < 0.7 && x >= -2"#),
            vec![
                Tok::Ident("M".into()),
                Tok::LBracket,
                Tok::Str("confidence".into()),
                Tok::RBracket,
                Tok::Lt,
                Tok::Num(0.7),
                Tok::AndAnd,
                Tok::Ident("x".into()),
                Tok::Ge,
                Tok::Num(-2.0),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("# full line\nGEN // trailing\n\"x\""),
            vec![Tok::Ident("GEN".into()), Tok::Str("x".into()), Tok::Eof]
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            toks(r#""line\nbreak \"quoted\" \\ tab\t""#),
            vec![Tok::Str("line\nbreak \"quoted\" \\ tab\t".into()), Tok::Eof]
        );
    }

    #[test]
    fn multiline_strings_track_lines() {
        let tokens = lex("\"a\nb\" GEN").unwrap();
        assert_eq!(tokens[1].pos.line, 2, "GEN is on line 2");
    }

    #[test]
    fn lex_errors_carry_positions() {
        let err = lex("GEN @").unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("1:5"), "{msg}");
        assert!(lex("\"unterminated").is_err());
        assert!(lex(r#""bad \q escape""#).is_err());
        assert!(lex("& alone").is_err());
        assert!(lex("- alone").is_err());
    }

    #[test]
    fn positions_advance_per_line() {
        let tokens = lex("A\n  B").unwrap();
        assert_eq!(tokens[0].pos, Pos { line: 1, col: 1 });
        assert_eq!(tokens[1].pos, Pos { line: 2, col: 3 });
    }

    #[test]
    fn eq_vs_eqeq() {
        assert_eq!(toks("= =="), vec![Tok::Eq, Tok::EqEq, Tok::Eof]);
        assert_eq!(toks("! !="), vec![Tok::Bang, Tok::NotEq, Tok::Eof]);
    }
}
