//! SPEAR-DL errors with source positions.

use std::fmt;

use crate::lexer::Pos;

/// Convenience alias.
pub type Result<T> = std::result::Result<T, DlError>;

/// A lexing, parsing, or compilation error.
#[derive(Debug, Clone, PartialEq)]
pub struct DlError {
    /// Which phase produced the error.
    pub phase: Phase,
    /// Source position (best effort for compile errors).
    pub pos: Pos,
    /// Human-readable message.
    pub message: String,
}

/// Processing phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Tokenization.
    Lex,
    /// Parsing.
    Parse,
    /// Compilation to core pipelines.
    Compile,
}

impl DlError {
    /// A lexer error.
    #[must_use]
    pub fn lex(pos: Pos, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Lex,
            pos,
            message: message.into(),
        }
    }

    /// A parser error.
    #[must_use]
    pub fn parse(pos: Pos, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Parse,
            pos,
            message: message.into(),
        }
    }

    /// A compiler error.
    #[must_use]
    pub fn compile(pos: Pos, message: impl Into<String>) -> Self {
        Self {
            phase: Phase::Compile,
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for DlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let phase = match self.phase {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Compile => "compile",
        };
        write!(
            f,
            "spear-dl {phase} error at {}: {}",
            self.pos, self.message
        )
    }
}

impl std::error::Error for DlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_has_phase_and_position() {
        let e = DlError::parse(Pos { line: 3, col: 7 }, "expected ';'");
        let s = e.to_string();
        assert!(s.contains("parse"));
        assert!(s.contains("3:7"));
        assert!(s.contains("expected ';'"));
    }
}
