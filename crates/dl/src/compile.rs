//! Compile SPEAR-DL programs to `spear-core` views and pipelines.

use spear_core::history::RefinementMode;
use spear_core::llm::GenOptions;
use spear_core::ops::{Op, PromptRef};
use spear_core::pipeline::Pipeline;
use spear_core::retriever::RetrievalQuery;
use spear_core::value::{map, Value};
use spear_core::view::{ParamSpec, ViewCatalog, ViewDef};

use crate::ast::{Program, RefBody, Stmt, UsingClause};
use crate::error::Result;
use crate::parser::parse;

/// A compiled program: the views to install and the executable pipelines.
#[derive(Debug, Clone)]
pub struct Compiled {
    /// View definitions, in declaration order.
    pub views: Vec<ViewDef>,
    /// Pipelines, in declaration order.
    pub pipelines: Vec<Pipeline>,
}

impl Compiled {
    /// Register every declared view into `catalog` (re-registration bumps
    /// versions, matching the runtime's versioning rules).
    pub fn install_views(&self, catalog: &ViewCatalog) {
        for v in &self.views {
            catalog.register(v.clone());
        }
    }

    /// Find a compiled pipeline by name.
    #[must_use]
    pub fn pipeline(&self, name: &str) -> Option<&Pipeline> {
        self.pipelines.iter().find(|p| p.name == name)
    }

    /// Lower every compiled pipeline to the core plan IR, in declaration
    /// order. DL programs thereby target the same execution spine as
    /// optimizer plans and hand-built pipelines; a host can lower once and
    /// re-execute via `Runtime::execute_lowered` without re-flattening.
    ///
    /// # Errors
    ///
    /// Returns [`spear_core::error::SpearError::InvalidPlan`] if any
    /// lowered plan fails the structural verifier (lowering fails closed
    /// rather than emitting a malformed slot program).
    pub fn lower(&self) -> spear_core::error::Result<Vec<spear_core::plan::LoweredPlan>> {
        self.pipelines.iter().map(spear_core::plan::lower).collect()
    }

    /// Run the full IR verifier over every compiled pipeline against
    /// `runtime` (install the program's views first, as with
    /// [`Compiled::validate`]). Returns `(pipeline name, diagnostic)`
    /// pairs — including warning-severity lints that
    /// [`Compiled::validate`] does not surface.
    ///
    /// # Errors
    ///
    /// Propagates lowering failures as [`spear_core::error::SpearError`].
    pub fn verify(
        &self,
        runtime: &spear_core::runtime::Runtime,
    ) -> spear_core::error::Result<Vec<(String, spear_core::analysis::Diagnostic)>> {
        let mut out = Vec::new();
        for pipeline in &self.pipelines {
            let plan = spear_core::plan::lower(pipeline)?;
            let verifier = spear_core::analysis::Verifier::with_runtime(runtime);
            for diagnostic in verifier.verify(&plan) {
                out.push((pipeline.name.clone(), diagnostic));
            }
        }
        Ok(out)
    }

    /// Statically validate every compiled pipeline against `runtime` (the
    /// program's own views are assumed installed — pass a runtime that has
    /// them, typically after [`Compiled::install_views`]). Returns
    /// `(pipeline name, issue)` pairs.
    #[must_use]
    pub fn validate(
        &self,
        runtime: &spear_core::runtime::Runtime,
    ) -> Vec<(String, spear_core::validate::ValidationIssue)> {
        self.pipelines
            .iter()
            .flat_map(|p| {
                runtime
                    .validate(p)
                    .into_iter()
                    .map(move |i| (p.name.clone(), i))
            })
            .collect()
    }
}

/// Parse and compile SPEAR-DL source.
///
/// # Errors
///
/// Returns lexing/parsing errors with positions.
pub fn compile(src: &str) -> Result<Compiled> {
    Ok(compile_program(&parse(src)?))
}

/// Compile an already-parsed program.
#[must_use]
pub fn compile_program(program: &Program) -> Compiled {
    let views = program
        .views
        .iter()
        .map(|decl| {
            let mut def = ViewDef::new(decl.name.clone(), decl.template.clone());
            for (name, default) in &decl.params {
                def = def.with_param(match default {
                    Some(d) => ParamSpec::optional(name.clone(), d.clone()),
                    None => ParamSpec::required(name.clone()),
                });
            }
            for tag in &decl.tags {
                def = def.with_tag(tag.clone());
            }
            if let Some(d) = &decl.description {
                def = def.with_description(d.clone());
            }
            def
        })
        .collect();

    let pipelines = program
        .pipelines
        .iter()
        .map(|decl| Pipeline {
            name: decl.name.clone(),
            ops: compile_stmts(&decl.stmts),
        })
        .collect();

    Compiled { views, pipelines }
}

fn compile_stmts(stmts: &[Stmt]) -> Vec<Op> {
    let mut ops = Vec::with_capacity(stmts.len());
    for stmt in stmts {
        compile_stmt(stmt, &mut ops);
    }
    ops
}

fn compile_stmt(stmt: &Stmt, ops: &mut Vec<Op>) {
    match stmt {
        Stmt::Ret {
            source,
            filters,
            prompt,
            into,
            limit,
        } => ops.push(Op::Ret {
            source: source.clone(),
            query: match filters {
                Some(f) => RetrievalQuery::Structured(f.clone()),
                None => RetrievalQuery::All,
            },
            prompt: prompt.clone(),
            into: into.clone(),
            limit: *limit,
        }),
        Stmt::Gen { label, using } => ops.push(Op::Gen {
            label: label.clone(),
            prompt: match using {
                UsingClause::Key(k) => PromptRef::Key(k.clone()),
                UsingClause::View { name, args } => PromptRef::View {
                    name: name.clone(),
                    args: args.clone(),
                },
                UsingClause::Inline(text) => PromptRef::Inline(text.clone()),
            },
            options: GenOptions::default(),
        }),
        Stmt::Ref {
            action,
            target,
            body,
        } => {
            let (refiner, args, mode) = match body {
                RefBody::FromView { view, args } => (
                    "from_view".to_string(),
                    map([
                        ("view", Value::from(view.clone())),
                        ("args", Value::Map(args.clone())),
                    ]),
                    RefinementMode::Manual,
                ),
                RefBody::Text(text) => (
                    "set_text".to_string(),
                    Value::from(text.clone()),
                    RefinementMode::Manual,
                ),
                RefBody::With {
                    refiner,
                    args,
                    mode,
                } => (refiner.clone(), args.clone(), *mode),
            };
            ops.push(Op::Ref {
                target: target.clone(),
                action: *action,
                refiner,
                args,
                mode,
            });
        }
        Stmt::Check { cond, then, els } => ops.push(Op::Check {
            cond: cond.clone(),
            then_ops: compile_stmts(then),
            else_ops: compile_stmts(els),
        }),
        Stmt::Merge {
            left,
            right,
            into,
            policy,
        } => ops.push(Op::Merge {
            left: left.clone(),
            right: right.clone(),
            into: into.clone(),
            policy: policy.clone(),
        }),
        Stmt::Delegate {
            agent,
            payload,
            into,
        } => ops.push(Op::Delegate {
            agent: agent.clone(),
            payload: payload.clone(),
            into: into.clone(),
        }),
        // Derived operators lower exactly like the builder does.
        Stmt::Expand { target, addition } => {
            let built = Pipeline::builder("expand").expand(target, addition).build();
            ops.extend(built.ops);
        }
        Stmt::Retry {
            label,
            prompt_key,
            cond,
            refiner,
            args,
            mode,
            max,
        } => {
            let built = Pipeline::builder("retry")
                .retry_gen(
                    label,
                    prompt_key,
                    cond.clone(),
                    refiner,
                    args.clone(),
                    *mode,
                    *max,
                )
                .build();
            ops.extend(built.ops);
        }
        Stmt::Diff { left, right, into } => {
            let built = Pipeline::builder("diff").diff(left, right, into).build();
            ops.extend(built.ops);
        }
        Stmt::Map {
            keys,
            refiner,
            args,
            mode,
        } => {
            let key_refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            let built = Pipeline::builder("map")
                .map_prompts(&key_refs, refiner, args.clone(), *mode)
                .build();
            ops.extend(built.ops);
        }
        Stmt::Switch { cases, default } => {
            let lowered: Vec<(spear_core::condition::Cond, Vec<Op>)> = cases
                .iter()
                .map(|(cond, body)| (cond.clone(), compile_stmts(body)))
                .collect();
            let built = Pipeline::builder("switch")
                .switch(lowered, compile_stmts(default))
                .build();
            ops.extend(built.ops);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::condition::Cond;
    use spear_core::history::RefAction;

    const PROGRAM: &str = r#"
    VIEW med_summary(drug) TAGS [clinical] =
      "Summarize the medication history and highlight {{drug}}.\nNotes: {{ctx:notes}}";

    PIPELINE qa {
      REF CREATE "qa_prompt" FROM VIEW med_summary(drug = "Enoxaparin");
      GEN "answer_0" USING "qa_prompt";
      RETRY "answer" USING "qa_prompt" IF M["confidence"] < 0.7
        WITH auto_refine() MODE AUTO MAX 2;
      CHECK "orders" NOT IN C {
        RET "order_lookup" INTO "orders" LIMIT 3;
      }
    }
    "#;

    #[test]
    fn compiles_views_with_params_and_tags() {
        let c = compile(PROGRAM).unwrap();
        assert_eq!(c.views.len(), 1);
        let v = &c.views[0];
        assert_eq!(v.name, "med_summary");
        assert!(v.params[0].required);
        assert!(v.tags.contains("clinical"));

        let catalog = ViewCatalog::new();
        c.install_views(&catalog);
        assert!(catalog.contains("med_summary"));
    }

    #[test]
    fn compiles_pipeline_with_lowered_derived_ops() {
        let c = compile(PROGRAM).unwrap();
        let p = c.pipeline("qa").expect("pipeline exists");
        // create + gen + (retry: gen + 2 checks) + check = 6 top-level ops.
        assert_eq!(p.ops.len(), 6);
        assert_eq!(p.ops[0].kind(), "REF");
        assert_eq!(p.ops[1].kind(), "GEN");
        assert_eq!(p.ops[2].kind(), "GEN"); // retry's initial gen
        assert_eq!(p.ops[3].kind(), "CHECK");
        assert_eq!(p.ops[4].kind(), "CHECK");
        assert_eq!(p.ops[5].kind(), "CHECK");
        // The retry checks contain REF (auto mode) + GEN.
        let Op::Check { then_ops, cond, .. } = &p.ops[3] else {
            panic!()
        };
        assert_eq!(cond, &Cond::low_confidence(0.7));
        let Op::Ref { mode, action, .. } = &then_ops[0] else {
            panic!()
        };
        assert_eq!(*mode, RefinementMode::Auto);
        assert_eq!(*action, RefAction::Update);
    }

    #[test]
    fn compiled_pipeline_executes_end_to_end() {
        use spear_core::prelude::*;
        use std::sync::Arc;

        let c = compile(PROGRAM).unwrap();
        let views = ViewCatalog::new();
        c.install_views(&views);
        let runtime = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .retriever(
                "order_lookup",
                Arc::new(InMemoryRetriever::from_texts([(
                    "o1",
                    "enoxaparin 40mg order",
                )])),
            )
            .views(views)
            .build();
        let mut state = ExecState::new();
        state.context.set("notes", "enoxaparin 40 mg daily");
        runtime
            .execute(c.pipeline("qa").unwrap(), &mut state)
            .unwrap();
        assert!(state.context.contains("answer_0"));
        assert!(
            state.context.contains("orders"),
            "missing-order retrieval fired"
        );
        let entry = state.prompts.get("qa_prompt").unwrap();
        assert!(entry.derives_from_view("med_summary"));
    }

    #[test]
    fn expand_and_diff_lower_to_ref() {
        let c = compile(
            r#"PIPELINE d {
                 REF CREATE "a" TEXT "alpha";
                 REF CREATE "b" TEXT "alpha beta";
                 EXPAND "a" "gamma";
                 DIFF "a" "b" INTO "delta";
               }"#,
        )
        .unwrap();
        let p = c.pipeline("d").unwrap();
        assert_eq!(p.ops.len(), 4);
        assert!(p.ops.iter().all(|o| o.kind() == "REF"));
    }

    #[test]
    fn map_and_switch_lower_onto_core_ops() {
        let c = compile(
            r#"PIPELINE d {
                 REF CREATE "a" TEXT "one";
                 REF CREATE "b" TEXT "two";
                 MAP ["a", "b"] WITH normalize();
                 SWITCH {
                   CASE "discharge" IN C { EXPAND "a" "discharge extras"; }
                   DEFAULT { EXPAND "a" "generic extras"; }
                 }
               }"#,
        )
        .unwrap();
        let p = c.pipeline("d").unwrap();
        // 2 creates + 2 map refs + 1 nested check = 5 top-level ops.
        assert_eq!(p.ops.len(), 5);
        assert_eq!(p.ops[2].kind(), "REF");
        assert_eq!(p.ops[3].kind(), "REF");
        let Op::Check {
            then_ops, else_ops, ..
        } = &p.ops[4]
        else {
            panic!("expected lowered SWITCH to be a CHECK");
        };
        assert_eq!(then_ops.len(), 1);
        assert_eq!(else_ops.len(), 1);
    }

    #[test]
    fn switch_executes_first_matching_case() {
        use spear_core::prelude::*;
        use std::sync::Arc;
        let c = compile(
            r#"PIPELINE dispatch {
                 REF CREATE "p" TEXT "base";
                 SWITCH {
                   CASE "radiology" IN C { EXPAND "p" "radiology branch"; }
                   CASE "discharge" IN C { EXPAND "p" "discharge branch"; }
                   DEFAULT { EXPAND "p" "default branch"; }
                 }
               }"#,
        )
        .unwrap();
        let rt = Runtime::builder().llm(Arc::new(EchoLlm::default())).build();
        let mut state = ExecState::new();
        state.context.set("discharge", true);
        rt.execute(c.pipeline("dispatch").unwrap(), &mut state)
            .unwrap();
        let text = state.prompts.get("p").unwrap().text;
        assert!(text.contains("discharge branch"), "{text}");
        assert!(!text.contains("default branch"));
    }

    #[test]
    fn compiled_programs_validate_against_a_runtime() {
        use spear_core::prelude::*;
        use std::sync::Arc;
        let c = compile(PROGRAM).unwrap();
        // Without views installed: issues; after install: clean (the
        // retriever is still missing, so exactly those issues remain).
        let rt = Runtime::builder().llm(Arc::new(EchoLlm::default())).build();
        let before = c.validate(&rt);
        assert!(before.iter().any(|(_, i)| i.message.contains("view")));

        let rt2 = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .retriever(
                "order_lookup",
                Arc::new(InMemoryRetriever::from_texts([("o", "x")])),
            )
            .views({
                let v = ViewCatalog::new();
                c.install_views(&v);
                v
            })
            .build();
        assert_eq!(c.validate(&rt2), vec![]);
    }

    #[test]
    fn lowering_targets_the_core_ir() {
        use spear_core::plan::LoweredOp;
        let c = compile(PROGRAM).unwrap();
        let lowered = c.lower().expect("compiled pipelines lower clean");
        assert_eq!(lowered.len(), 1);
        let plan = &lowered[0];
        assert_eq!(plan.name, "qa");
        assert_eq!(plan.source_size, c.pipeline("qa").unwrap().size());
        // The retry CHECKs flatten into explicit jump targets; executing
        // the lowered form matches executing the tree.
        assert!(plan
            .ops
            .iter()
            .any(|op| matches!(op, LoweredOp::Check { on_false, .. } if *on_false != 0)));

        use spear_core::prelude::*;
        use std::sync::Arc;
        let views = ViewCatalog::new();
        c.install_views(&views);
        let runtime = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .retriever(
                "order_lookup",
                Arc::new(InMemoryRetriever::from_texts([("o1", "order")])),
            )
            .views(views)
            .build();
        let mut tree_state = ExecState::new();
        tree_state.context.set("notes", "enoxaparin 40 mg daily");
        let mut ir_state = tree_state.deep_clone();
        let tree = runtime
            .execute_tree(c.pipeline("qa").unwrap(), &mut tree_state)
            .unwrap();
        let ir = runtime.execute_lowered(plan, &mut ir_state).unwrap();
        assert_eq!(tree, ir);
        assert_eq!(tree_state.trace, ir_state.trace);
    }

    #[test]
    fn pipeline_lookup_by_name() {
        let c = compile("PIPELINE a { } PIPELINE b { }").unwrap();
        assert!(c.pipeline("a").is_some());
        assert!(c.pipeline("b").is_some());
        assert!(c.pipeline("z").is_none());
    }
}
