//! Shared workload text: the reusable view **V** of the paper's §7
//! evaluation ("summarize tweets (Map) and select those with negative
//! sentiment (Filter) ... stored as a reusable view V"), the Static-Prompt
//! baseline text, and the Filter/Map stage instructions for the fusion
//! experiments.
//!
//! Wording discipline matters here: the quality model keys on structural
//! markers ("Objective:", "focus on", "step by step", worked examples), so
//! the base texts deliberately avoid them — the *refinement strategies* are
//! what introduce them, exactly as in the paper.

use spear_core::view::ViewDef;

/// Guidelines shared by the base view (kept free of bonus markers).
const V_GUIDELINES: &[&str] = &[
    "Read the entire tweet before deciding and weigh every clause, including \
     trailing qualifiers, emoticons, and elongated words that often carry the \
     author's real attitude toward the subject.",
    "Treat sarcasm and irony with care: praise of an obviously bad situation \
     should be read as criticism of that situation rather than as genuine \
     approval of it.",
    "Disregard usernames, hashtags, and links when judging the content, but \
     retain any attitude they imply about the subject under discussion.",
    "When several subjects appear in one tweet, decide based on the subject \
     the author spends the most words on rather than the one mentioned first.",
    "If the tweet quotes or replies to someone else, classify the author's \
     attitude toward the quoted material rather than the material itself.",
    "Prefer the literal wording over outside knowledge: the author's stated \
     experience determines the label even when that experience seems unusual.",
    "Keep the cleaned rendering faithful to the original: drop decorations \
     and repair obvious typos without adding, softening, or strengthening \
     any claim the author makes.",
    "Weigh intensity words and repeated punctuation as amplifiers of the \
     surrounding attitude rather than as independent signals, and never let \
     an amplifier alone decide the label when the wording is neutral.",
    "When the attitude changes over the course of the tweet, label the \
     final attitude the author lands on, since closing words usually state \
     the author's settled judgement of the subject.",
    "Produce the answer in the requested output format with no preamble and \
     no commentary beyond what the format itself asks for.",
];

/// Render the base view V: summarize (Map) + negative-sentiment filter,
/// with a word limit for consistent generation lengths (§7: "we include
/// word limit constraints in the instructions").
#[must_use]
pub fn view_v_text() -> String {
    let mut text = String::from(
        "You are given one tweet per request. Summarize the tweet and decide \
         whether it expresses negative sentiment; only tweets that do are \
         selected.\nGuidelines:\n",
    );
    for (i, g) in V_GUIDELINES.iter().enumerate() {
        text.push_str(&format!("{}. {g}\n", i + 1));
    }
    text.push_str(
        "Answer with the selection label, then ' :: ', then the cleaned \
         summary, using a word limit of 60 for the whole answer.",
    );
    text
}

/// The base view V as a registered view definition.
#[must_use]
pub fn view_v() -> ViewDef {
    ViewDef::new("tweet_pipeline", view_v_text())
        .with_tag("sentiment")
        .with_description("Base tweet pipeline: summarize (Map) + negative-sentiment filter")
}

/// The Static-Prompt baseline: a freshly written instruction for the
/// *refined* task (negative AND school-related), with no reference to V and
/// no structural bonus markers — what a user writing from scratch produces.
#[must_use]
pub fn static_prompt_text() -> String {
    let mut text = String::from(
        "For each tweet you receive, summarize it and decide whether it is \
         both about school topics and negative in sentiment; select only \
         tweets meeting both conditions.\nRules to follow:\n",
    );
    for (i, g) in V_GUIDELINES.iter().enumerate() {
        // Re-worded ordering so the static prompt shares no prefix with V.
        text.push_str(&format!(
            "{}. {}\n",
            i + 1,
            g.replace("tweet", "message").replace("author", "writer")
        ));
    }
    text.push_str(
        "Answer with the selection label, then ' :: ', then the cleaned \
         summary, using a word limit of 60 for the whole answer.",
    );
    text
}

/// Map-stage instruction for the fusion experiments: a moderate cleanup
/// spec (cheaper than the filter, but not free).
#[must_use]
pub fn map_instruction() -> String {
    "Clean up the tweet and summarize the remaining content. Remove \
     usernames, hashtags, link fragments, and decorative punctuation; repair \
     obvious typos and collapse elongated words to their plain spelling; \
     keep every factual claim and every attitude word exactly as the author \
     wrote it; do not reorder the remaining words unless a repaired typo \
     forces it; and render the result as a single plain sentence without \
     quotation marks."
        .to_string()
}

/// Filter-stage instruction for the fusion experiments: a detailed criteria
/// block (filters in the paper's workload are the expensive stage — long
/// criteria prefill plus a justification decode).
#[must_use]
pub fn filter_instruction() -> String {
    let mut text = String::from(
        "Classify the sentiment of the tweet as positive or negative and \
         keep only negative tweets. Decision criteria:\n",
    );
    for (i, g) in V_GUIDELINES.iter().take(4).enumerate() {
        text.push_str(&format!("{}. {g}\n", i + 1));
    }
    text.push_str(
        "Apply every criterion above before answering, and state a \
         justification.",
    );
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use spear_core::features::PromptFeatures;
    use spear_llm::Tokenizer;

    #[test]
    fn base_texts_avoid_bonus_markers() {
        for text in [view_v_text(), static_prompt_text(), filter_instruction()] {
            let f = PromptFeatures::detect(&text);
            assert!(!f.has_objective, "no objective marker in base text");
            assert!(!f.has_specificity, "no specificity marker");
            assert!(!f.has_hint, "no reasoning hint");
            assert!(!f.has_example, "no worked example");
        }
    }

    #[test]
    fn view_v_is_long_enough_to_cache_meaningfully() {
        let tokens = Tokenizer::new().count(&view_v_text());
        assert!(
            (350..700).contains(&tokens),
            "V should be a substantial instruction, got {tokens} tokens"
        );
    }

    #[test]
    fn static_prompt_shares_no_prefix_with_v() {
        let v = view_v_text();
        let s = static_prompt_text();
        let common = v.chars().zip(s.chars()).take_while(|(a, b)| a == b).count();
        assert!(common < 10, "prefixes must diverge, common={common}");
    }

    #[test]
    fn filter_is_much_longer_than_map() {
        let t = Tokenizer::new();
        let f = t.count(&filter_instruction());
        let m = t.count(&map_instruction());
        assert!(f > m * 3 / 2, "filter {f} vs map {m}");
    }

    #[test]
    fn texts_carry_the_task_detection_markers() {
        let v = view_v_text().to_lowercase();
        assert!(v.contains("summarize") && v.contains("sentiment"));
        let s = static_prompt_text().to_lowercase();
        assert!(s.contains("school") && s.contains("summarize"));
    }
}
