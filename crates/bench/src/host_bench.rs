//! Host-path throughput harness, emitting `BENCH_host.json`.
//!
//! Measures what the simulator's virtual clock deliberately excludes: the
//! *real* host-side cost of admitting a request — template rendering
//! aside, that is tokenize → block-hash → prefix-cache bookkeeping plus
//! the task-model dispatch. Two modes run the same request stream against
//! separate engines:
//!
//! - **baseline** — flat-text requests with the token interner disabled:
//!   every request re-tokenizes and re-hashes its full prompt (the pre-
//!   fast-path behaviour);
//! - **fast** — segmented requests with the interner on: a warm prompt-
//!   family prefix is tokenized and hashed once per process, so steady-
//!   state per-request work is O(suffix).
//!
//! Responses are asserted byte-identical across modes (the fast path is a
//! pure host optimization), and an optional allocation-counter hook (wired
//! up by the `bench_host` binary's global allocator) reports
//! allocations/request for both modes.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use serde::Serialize;
use spear_core::condition::{Cond, Operand};
use spear_core::context::Context;
use spear_core::history::RefinementMode;
use spear_core::llm::{GenRequest, GenResponse, LlmClient};
use spear_core::pipeline::Pipeline;
use spear_core::plan::{lower, LoweredPlan};
use spear_core::runtime::{ExecState, Runtime, RuntimeConfig};
use spear_core::template;
use spear_core::EchoLlm;
use spear_llm::{EngineConfig, InternStats, ModelProfile, SimLlm};
use spear_serve::loadgen::family_instruction;

use crate::workload;

/// Snapshot of the process allocator: `(allocations, bytes)` so far.
/// Provided by the `bench_host` binary; `None` reports zeros.
pub type AllocSnapshotFn = fn() -> (u64, u64);

/// Harness configuration.
#[derive(Debug, Clone)]
pub struct HostBenchConfig {
    /// Seed stamped into the engine config (the workloads are fixed).
    pub seed: u64,
    /// Distinct requests per workload.
    pub requests: usize,
    /// Prompt families in the serve workload.
    pub families: usize,
    /// Timed passes over the request list (after one warm-up pass).
    pub iters: usize,
}

impl Default for HostBenchConfig {
    fn default() -> Self {
        Self {
            seed: 140,
            requests: 384,
            families: 6,
            iters: 8,
        }
    }
}

/// One mode's measurement.
#[derive(Debug, Clone, Serialize)]
pub struct ModeResult {
    /// Host-side requests per second over the timed passes.
    pub requests_per_sec: f64,
    /// Mean wall time per request in nanoseconds.
    pub ns_per_request: f64,
    /// Heap allocations per request (0 when no counter is installed).
    pub allocs_per_request: f64,
    /// Heap bytes per request (0 when no counter is installed).
    pub bytes_per_request: f64,
}

/// Baseline vs fast comparison on one workload.
#[derive(Debug, Clone, Serialize)]
pub struct WorkloadResult {
    /// Workload name.
    pub name: String,
    /// Distinct requests in the stream.
    pub requests: usize,
    /// Flat text, interner off.
    pub baseline: ModeResult,
    /// Segmented text, interner on.
    pub fast: ModeResult,
    /// `fast.requests_per_sec / baseline.requests_per_sec`.
    pub speedup: f64,
    /// Whether every response matched byte-for-byte across modes.
    pub responses_identical: bool,
    /// Interner counters after the fast run.
    pub intern: InternStats,
}

/// Dispatch microbenchmark result: the same synthetic check-heavy plan
/// stepped by the lowered-IR interpreter vs the compiled bytecode VM.
#[derive(Debug, Clone, Serialize)]
pub struct DispatchResult {
    /// Lowered slots in the synthetic plan.
    pub slots: usize,
    /// Operators executed per pass (both spines count identically).
    pub executed_ops: u64,
    /// Timed passes per spine.
    pub passes: usize,
    /// Interpreter throughput, operators per second.
    pub interpreter_ops_per_sec: f64,
    /// VM throughput, operators per second.
    pub vm_ops_per_sec: f64,
    /// `vm_ops_per_sec / interpreter_ops_per_sec`.
    pub speedup: f64,
    /// Whether one run of each spine produced byte-identical traces.
    pub traces_identical: bool,
}

/// The full report serialized to `BENCH_host.json`.
#[derive(Debug, Clone, Serialize)]
pub struct HostBenchReport {
    /// Engine seed.
    pub seed: u64,
    /// Timed passes per mode.
    pub iters: usize,
    /// Per-workload results.
    pub workloads: Vec<WorkloadResult>,
    /// Interpreter-vs-VM dispatch microbenchmark.
    pub dispatch: DispatchResult,
}

/// A prebuilt request in both forms: flat and segmented.
struct PreparedRequest {
    flat: GenRequest,
    segmented: GenRequest,
}

fn prepare(template_text: &str, identity: &str, item_key: &str, item: &str) -> PreparedRequest {
    let params = BTreeMap::new();
    let mut context = Context::new();
    context.set(item_key, item);
    let segments = template::render_segmented(template_text, &params, &context)
        .expect("workload template renders");
    let flat_text =
        template::render(template_text, &params, &context).expect("workload template renders");
    debug_assert_eq!(segments.join(), flat_text);
    PreparedRequest {
        flat: GenRequest::structured(flat_text.clone(), identity),
        segmented: GenRequest::structured(flat_text, identity).with_segments(segments),
    }
}

/// The batch-shaped workload: every request shares the base view V's
/// instruction block and carries its own tweet.
fn batch_requests(n: usize) -> Vec<PreparedRequest> {
    let template_text = format!("{}\nTweet: {{{{ctx:tweet}}}}", workload::view_v_text());
    let moods = ["awful", "great", "boring", "terrible", "lovely", "gloomy"];
    let subjects = ["homework", "commute", "weather", "meeting", "exam", "lunch"];
    (0..n)
        .map(|i| {
            let tweet = format!(
                "what a {} {} today, case {i}",
                moods[i % moods.len()],
                subjects[(i / moods.len()) % subjects.len()]
            );
            prepare(&template_text, "view:v@1#0/v1", "tweet", &tweet)
        })
        .collect()
}

/// The serve-shaped warm-prefix workload: `families` long instructions
/// (the spear-serve load generator's), requests round-robined across them.
fn serve_requests(n: usize, families: usize) -> Vec<PreparedRequest> {
    let templates: Vec<String> = (0..families).map(family_instruction).collect();
    let words = ["ledger", "gasket", "orbit", "thicket", "bramble", "quarry"];
    (0..n)
        .map(|i| {
            let family = i % families;
            let item = format!(
                "case {i}: {} {} {}",
                words[i % words.len()],
                words[(i / 2) % words.len()],
                words[(i / 3) % words.len()]
            );
            prepare(
                &templates[family],
                &format!("view:serve_family_{family}@1#0/v1"),
                "item",
                &item,
            )
        })
        .collect()
}

fn engine(seed: u64, intern_enabled: bool) -> SimLlm {
    SimLlm::with_config(
        ModelProfile::qwen25_7b_instruct(),
        EngineConfig {
            seed,
            intern_enabled,
            ..EngineConfig::default()
        },
    )
}

/// Run one mode: a warm-up pass (collecting responses for the equivalence
/// check), then `iters` timed passes.
fn run_mode(
    engine: &SimLlm,
    requests: &[&GenRequest],
    iters: usize,
    alloc_snapshot: Option<AllocSnapshotFn>,
) -> (ModeResult, Vec<GenResponse>) {
    let responses: Vec<GenResponse> = requests
        .iter()
        .map(|r| engine.generate(r).expect("workload request succeeds"))
        .collect();

    let timed = requests.len() * iters;
    let alloc_before = alloc_snapshot.map_or((0, 0), |f| f());
    let start = Instant::now();
    for _ in 0..iters {
        for r in requests {
            std::hint::black_box(engine.generate(r).expect("workload request succeeds"));
        }
    }
    let elapsed = start.elapsed();
    let alloc_after = alloc_snapshot.map_or((0, 0), |f| f());

    let secs = elapsed.as_secs_f64().max(1e-12);
    (
        ModeResult {
            requests_per_sec: timed as f64 / secs,
            ns_per_request: elapsed.as_nanos() as f64 / timed as f64,
            allocs_per_request: (alloc_after.0 - alloc_before.0) as f64 / timed as f64,
            bytes_per_request: (alloc_after.1 - alloc_before.1) as f64 / timed as f64,
        },
        responses,
    )
}

fn run_workload(
    name: &str,
    prepared: &[PreparedRequest],
    config: &HostBenchConfig,
    alloc_snapshot: Option<AllocSnapshotFn>,
) -> WorkloadResult {
    let flat: Vec<&GenRequest> = prepared.iter().map(|p| &p.flat).collect();
    let segmented: Vec<&GenRequest> = prepared.iter().map(|p| &p.segmented).collect();

    let baseline_engine = engine(config.seed, false);
    let (baseline, baseline_responses) =
        run_mode(&baseline_engine, &flat, config.iters, alloc_snapshot);

    let fast_engine = engine(config.seed, true);
    let (fast, fast_responses) = run_mode(&fast_engine, &segmented, config.iters, alloc_snapshot);

    // The fast path must be observably invisible: compare everything except
    // latency's wall-clock-independent fields — which here means comparing
    // the full responses, since all fields are virtual and deterministic.
    let responses_identical = baseline_responses == fast_responses;

    WorkloadResult {
        name: name.to_string(),
        requests: prepared.len(),
        speedup: fast.requests_per_sec / baseline.requests_per_sec.max(1e-12),
        baseline,
        fast,
        responses_identical,
        intern: fast_engine.interner_stats(),
    }
}

/// A synthetic 64-slot, check-heavy plan with no LLM calls: one prompt
/// CREATE followed by 63 empty-branch CHECKs alternating between a
/// context-membership test (true) and a truthiness test on a missing key
/// (false). Both spines do identical condition evaluation and tracing per
/// slot, so the measured difference is the dispatch machinery itself:
/// enum walk with per-step target validation vs compact bytecode fetch
/// over a constant pool.
fn dispatch_plan() -> LoweredPlan {
    let mut b = Pipeline::builder("dispatch_64").create_text(
        "p0",
        "dispatch probe",
        RefinementMode::Manual,
    );
    for i in 0..63 {
        let cond = if i % 2 == 0 {
            Cond::InContext("seed".to_string())
        } else {
            Cond::Truthy(Operand::Ctx("missing".to_string()))
        };
        b = b.check(cond, |t| t);
    }
    lower(&b.build()).expect("synthetic plan lowers")
}

/// Run the dispatch microbenchmark: `passes` timed passes per spine over
/// the synthetic plan, interpreter first, VM second.
#[must_use]
pub fn run_dispatch(passes: usize) -> DispatchResult {
    let plan = dispatch_plan();
    // Verification off: the gate would bill the interpreter for a
    // structural re-verify per pass that the VM pays once at compile time;
    // here we want the steady-state stepping cost alone.
    let rt = Runtime::builder()
        .llm(Arc::new(EchoLlm::default()))
        .config(RuntimeConfig {
            verify: false,
            ..RuntimeConfig::default()
        })
        .build();
    let program = spear_core::compile(&plan).expect("synthetic plan compiles");
    let fresh = || {
        let mut state = ExecState::new();
        state.context.set("seed", "1");
        state
    };

    // One run of each spine for the equivalence check and the op count.
    let mut int_state = fresh();
    let int_result = rt.execute_lowered_interpreted(&plan, &mut int_state);
    let mut vm_state = fresh();
    let vm_result = rt.execute_program(&program, &mut vm_state);
    let traces_identical = format!(
        "{int_result:?}|{}",
        int_state.trace.to_jsonl().expect("trace serializes")
    ) == format!(
        "{vm_result:?}|{}",
        vm_state.trace.to_jsonl().expect("trace serializes")
    );
    let executed_ops = int_state.step;

    let time = |spine: &dyn Fn(&mut ExecState)| -> f64 {
        // Warm-up pass, then the timed passes.
        spine(&mut fresh());
        let start = Instant::now();
        for _ in 0..passes {
            let mut state = fresh();
            spine(&mut state);
            std::hint::black_box(&state.step);
        }
        let secs = start.elapsed().as_secs_f64().max(1e-12);
        (executed_ops as f64 * passes as f64) / secs
    };
    let interpreter_ops_per_sec = time(&|state| {
        let _ = rt.execute_lowered_interpreted(&plan, state);
    });
    let vm_ops_per_sec = time(&|state| {
        let _ = rt.execute_program(&program, state);
    });

    DispatchResult {
        slots: plan.ops.len(),
        executed_ops,
        passes,
        interpreter_ops_per_sec,
        vm_ops_per_sec,
        speedup: vm_ops_per_sec / interpreter_ops_per_sec.max(1e-12),
        traces_identical,
    }
}

/// Run the full harness.
#[must_use]
pub fn run(config: &HostBenchConfig, alloc_snapshot: Option<AllocSnapshotFn>) -> HostBenchReport {
    let batch = batch_requests(config.requests);
    let serve = serve_requests(config.requests, config.families);
    HostBenchReport {
        seed: config.seed,
        iters: config.iters,
        workloads: vec![
            run_workload("batch_view_v", &batch, config, alloc_snapshot),
            run_workload("serve_warm_prefix", &serve, config, alloc_snapshot),
        ],
        // 250 dispatch passes per timed pass of the main workloads keeps
        // the microbenchmark's sample count (~1M ops) proportionate.
        dispatch: run_dispatch(config.iters * 250),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modes_agree_and_fast_path_interns() {
        let config = HostBenchConfig {
            requests: 24,
            families: 3,
            iters: 1,
            ..HostBenchConfig::default()
        };
        let report = run(&config, None);
        assert_eq!(report.workloads.len(), 2);
        for w in &report.workloads {
            assert!(w.responses_identical, "{} diverged", w.name);
            assert!(w.intern.hits > 0, "{} never resumed a chain", w.name);
            assert!(w.baseline.requests_per_sec > 0.0);
        }
        assert!(report.dispatch.traces_identical);
        assert!(report.dispatch.interpreter_ops_per_sec > 0.0);
        assert!(report.dispatch.vm_ops_per_sec > 0.0);
    }

    #[test]
    fn dispatch_plan_is_64_slots_and_spines_agree() {
        let result = run_dispatch(2);
        assert_eq!(result.slots, 64, "synthetic plan must stay 64 slots");
        assert!(
            result.traces_identical,
            "interpreter and VM diverged on the dispatch plan"
        );
        assert!(result.executed_ops >= 64, "every slot executes");
    }
}
