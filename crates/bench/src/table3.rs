//! Table 3: comparison of prompt refinement strategies.
//!
//! Reproduces §7 "Refinement Strategies": 1K class-balanced tweets; the
//! base pipeline (summarize + negative filter) is stored as view **V**, then
//! refined to select school-related content. Five strategies are compared:
//!
//! 1. **Static Prompt** — a freshly written prompt, no reference to V,
//! 2. **Agentic Rewrite** — the LLM writes a prompt from just the objective,
//! 3. **Manual Refinement** — `REF[APPEND]` on V,
//! 4. **Assisted Refinement** — `REF[UPDATE, llm_rewrite(hint)]` on V,
//! 5. **Auto Refinement** — LLM refines V with the original instruction
//!    plus a high-level task objective.
//!
//! Cache semantics follow the paper's setting: the base view V is already
//! resident in the serving cache (it ran as the initial pipeline); each
//! task instance is independent, so what a strategy can reuse is exactly
//! the V prefix it preserved. Strategies 1–2 produce *opaque* prompts that
//! the structured cache cannot index at all — the paper's explanation for
//! their 0% hit rates.

use std::collections::BTreeMap;

use spear_core::error::Result;
use spear_core::history::{RefAction, RefinementMode};
use spear_core::llm::{GenOptions, GenRequest, LlmClient, PromptIdentity};
use spear_core::prompt::PromptEntry;
use spear_core::refiner::{RefineCtx, RefinerRegistry};
use spear_core::store::PromptStore;
use spear_core::value::Value;
use spear_core::view::ViewCatalog;
use spear_data::metrics::Confusion;
use spear_data::tweets::{self, Sentiment, Topic, TweetConfig};
use spear_llm::{EngineConfig, ModelProfile, SimLlm};

use crate::workload;

/// Configuration for the Table 3 run.
#[derive(Debug, Clone)]
pub struct Table3Config {
    /// Number of tweets (paper: 1000).
    pub n_tweets: usize,
    /// Corpus + engine seed.
    pub seed: u64,
    /// Model profile (paper: Qwen2.5-7B-Instruct).
    pub profile: ModelProfile,
    /// Prefix cache on/off (off = the cache ablation).
    pub cache_enabled: bool,
}

impl Default for Table3Config {
    fn default() -> Self {
        Self {
            n_tweets: 1000,
            seed: 140,
            profile: ModelProfile::qwen25_7b_instruct(),
            cache_enabled: true,
        }
    }
}

/// One row of Table 3.
#[derive(Debug, Clone, serde::Serialize)]
pub struct StrategyRow {
    /// Strategy name (paper wording).
    pub strategy: String,
    /// Mean per-item time, seconds (one-time refinement cost amortized in).
    pub time_s: f64,
    /// Speedup over Static Prompt.
    pub speedup: f64,
    /// F1 of the school-negative selection against ground truth.
    pub f1: f64,
    /// F1 gain over Static Prompt, percent.
    pub f1_gain_pct: f64,
    /// Prompt-token cache hit rate, percent.
    pub cache_hit_pct: f64,
}

/// A prepared strategy: the prompt entry to run plus its one-time setup
/// latency (LLM calls spent refining/authoring the prompt).
struct Prepared {
    name: &'static str,
    entry: PromptEntry,
    setup_latency_s: f64,
}

#[allow(clippy::too_many_arguments)] // mirrors REF's fields
fn refine_with(
    store: &PromptStore,
    views: &ViewCatalog,
    llm: &dyn LlmClient,
    key: &str,
    refiner: &str,
    args: &Value,
    action: RefAction,
    mode: RefinementMode,
) -> Result<PromptEntry> {
    let registry = RefinerRegistry::with_builtins();
    let current = store.get(key)?;
    let context = spear_core::context::Context::new();
    let metadata = spear_core::metadata::Metadata::new();
    let output = registry.resolve(refiner)?.refine(&RefineCtx {
        current: Some(&current),
        context: &context,
        metadata: &metadata,
        llm: Some(llm),
        views,
        prompts: store,
        args,
    })?;
    let text = output.new_text.unwrap_or_else(|| current.text.clone());
    store.refine(
        key,
        text,
        action,
        refiner,
        mode,
        0,
        None,
        BTreeMap::new(),
        output.note,
    )?;
    store.get(key)
}

/// Build the five strategies. Each preparation goes through the real SPEAR
/// machinery (view catalog, prompt store, refiner registry), so ref_logs
/// and origins are authentic.
fn prepare_strategies(engine: &SimLlm) -> Result<Vec<Prepared>> {
    let views = ViewCatalog::new();
    views.register(workload::view_v());
    let store = PromptStore::new();

    // The base view V, instantiated and stored (its prior execution is what
    // warmed the serving cache).
    let v_entry = views.instantiate("tweet_pipeline", BTreeMap::new())?;
    store.insert("V", v_entry);

    let mut prepared = Vec::new();

    // 1. Static Prompt: an entirely new prompt, ad hoc (opaque).
    prepared.push(Prepared {
        name: "Static Prompt",
        entry: PromptEntry::new(
            workload::static_prompt_text(),
            "f_user_written",
            RefinementMode::Manual,
        ),
        setup_latency_s: 0.0,
    });

    // 2. Agentic Rewrite: LLM writes a prompt from the objective alone.
    let agentic_meta = engine.generate(&GenRequest {
        text: "Please write a prompt for the following task.\n\
               Objective: select tweets that are school-related and negative \
               in sentiment, with a cleaned summary of each"
            .to_string(),
        identity: PromptIdentity::Opaque,
        options: GenOptions {
            max_tokens: 1024,
            temperature: 0.0,
            task: Some("write_prompt".to_string()),
        },
        segments: None,
    })?;
    // Drop the generated per-item placeholder line; the harness appends the
    // tweet itself.
    let agentic_text = agentic_meta
        .text
        .rsplit_once("\nTweet:")
        .map_or(agentic_meta.text.clone(), |(head, _)| head.to_string());
    prepared.push(Prepared {
        name: "Agentic Rewrite",
        entry: PromptEntry::new(agentic_text, "f_llm_authored", RefinementMode::Manual),
        setup_latency_s: agentic_meta.latency.as_secs_f64(),
    });

    // 3. Manual Refinement: REF[APPEND] on V.
    store.clone_entry("V", "manual")?;
    let manual = refine_with(
        &store,
        &views,
        engine,
        "manual",
        "append",
        &Value::from("Focus on school-related tweets only."),
        RefAction::Append,
        RefinementMode::Manual,
    )?;
    prepared.push(Prepared {
        name: "Manual Refinement",
        entry: manual,
        setup_latency_s: 0.0,
    });

    // 4. Assisted Refinement: LLM rewrites V given a targeted hint.
    store.clone_entry("V", "assisted")?;
    let before = engine.clock().elapsed();
    let assisted = refine_with(
        &store,
        &views,
        engine,
        "assisted",
        "llm_rewrite",
        &Value::from("emphasize school-related tweets when selecting"),
        RefAction::Update,
        RefinementMode::Assisted,
    )?;
    let assisted_setup = (engine.clock().elapsed() - before).as_secs_f64();
    prepared.push(Prepared {
        name: "Assisted Refinement",
        entry: assisted,
        setup_latency_s: assisted_setup,
    });

    // 5. Auto Refinement: LLM refines V with the original instruction plus
    // the high-level task objective.
    store.clone_entry("V", "auto")?;
    let before = engine.clock().elapsed();
    let auto = refine_with(
        &store,
        &views,
        engine,
        "auto",
        "llm_rewrite",
        &Value::from("meet the task objective of selecting negative school-related tweets"),
        RefAction::Update,
        RefinementMode::Auto,
    )?;
    let auto_setup = (engine.clock().elapsed() - before).as_secs_f64();
    prepared.push(Prepared {
        name: "Auto Refinement",
        entry: auto,
        setup_latency_s: auto_setup,
    });

    Ok(prepared)
}

/// Ground truth of the refined task.
fn truth(label: Sentiment, topic: Topic) -> bool {
    label == Sentiment::Negative && topic == Topic::School
}

/// Run the full Table 3 experiment.
///
/// # Errors
///
/// Propagates engine and refiner failures.
pub fn run(config: &Table3Config) -> Result<Vec<StrategyRow>> {
    let corpus = tweets::generate(&TweetConfig {
        count: config.n_tweets,
        negative_fraction: 0.5,
        school_fraction: 0.3,
        hard_fraction: 0.12,
        seed: config.seed,
    });
    let v_text = workload::view_v_text();

    // One engine for strategy preparation (meta calls).
    let prep_engine = SimLlm::with_config(
        config.profile.clone(),
        EngineConfig {
            cache_enabled: config.cache_enabled,
            seed: config.seed,
            ..EngineConfig::default()
        },
    );
    let strategies = prepare_strategies(&prep_engine)?;

    let mut rows = Vec::new();
    for s in &strategies {
        let engine = SimLlm::with_config(
            config.profile.clone(),
            EngineConfig {
                cache_enabled: config.cache_enabled,
                seed: config.seed,
                ..EngineConfig::default()
            },
        );
        let identity = s.entry.cache_identity();
        let mut confusion = Confusion::default();
        let mut total_latency = s.setup_latency_s;
        let mut prompt_tokens = 0u64;
        let mut cached_tokens = 0u64;

        for tweet in &corpus {
            // Each task instance is independent: only the base view V is
            // resident (structured strategies can exploit it; opaque ones
            // cannot even be indexed).
            engine.clear_cache();
            if identity.is_some() {
                engine.warm(&v_text);
            }
            let request = GenRequest {
                text: format!("{}\nTweet: {}", s.entry.text, tweet.text),
                identity: identity.clone().map_or(PromptIdentity::Opaque, |id| {
                    PromptIdentity::Structured { id }
                }),
                options: GenOptions {
                    max_tokens: 128,
                    temperature: 0.0,
                    task: Some("classify_school_negative".to_string()),
                },
                segments: None,
            };
            let response = engine.generate(&request)?;
            total_latency += response.latency.as_secs_f64();
            prompt_tokens += response.usage.prompt_tokens;
            cached_tokens += response.usage.cached_tokens;

            let predicted = response.text.starts_with("yes");
            confusion.record(predicted, truth(tweet.label, tweet.topic));
        }

        rows.push(StrategyRow {
            strategy: s.name.to_string(),
            time_s: total_latency / corpus.len() as f64,
            speedup: 0.0, // filled against the static baseline below
            f1: confusion.f1(),
            f1_gain_pct: 0.0,
            cache_hit_pct: 100.0 * cached_tokens as f64 / prompt_tokens.max(1) as f64,
        });
    }

    let static_time = rows[0].time_s;
    let static_f1 = rows[0].f1;
    for row in &mut rows {
        row.speedup = static_time / row.time_s;
        row.f1_gain_pct = 100.0 * (row.f1 - static_f1) / static_f1;
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_run() -> Vec<StrategyRow> {
        run(&Table3Config {
            n_tweets: 300,
            ..Table3Config::default()
        })
        .unwrap()
    }

    #[test]
    fn reproduces_the_table3_shape() {
        let rows = small_run();
        assert_eq!(rows.len(), 5);
        let by_name = |n: &str| rows.iter().find(|r| r.strategy == n).unwrap();
        let static_p = by_name("Static Prompt");
        let agentic = by_name("Agentic Rewrite");
        let manual = by_name("Manual Refinement");
        let assisted = by_name("Assisted Refinement");
        let auto = by_name("Auto Refinement");

        // Cache hits: refinement strategies reuse V; opaque baselines get 0.
        assert_eq!(static_p.cache_hit_pct, 0.0);
        assert_eq!(agentic.cache_hit_pct, 0.0);
        assert!(manual.cache_hit_pct > assisted.cache_hit_pct);
        assert!(assisted.cache_hit_pct > auto.cache_hit_pct);
        assert!(auto.cache_hit_pct > 50.0);

        // Speedups: every refinement mode beats static clearly; agentic only
        // marginally (its prompt is shorter but uncacheable).
        assert!((static_p.speedup - 1.0).abs() < 1e-9);
        assert!(manual.speedup > 1.2, "manual {}", manual.speedup);
        assert!(assisted.speedup > 1.15);
        assert!(auto.speedup > 1.1);
        assert!(agentic.speedup > 1.0 && agentic.speedup < manual.speedup);

        // Quality: the expected ladder is Auto (0.81) > Agentic (0.79) >
        // Manual (0.75) > Assisted (0.74) > Static (0.70). At n=300 the
        // per-item correctness draws leave ±0.04-0.06 of noise on F1, so
        // assert the robust separations (≥ 2σ) and bracket the rest.
        assert!(
            auto.f1 > static_p.f1 + 0.05,
            "auto {} static {}",
            auto.f1,
            static_p.f1
        );
        assert!(agentic.f1 > static_p.f1 + 0.03);
        assert!(auto.f1 >= agentic.f1 - 0.02);
        for mid in [manual, assisted] {
            assert!(
                mid.f1 > static_p.f1 - 0.06 && mid.f1 < auto.f1 + 0.06,
                "{} f1 {} outside bracket",
                mid.strategy,
                mid.f1
            );
        }
        assert!(static_p.f1 > 0.5, "static f1 {}", static_p.f1);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = small_run();
        let b = small_run();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.f1, y.f1);
            assert_eq!(x.time_s, y.time_s);
            assert_eq!(x.cache_hit_pct, y.cache_hit_pct);
        }
    }

    #[test]
    fn cache_ablation_removes_speedups() {
        let rows = run(&Table3Config {
            n_tweets: 150,
            cache_enabled: false,
            ..Table3Config::default()
        })
        .unwrap();
        for r in &rows {
            assert_eq!(r.cache_hit_pct, 0.0, "{}", r.strategy);
        }
        let manual = rows
            .iter()
            .find(|r| r.strategy == "Manual Refinement")
            .unwrap();
        assert!(
            manual.speedup < 1.1,
            "without the cache, manual refinement loses its edge: {}",
            manual.speedup
        );
    }
}
