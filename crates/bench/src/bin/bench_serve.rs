//! Serving-layer affinity sweep, emitting `BENCH_serve.json`.
//!
//! Usage:
//! `cargo run --release -p spear-bench --bin bench_serve [-- --n 384 --seed 140 --families 6 --out BENCH_serve.json]`
//!
//! Serves the same seeded open-loop workload with cache-affinity routing
//! on and off at each lane count. Acceptance: affinity routing must lift
//! the prefix-cache hit rate, and traces must be identical across lane
//! counts for a fixed affinity setting.
//!
//! With `--pressure`, runs the memory-pressure sweep instead (emitting
//! `BENCH_serve_pressure.json` by default): a burstier multi-GEN
//! workload against a bounded KV block pool. Acceptance additionally
//! requires the pool to have visibly contended (`evicted_blocks > 0`,
//! `preempted > 0`) and the contended counters — not just the
//! fingerprints — to be identical at every lane count.
//!
//! With `--reuse`, runs the generation-reuse sweep instead (emitting
//! `BENCH_reuse.json` by default): a duplicate-heavy multi-GEN workload
//! served with the whole-call memo on and off at each lane count.
//! Acceptance: host throughput with reuse on at least `1.5×` reuse off,
//! memo hits and single-flight coalescing both exercised (`hits > 0`,
//! `coalesced > 0`), reuse-on trace fingerprints identical to reuse-off
//! at every lane count, and the reuse ledger identical across lane
//! counts.

use spear_bench::report::{f, Table};
use spear_bench::serve_bench::{pressure_config, reuse_config, run, run_reuse, ServeBenchConfig};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn reuse_main() {
    let mut config = reuse_config();
    config.load.requests = arg("--n", config.load.requests as u64) as usize;
    config.load.seed = arg("--seed", config.load.seed);
    config.load.families = arg("--families", config.load.families as u64) as usize;
    let out_path = arg_str("--out", "BENCH_reuse.json");
    eprintln!(
        "bench_serve --reuse: {} requests ({:.0}% duplicates), {} families, seed {}, \
         {} GEN slots/plan, lanes {:?}, model {} (simulated)",
        config.load.requests,
        config.load.duplicate_share * 100.0,
        config.load.families,
        config.load.seed,
        config.load.gen_calls,
        config.lane_counts,
        config.profile.name
    );
    let report = run_reuse(&config);

    let mut table = Table::new(&[
        "Lanes",
        "Reuse",
        "Completed",
        "Host wall (s)",
        "Host req/s",
        "Hits",
        "Coalesced",
        "Inserted",
        "Saved tokens",
        "Makespan (s)",
        "Fingerprint",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.lanes.to_string(),
            if r.reuse { "on" } else { "off" }.to_string(),
            r.completed.to_string(),
            f(r.host_wall_s, 3),
            f(r.host_rps, 0),
            r.reuse_report.hits.to_string(),
            r.reuse_report.coalesced.to_string(),
            r.reuse_report.inserted.to_string(),
            r.reuse_report.saved_tokens.to_string(),
            f(r.makespan_s, 2),
            r.trace_fingerprint.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "reuse speedup: {:.2}x host throughput; digests match reuse-off: {}; \
         ledger lane-invariant: {}",
        report.speedup_x, report.digests_match, report.counters_lane_invariant
    );

    let json = serde_json::to_string(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report JSON");
    eprintln!("wrote {out_path}");

    if !report.digests_match {
        eprintln!(
            "FAIL: reuse-on trace fingerprints differ from reuse-off — the memo \
             must be observationally invisible"
        );
        std::process::exit(1);
    }
    if !report.counters_lane_invariant {
        eprintln!("FAIL: reuse ledger differs across lane counts");
        std::process::exit(1);
    }
    if report.hits == 0 || report.coalesced == 0 {
        eprintln!(
            "FAIL: the sweep must exercise both plain memo hits and single-flight \
             coalescing, got hits {} coalesced {}",
            report.hits, report.coalesced
        );
        std::process::exit(1);
    }
    if report.speedup_x < 1.5 {
        eprintln!(
            "FAIL: acceptance requires >= 1.5x host throughput with reuse on, \
             got {:.2}x",
            report.speedup_x
        );
        std::process::exit(1);
    }
    println!(
        "reuse gate: {:.2}x >= 1.5x, hits {} > 0, coalesced {} > 0, digests and \
         ledger pinned",
        report.speedup_x, report.hits, report.coalesced
    );
}

fn main() {
    if flag("--reuse") {
        reuse_main();
        return;
    }
    let pressure = flag("--pressure");
    let mut config = if pressure {
        pressure_config()
    } else {
        ServeBenchConfig::default()
    };
    config.load.requests = arg("--n", config.load.requests as u64) as usize;
    config.load.seed = arg("--seed", config.load.seed);
    config.load.families = arg("--families", config.load.families as u64) as usize;
    let default_out = if pressure {
        "BENCH_serve_pressure.json"
    } else {
        "BENCH_serve.json"
    };
    let out_path = arg_str("--out", default_out);
    eprintln!(
        "bench_serve{}: {} requests, {} families, seed {}, lanes {:?}, model {} (simulated)",
        if pressure { " --pressure" } else { "" },
        config.load.requests,
        config.load.families,
        config.load.seed,
        config.lane_counts,
        config.profile.name
    );
    if let Some(kv) = &config.pressure {
        eprintln!(
            "  KV pool: {} blocks x {} tokens, {} batched tokens/iter, \
             prefill chunk {}, max {} running seqs",
            kv.pool_blocks,
            kv.block_size,
            kv.max_batched_tokens,
            kv.prefill_chunk_tokens,
            kv.max_running_seqs
        );
    }
    let report = run(&config);

    let mut table = Table::new(&[
        "Lanes",
        "Affinity",
        "Completed",
        "Rejected",
        "Hit (%)",
        "Int Hit (%)",
        "Batch Hit (%)",
        "Int p99 (ms)",
        "Makespan (s)",
        "Preempted",
        "Evicted",
        "Fingerprint",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.lanes.to_string(),
            if r.affinity { "on" } else { "off" }.to_string(),
            r.completed.to_string(),
            r.rejected.to_string(),
            f(r.cache_hit_pct, 1),
            f(r.interactive_hit_pct, 1),
            f(r.batch_hit_pct, 1),
            f(r.interactive_p99_ms, 1),
            f(r.makespan_s, 2),
            r.preempted.to_string(),
            r.evicted_blocks.to_string(),
            r.trace_fingerprint.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "affinity hit-rate lift: {:+.1} points (mean over lane counts); \
         deterministic across lane counts: {}",
        report.affinity_lift_pct, report.deterministic
    );

    let json = serde_json::to_string(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report JSON");
    eprintln!("wrote {out_path}");

    if !report.deterministic {
        eprintln!(
            "FAIL: trace fingerprints differ across lane counts — determinism invariant violated"
        );
        std::process::exit(1);
    }
    if report.affinity_lift_pct <= 0.0 {
        eprintln!(
            "FAIL: acceptance requires a higher cache hit rate with affinity \
             routing on than off, got {:+.1} points",
            report.affinity_lift_pct
        );
        std::process::exit(1);
    }
    if pressure {
        // The pressure gate: the pool must have visibly contended, and
        // every contended counter must be identical at every lane count
        // (per affinity setting).
        for affinity in [true, false] {
            let rows: Vec<_> = report
                .rows
                .iter()
                .filter(|r| r.affinity == affinity)
                .collect();
            let first = rows.first().expect("sweep produced rows");
            if first.preempted == 0 || first.evicted_blocks == 0 {
                eprintln!(
                    "FAIL: pressure run must contend (affinity {}: preempted {}, evicted {})",
                    affinity, first.preempted, first.evicted_blocks
                );
                std::process::exit(1);
            }
            for r in &rows[1..] {
                if r.report.kv != first.report.kv || r.preempted != first.preempted {
                    eprintln!(
                        "FAIL: KV counters differ across lane counts (affinity {affinity}): \
                         {:?} lanes {} vs {:?} lanes {}",
                        first.report.kv, first.lanes, r.report.kv, r.lanes
                    );
                    std::process::exit(1);
                }
            }
        }
        println!(
            "pressure gate: preempted and evicted counters nonzero and \
             lane-invariant at every lane count"
        );
    }
}
