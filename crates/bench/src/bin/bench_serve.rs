//! Serving-layer affinity sweep, emitting `BENCH_serve.json`.
//!
//! Usage:
//! `cargo run --release -p spear-bench --bin bench_serve [-- --n 384 --seed 140 --families 6 --out BENCH_serve.json]`
//!
//! Serves the same seeded open-loop workload with cache-affinity routing
//! on and off at each lane count. Acceptance: affinity routing must lift
//! the prefix-cache hit rate, and traces must be identical across lane
//! counts for a fixed affinity setting.

use spear_bench::report::{f, Table};
use spear_bench::serve_bench::{run, ServeBenchConfig};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let mut config = ServeBenchConfig::default();
    config.load.requests = arg("--n", config.load.requests as u64) as usize;
    config.load.seed = arg("--seed", config.load.seed);
    config.load.families = arg("--families", config.load.families as u64) as usize;
    let out_path = arg_str("--out", "BENCH_serve.json");
    eprintln!(
        "bench_serve: {} requests, {} families, seed {}, lanes {:?}, model {} (simulated)",
        config.load.requests,
        config.load.families,
        config.load.seed,
        config.lane_counts,
        config.profile.name
    );
    let report = run(&config);

    let mut table = Table::new(&[
        "Lanes",
        "Affinity",
        "Completed",
        "Rejected",
        "Hit (%)",
        "Int Hit (%)",
        "Batch Hit (%)",
        "Int p99 (ms)",
        "Makespan (s)",
        "Fingerprint",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.lanes.to_string(),
            if r.affinity { "on" } else { "off" }.to_string(),
            r.completed.to_string(),
            r.rejected.to_string(),
            f(r.cache_hit_pct, 1),
            f(r.interactive_hit_pct, 1),
            f(r.batch_hit_pct, 1),
            f(r.interactive_p99_ms, 1),
            f(r.makespan_s, 2),
            r.trace_fingerprint.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "affinity hit-rate lift: {:+.1} points (mean over lane counts); \
         deterministic across lane counts: {}",
        report.affinity_lift_pct, report.deterministic
    );

    let json = serde_json::to_string(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_serve.json");
    eprintln!("wrote {out_path}");

    if !report.deterministic {
        eprintln!(
            "FAIL: trace fingerprints differ across lane counts — determinism invariant violated"
        );
        std::process::exit(1);
    }
    if report.affinity_lift_pct <= 0.0 {
        eprintln!(
            "FAIL: acceptance requires a higher cache hit rate with affinity \
             routing on than off, got {:+.1} points",
            report.affinity_lift_pct
        );
        std::process::exit(1);
    }
}
