//! Regenerate **Figure 1** of the SPEAR paper: performance gain and
//! accuracy drop under fusion, for Map→Filter and Filter→Map, across
//! Qwen2.5-7B-Instruct, Mistral-7B-Instruct, and GPT-4o-mini (simulated).
//!
//! Usage: `cargo run -p spear-bench --bin figure1 [-- --n 1000 --seed 140]`

use spear_bench::fusion_exp::figure1;
use spear_bench::report::{f, pct, Table};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg("--n", 1000) as usize;
    let seed = arg("--seed", 140);
    eprintln!(
        "Figure 1: fusion performance gain vs accuracy drop across models — \
         {n} tweets/cell, selectivity 50%, seed {seed}"
    );
    let cells = figure1(n, seed).expect("figure1 run failed");

    let mut table = Table::new(&[
        "Model",
        "Pipeline",
        "Seq (s)",
        "Fused (s)",
        "Perf Gain",
        "Speedup (x)",
        "Seq Acc",
        "Fused Acc",
        "Acc Drop",
    ]);
    for c in &cells {
        table.row(vec![
            c.model.clone(),
            c.order.clone(),
            f(c.seq_time_s, 1),
            f(c.fused_time_s, 1),
            pct(c.gain_pct, 2),
            f(c.seq_time_s / c.fused_time_s, 2),
            f(c.seq_accuracy, 3),
            f(c.fused_accuracy, 3),
            pct(c.accuracy_drop_pct, 2),
        ]);
    }
    println!("{}", table.render());
    for c in &cells {
        println!("{}", serde_json::to_string(c).expect("serializable cell"));
    }
}
