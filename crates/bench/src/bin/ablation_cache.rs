//! **Ablation A**: prefix cache on/off for the Table 3 strategies —
//! isolates how much of each refinement mode's speedup is attributable to
//! structured-prompt prefix caching.
//!
//! Usage: `cargo run -p spear-bench --bin ablation_cache [-- --n 500]`

use spear_bench::report::{f, Table};
use spear_bench::table3::{run, Table3Config};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg("--n", 500) as usize;
    let seed = arg("--seed", 140);
    eprintln!(
        "Ablation A: Table 3 strategies with the prefix cache enabled vs disabled ({n} tweets)"
    );

    let with_cache = run(&Table3Config {
        n_tweets: n,
        seed,
        cache_enabled: true,
        ..Table3Config::default()
    })
    .expect("cached run failed");
    let without_cache = run(&Table3Config {
        n_tweets: n,
        seed,
        cache_enabled: false,
        ..Table3Config::default()
    })
    .expect("uncached run failed");

    let mut table = Table::new(&[
        "Strategy",
        "Time cache=on (s)",
        "Speedup on",
        "Time cache=off (s)",
        "Speedup off",
        "Cache-attributable",
    ]);
    for (on, off) in with_cache.iter().zip(&without_cache) {
        table.row(vec![
            on.strategy.clone(),
            f(on.time_s, 2),
            f(on.speedup, 2),
            f(off.time_s, 2),
            f(off.speedup, 2),
            format!("{:.0}%", 100.0 * (off.time_s - on.time_s) / off.time_s),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reading: with the cache off, the refinement modes keep their quality \
         gains but lose (almost) their entire latency advantage — the paper's \
         claim that structure enables the reuse, and reuse buys the speed."
    );
}
