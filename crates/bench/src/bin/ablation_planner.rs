//! **Ablation B**: cost-based refinement planning (paper §5) vs naive
//! all-refiners vs no refinement, under a 40-token budget.
//!
//! Usage: `cargo run -p spear-bench --bin ablation_planner [-- --seed 7]`

use spear_bench::ablations::ablation_planner;
use spear_bench::report::{f, Table};

fn main() {
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(7);
    eprintln!("Ablation B: cost-based refinement planning (seed {seed})");
    let rows = ablation_planner(seed).expect("planner ablation failed");

    let mut table = Table::new(&["Policy", "Refiners applied", "Tokens added", "Confidence"]);
    for r in &rows {
        table.row(vec![
            r.policy.clone(),
            if r.refiners.is_empty() {
                "—".to_string()
            } else {
                r.refiners.join(" → ")
            },
            r.tokens_added.to_string(),
            f(r.confidence, 3),
        ]);
    }
    println!("{}", table.render());
    for r in &rows {
        println!("{}", serde_json::to_string(r).expect("serializable row"));
    }
}
