//! Host fast-path throughput harness, emitting `BENCH_host.json`.
//!
//! Usage:
//! `cargo run --release -p spear-bench --bin bench_host [-- --n 384 --families 6 --iters 8 --seed 140 --out BENCH_host.json]`
//!
//! Runs the same request streams flat (interner off — the pre-fast-path
//! behaviour) and segmented (interner on) and reports host-side
//! requests/sec and allocations/request for both, plus an interpreter-vs-
//! bytecode-VM dispatch microbenchmark on a synthetic 64-slot plan.
//! Acceptance: responses byte-identical across modes, the warm-prefix
//! serve workload at least 2x faster on the fast path, and the VM
//! dispatching at least 1.3x the interpreter's ops/sec with identical
//! traces.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use spear_bench::host_bench::{run, HostBenchConfig};
use spear_bench::report::{f, Table};

/// The system allocator wrapped with counters, so the report can state
/// allocations/request for each mode.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static BYTES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn snapshot() -> (u64, u64) {
    (
        ALLOCS.load(Ordering::Relaxed),
        BYTES.load(Ordering::Relaxed),
    )
}

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let defaults = HostBenchConfig::default();
    let config = HostBenchConfig {
        seed: arg("--seed", defaults.seed),
        requests: arg("--n", defaults.requests as u64) as usize,
        families: arg("--families", defaults.families as u64) as usize,
        iters: arg("--iters", defaults.iters as u64) as usize,
    };
    let out_path = arg_str("--out", "BENCH_host.json");
    eprintln!(
        "bench_host: {} requests, {} families, {} timed passes, seed {}",
        config.requests, config.families, config.iters, config.seed
    );

    let report = run(&config, Some(snapshot));

    let mut table = Table::new(&[
        "Workload",
        "Mode",
        "Req/s",
        "us/req",
        "Allocs/req",
        "KiB/req",
        "Speedup",
        "Identical",
    ]);
    for w in &report.workloads {
        for (mode, r) in [("baseline", &w.baseline), ("fast", &w.fast)] {
            table.row(vec![
                w.name.clone(),
                mode.to_string(),
                f(r.requests_per_sec, 0),
                f(r.ns_per_request / 1e3, 1),
                f(r.allocs_per_request, 1),
                f(r.bytes_per_request / 1024.0, 1),
                if mode == "fast" {
                    format!("{:.2}x", w.speedup)
                } else {
                    String::new()
                },
                if mode == "fast" {
                    w.responses_identical.to_string()
                } else {
                    String::new()
                },
            ]);
        }
    }
    println!("{}", table.render());

    let d = &report.dispatch;
    let mut dispatch_table =
        Table::new(&["Dispatch (64-slot plan)", "Ops/s", "Speedup", "Identical"]);
    dispatch_table.row(vec![
        "interpreter".to_string(),
        f(d.interpreter_ops_per_sec, 0),
        String::new(),
        String::new(),
    ]);
    dispatch_table.row(vec![
        "bytecode VM".to_string(),
        f(d.vm_ops_per_sec, 0),
        format!("{:.2}x", d.speedup),
        d.traces_identical.to_string(),
    ]);
    println!("{}", dispatch_table.render());

    let json = serde_json::to_string(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_host.json");
    eprintln!("wrote {out_path}");

    for w in &report.workloads {
        if !w.responses_identical {
            eprintln!(
                "FAIL: {} responses diverged between modes — the fast path must be invisible",
                w.name
            );
            std::process::exit(1);
        }
    }
    let serve = report
        .workloads
        .iter()
        .find(|w| w.name == "serve_warm_prefix")
        .expect("serve workload present");
    if serve.speedup < 2.0 {
        eprintln!(
            "FAIL: acceptance requires >=2x host-side requests/sec on the \
             warm-prefix serve workload, got {:.2}x",
            serve.speedup
        );
        std::process::exit(1);
    }
    if !report.dispatch.traces_identical {
        eprintln!("FAIL: interpreter and VM traces diverged on the dispatch plan");
        std::process::exit(1);
    }
    if report.dispatch.speedup < 1.3 {
        eprintln!(
            "FAIL: acceptance requires the bytecode VM to dispatch >=1.3x \
             the interpreter's ops/sec, got {:.2}x",
            report.dispatch.speedup
        );
        std::process::exit(1);
    }
}
