//! **Ablation C**: view-guided refinement (paper §5) — cost-based view
//! selection plus lightweight refinement vs from-scratch prompt authoring.
//!
//! Usage: `cargo run -p spear-bench --bin ablation_views [-- --n 200]`

use spear_bench::ablations::ablation_views;
use spear_bench::report::{f, Table};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg("--n", 200) as usize;
    let seed = arg("--seed", 7);
    eprintln!("Ablation C: view-guided refinement vs from-scratch prompts ({n} items)");
    let rows = ablation_views(seed, n).expect("views ablation failed");

    let mut table = Table::new(&[
        "Task",
        "Chosen view",
        "Scratch (s/item)",
        "View-guided (s/item)",
        "Speedup",
    ]);
    for r in &rows {
        table.row(vec![
            r.task.clone(),
            r.chosen_view.clone(),
            f(r.scratch_time_s, 3),
            f(r.view_time_s, 3),
            f(r.speedup, 2),
        ]);
    }
    println!("{}", table.render());
    for r in &rows {
        println!("{}", serde_json::to_string(r).expect("serializable row"));
    }
}
