//! Static-analysis gate over the golden plan corpus.
//!
//! Usage: `cargo run -p spear-bench --bin analyze` (or `just analyze`).
//!
//! For every representative plan — the paper's confidence-retry pipeline,
//! the three physical shapes of the sentiment workload, and a
//! statically-gated exemplar that exercises the W004/W005 lints — this
//! binary runs the full derived-facts pipeline end to end:
//!
//! 1. verify with the IR lints *plus* the bytecode abstract-interpreter
//!    pass ([`spear_core::analysis::BytecodePass`]) and render every
//!    diagnostic;
//! 2. compile to bytecode and *translation-validate* the output against
//!    its source plan ([`spear_core::analysis::validate_compile`]);
//! 3. run the verified optimizer and, when it fires, re-validate the
//!    optimized program bisimulates the original
//!    ([`spear_core::analysis::validate_optimized`]);
//! 4. print the abstract interpreter's static cost envelope.
//!
//! Exits non-zero when any plan carries an **error**-class diagnostic or
//! any translation-validation obligation fails — this is the `just
//! analyze` step `scripts/check.sh` gates on.

use std::collections::BTreeMap;

use spear_core::analysis::{
    analyze, validate_compile, validate_optimized, ResourceModel, Severity, Verifier,
};
use spear_core::prelude::*;
use spear_optimizer::lower_physical;
use spear_optimizer::plan::{PhysicalPlan, SemanticPlan};

fn retry_pipeline() -> Pipeline {
    let args: BTreeMap<String, Value> = [("drug".to_string(), Value::from("Enoxaparin"))]
        .into_iter()
        .collect();
    Pipeline::builder("enoxaparin_qa")
        .create_from_view("qa_prompt", "med_summary", args)
        .retry_gen(
            "answer",
            "qa_prompt",
            Cond::low_confidence(0.7),
            "auto_refine",
            Value::Null,
            RefinementMode::Auto,
            2,
        )
        .build()
}

/// A specialization-idiom exemplar: the `Never` guard makes its then
/// branch statically dead, so the bytecode pass reports W005 (decided
/// condition) and W004 (unreachable compiled slot). Warnings, not errors
/// — the gate stays green while still demonstrating the lints.
fn gated_pipeline() -> Pipeline {
    Pipeline::builder("gated_exemplar")
        .create_text("p", "base", RefinementMode::Manual)
        .gen("a", "p")
        .check(Cond::Never, |t| t.gen("b", "p"))
        .build()
}

/// Analyze one plan end to end; returns `true` when it passes the gate.
fn analyze_plan(title: &str, plan: &LoweredPlan) -> bool {
    println!("## {title}\n");
    let mut ok = true;

    let verifier = Verifier::new().register_pass(Box::new(spear_core::analysis::BytecodePass));
    let diags = verifier.verify(plan);
    if diags.is_empty() {
        println!("verifier: clean ({} slots checked)", plan.ops.len());
    } else {
        print!("{}", spear_core::analysis::render_diagnostics(plan, &diags));
        if diags.iter().any(|d| d.severity == Severity::Error) {
            println!("GATE: error-class diagnostics");
            ok = false;
        }
    }

    match spear_core::compile(plan) {
        Ok(program) => {
            match validate_compile(plan, &program) {
                Ok(map) => println!(
                    "translation validation: ok ({} source slots -> {} instructions)",
                    map.len() - 1,
                    program.code().len()
                ),
                Err(failures) => {
                    for f in &failures {
                        println!("GATE: {f}");
                    }
                    ok = false;
                }
            }
            match spear_core::optimize(&program) {
                Some(optimized) => match validate_optimized(&program, &optimized) {
                    Ok(()) => println!(
                        "optimizer: {} -> {} instructions (bisimulation validated)",
                        program.code().len(),
                        optimized.code().len()
                    ),
                    Err(failures) => {
                        for f in &failures {
                            println!("GATE: {f}");
                        }
                        ok = false;
                    }
                },
                None => println!("optimizer: no profitable rewrite"),
            }
            let bounds = analyze(&program, &ResourceModel::default());
            println!(
                "static bounds: tokens={} llm_calls={} latency>={}us unwind<={}{}",
                bounds.tokens,
                bounds.llm_calls,
                bounds.latency_lo_us,
                bounds.unwind_depth,
                if bounds.terminates {
                    ""
                } else {
                    "  (may not terminate)"
                },
            );
        }
        Err(e) => {
            println!("GATE: compile failed: {e}");
            ok = false;
        }
    }
    println!();
    ok
}

fn main() {
    let mut corpus: Vec<(String, LoweredPlan)> = Vec::new();
    corpus.push((
        "confidence-retry (paper §2, Table 1)".to_owned(),
        lower(&retry_pipeline()).expect("pipeline lowers"),
    ));

    let semantic = SemanticPlan::map_then_filter("Clean up the tweet.", "Keep negative tweets.")
        .with_identity("view:tweet_pipeline@1");
    corpus.push((
        "sentiment, sequential Map→Filter".to_owned(),
        lower_physical(&PhysicalPlan::sequential(&semantic)).expect("physical plan lowers"),
    ));
    corpus.push((
        "sentiment, fused Map+Filter".to_owned(),
        lower_physical(&PhysicalPlan::fused(&semantic)).expect("physical plan lowers"),
    ));

    let reordered = SemanticPlan::filter_then_map("Keep negative tweets.", "Clean up the tweet.");
    corpus.push((
        "sentiment, reordered Filter→Map (pushdown)".to_owned(),
        lower_physical(&PhysicalPlan::sequential(&reordered)).expect("physical plan lowers"),
    ));

    corpus.push((
        "statically-gated exemplar (W004/W005)".to_owned(),
        lower(&gated_pipeline()).expect("pipeline lowers"),
    ));

    let mut ok = true;
    for (title, plan) in &corpus {
        ok &= analyze_plan(title, plan);
    }
    if !ok {
        std::process::exit(1);
    }
    println!("analyze: {} plans clean", corpus.len());
}
