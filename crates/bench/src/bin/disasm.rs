//! Dump bytecode disassembly listings for representative plans.
//!
//! Usage: `cargo run -p spear-bench --bin disasm` (or `just disasm`).
//!
//! Compiles the paper's confidence-retry pipeline and the three physical
//! shapes of the sentiment workload down to `spear-core`'s bytecode and
//! prints each program via `spear_optimizer::disasm` — the quickest way to
//! see what the fuser and constant pool actually did to a plan.

use std::collections::BTreeMap;

use spear_core::prelude::*;
use spear_optimizer::plan::{PhysicalPlan, SemanticPlan};
use spear_optimizer::{disasm, lower_physical};

fn retry_pipeline() -> Pipeline {
    let args: BTreeMap<String, Value> = [("drug".to_string(), Value::from("Enoxaparin"))]
        .into_iter()
        .collect();
    Pipeline::builder("enoxaparin_qa")
        .create_from_view("qa_prompt", "med_summary", args)
        .retry_gen(
            "answer",
            "qa_prompt",
            Cond::low_confidence(0.7),
            "auto_refine",
            Value::Null,
            RefinementMode::Auto,
            2,
        )
        .build()
}

fn dump(title: &str, plan: &LoweredPlan) {
    let program = spear_core::compile(plan).expect("verified plan compiles");
    println!("## {title}\n");
    println!("{}", disasm(&program));
}

fn main() {
    let plan = lower(&retry_pipeline()).expect("pipeline lowers");
    dump("confidence-retry (paper §2, Table 1)", &plan);

    let semantic = SemanticPlan::map_then_filter("Clean up the tweet.", "Keep negative tweets.")
        .with_identity("view:tweet_pipeline@1");
    for (title, physical) in [
        (
            "sentiment, sequential Map→Filter",
            PhysicalPlan::sequential(&semantic),
        ),
        (
            "sentiment, fused Map+Filter",
            PhysicalPlan::fused(&semantic),
        ),
    ] {
        let lowered = lower_physical(&physical).expect("physical plan lowers");
        dump(title, &lowered);
    }

    let reordered = SemanticPlan::filter_then_map("Keep negative tweets.", "Clean up the tweet.");
    let lowered =
        lower_physical(&PhysicalPlan::sequential(&reordered)).expect("physical plan lowers");
    dump("sentiment, reordered Filter→Map (pushdown)", &lowered);
}
