//! **Ablation D**: predictive refinement (paper §5) vs reactive
//! retry-on-low-confidence, on a corpus with many ambiguous items.
//!
//! Usage: `cargo run -p spear-bench --bin ablation_predictive [-- --n 1000]`

use spear_bench::ablations::ablation_predictive;
use spear_bench::report::{f, Table};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg("--n", 1000) as usize;
    let seed = arg("--seed", 7);
    eprintln!("Ablation D: predictive vs reactive refinement ({n} items, 35% ambiguous)");
    let rows = ablation_predictive(seed, n).expect("predictive ablation failed");

    let mut table = Table::new(&["Policy", "LLM calls", "Time (s)", "Accuracy"]);
    for r in &rows {
        table.row(vec![
            r.policy.clone(),
            r.calls.to_string(),
            f(r.time_s, 1),
            f(r.accuracy, 3),
        ]);
    }
    println!("{}", table.render());
    for r in &rows {
        println!("{}", serde_json::to_string(r).expect("serializable row"));
    }
}
