//! Regenerate **Table 4** of the SPEAR paper: performance gain by fusion
//! type and selectivity (Qwen2.5-7B-Instruct simulation).
//!
//! Usage: `cargo run -p spear-bench --bin table4 [-- --n 1000 --seed 140]`

use spear_bench::fusion_exp::{table4, TABLE4_SELECTIVITIES};
use spear_bench::report::{pct, Table};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let n = arg("--n", 1000) as usize;
    let seed = arg("--seed", 140);
    eprintln!("Table 4: fusion gain by type and selectivity — {n} tweets/cell, seed {seed}");
    let cells = table4(n, seed).expect("table4 run failed");

    let mut headers = vec!["Fusion Type".to_string()];
    headers.extend(
        TABLE4_SELECTIVITIES
            .iter()
            .map(|s| format!("{:.0}%", s * 100.0)),
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);

    for order in ["Map→Filter", "Filter→Map"] {
        let mut row = vec![order.to_string()];
        for s in TABLE4_SELECTIVITIES {
            let cell = cells
                .iter()
                .find(|c| c.order == order && (c.selectivity - s).abs() < 1e-9)
                .expect("cell exists");
            row.push(pct(cell.gain_pct, 2));
        }
        table.row(row);
    }
    println!("{}", table.render());
    for c in &cells {
        println!("{}", serde_json::to_string(c).expect("serializable cell"));
    }
}
