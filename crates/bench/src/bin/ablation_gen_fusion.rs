//! **Ablation E**: shared-context GEN fusion (paper §5, "Operator Fusion"
//! first paragraph) — adjacent GENs reading the same stored prompt are
//! fused into one sectioned call, with a `split_sections` REF restoring
//! the original context keys.
//!
//! Usage: `cargo run -p spear-bench --bin ablation_gen_fusion [-- --n 100]`

use std::sync::Arc;

use spear_bench::report::{f, Table};
use spear_core::prelude::*;
use spear_llm::{ModelProfile, SimLlm};
use spear_optimizer::cost::CostModel;
use spear_optimizer::gen_fusion;

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A report-style pipeline: three sections generated from one shared view
/// prompt (the paper's "generating multiple sections from the same view").
fn sectioned_pipeline(case_id: usize) -> Pipeline {
    Pipeline::builder("case_report")
        .create_text(
            "report_view",
            format!(
                "You are preparing the report for case number {case_id}. Write \
                 the requested outputs in plain prose, cover every relevant \
                 detail the record supports, attribute nothing beyond the \
                 record, and use at most 40 words per output."
            )
            .as_str(),
            RefinementMode::Manual,
        )
        .gen("findings", "report_view")
        .gen("impression", "report_view")
        .gen("followup", "report_view")
        .build()
}

fn main() {
    let n = arg("--n", 100) as usize;
    eprintln!("Ablation E: shared-context GEN fusion over {n} three-section reports");

    let run = |fuse: bool| -> (u64, f64) {
        let rt = Runtime::builder()
            .llm(Arc::new(SimLlm::new(ModelProfile::qwen25_7b_instruct())))
            .build();
        let mut gens = 0u64;
        let mut latency = 0.0f64;
        for case in 0..n {
            let pipeline = sectioned_pipeline(case);
            let pipeline = if fuse {
                gen_fusion::fuse_pipeline(&pipeline).0
            } else {
                pipeline
            };
            let mut state = ExecState::new();
            let report = rt.execute(&pipeline, &mut state).expect("pipeline runs");
            assert!(state.context.contains("findings"));
            assert!(state.context.contains("impression"));
            assert!(state.context.contains("followup"));
            gens += report.gens;
            latency += report.latency.as_secs_f64();
        }
        (gens, latency)
    };

    let (seq_gens, seq_time) = run(false);
    let (fused_gens, fused_time) = run(true);

    // What the planner predicted, for comparison.
    let predicted =
        gen_fusion::estimate_saving(&CostModel::default(), 3, 45.0, true).as_secs_f64() * n as f64;

    let mut table = Table::new(&["Plan", "GEN calls", "Total time (s)", "Per case (s)"]);
    table.row(vec![
        "Sequential (3 GENs/case)".into(),
        seq_gens.to_string(),
        f(seq_time, 1),
        f(seq_time / n as f64, 3),
    ]);
    table.row(vec![
        "GEN-fused (1 call/case)".into(),
        fused_gens.to_string(),
        f(fused_time, 1),
        f(fused_time / n as f64, 3),
    ]);
    println!("{}", table.render());
    println!(
        "measured saving: {:.1}s ({:+.1}%); planner's a-priori overhead+prefill \
         estimate: {:.1}s (the rest of the saving is decode consolidation, \
         which the planner deliberately leaves to measurement)",
        seq_time - fused_time,
        100.0 * (seq_time - fused_time) / seq_time,
        predicted
    );
}
