//! Cluster scale-out sweep, emitting `BENCH_cluster.json`.
//!
//! Usage:
//! `cargo run --release -p spear-bench --bin bench_cluster [-- --n 1536 --seed 140 --families 12 --zipf 1.1 --out BENCH_cluster.json]`
//!
//! Serves one seeded Zipf-skewed workload through simulated fleets of
//! 1→16 single-lane nodes under prefix-aware and hash-random placement.
//! Acceptance: at 8 nodes the prefix-aware fleet must reach at least
//! 0.7× ideal linear scaling, prefix-aware must beat hash-random on
//! fleet-wide cache hit rate at every multi-node count, and the cluster
//! trace fingerprint must be identical across host worker-lane counts —
//! including a join → drain → leave churn schedule replayed at each
//! lane count.

use spear_bench::cluster_bench::{run, ClusterBenchConfig};
use spear_bench::report::{f, Table};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_f64(name: &str, default: f64) -> f64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let mut config = ClusterBenchConfig::default();
    config.load.requests = arg("--n", config.load.requests as u64) as usize;
    config.load.seed = arg("--seed", config.load.seed);
    config.load.families = arg("--families", config.load.families as u64) as usize;
    config.load.family_zipf = arg_f64("--zipf", config.load.family_zipf);
    let out_path = arg_str("--out", "BENCH_cluster.json");

    eprintln!(
        "bench_cluster: {} requests, {} families, zipf {}, seed {}, \
         fleets {:?} ({} lane(s)/node), model {} (simulated)",
        config.load.requests,
        config.load.families,
        config.load.family_zipf,
        config.load.seed,
        config.node_counts,
        config.node_lanes,
        config.profile.name
    );
    let report = run(&config);

    let mut table = Table::new(&[
        "Nodes",
        "Policy",
        "Completed",
        "Tput (req/s)",
        "Scaling",
        "Eff",
        "Fleet Hit (%)",
        "Imbalance",
        "Makespan (s)",
        "Repl",
        "P2C",
        "Fingerprint",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.nodes.to_string(),
            r.policy.clone(),
            r.completed.to_string(),
            f(r.throughput_rps, 1),
            format!("{}x", f(r.scaling_x, 2)),
            f(r.efficiency, 2),
            f(r.fleet_hit_pct, 1),
            f(r.imbalance, 2),
            f(r.makespan_s, 2),
            r.replicated_families.to_string(),
            r.p2c_balanced.to_string(),
            r.trace_fingerprint.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "scaling at {} nodes: {} of ideal; prefix beats hash on fleet hit rate: {}; \
         lane-invariant: {}; churn replay invariant: {} ({} handoffs)",
        report.gate_nodes,
        f(report.scaling_efficiency, 2),
        report.prefix_beats_hash,
        report.lane_invariant,
        report.churn_invariant,
        report.churn_handoffs,
    );

    let json = serde_json::to_string(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write report JSON");
    eprintln!("wrote {out_path}");

    if report.scaling_efficiency < 0.7 {
        eprintln!(
            "FAIL: acceptance requires >= 0.7x ideal throughput at {} nodes, got {:.2}x",
            report.gate_nodes, report.scaling_efficiency
        );
        std::process::exit(1);
    }
    if !report.prefix_beats_hash {
        eprintln!(
            "FAIL: prefix-aware placement must beat hash-random on fleet-wide \
             cache hit rate at every multi-node count"
        );
        std::process::exit(1);
    }
    if !report.lane_invariant || !report.churn_invariant {
        eprintln!(
            "FAIL: cluster trace fingerprints differ across host lane counts \
             (bare: {}, churn replay: {}) — determinism invariant violated",
            report.lane_invariant, report.churn_invariant
        );
        std::process::exit(1);
    }
}
