//! Concurrent batch-execution throughput sweep, emitting `BENCH_batch.json`.
//!
//! Usage:
//! `cargo run --release -p spear-bench --bin bench_batch [-- --n 512 --seed 140 --out BENCH_batch.json]`
//!
//! The speedup column uses the *simulated makespan* (busiest virtual-clock
//! lane), a deterministic function of workload, seed, and worker count —
//! the host wall column is informational and machine-dependent.

use spear_bench::batch_bench::{run, BatchBenchConfig};
use spear_bench::report::{f, Table};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() {
    let config = BatchBenchConfig {
        n_pipelines: arg("--n", 512) as usize,
        seed: arg("--seed", 140),
        ..BatchBenchConfig::default()
    };
    let out_path = arg_str("--out", "BENCH_batch.json");
    eprintln!(
        "bench_batch: {} pipelines, seed {}, workers {:?}, model {} (simulated)",
        config.n_pipelines, config.seed, config.worker_counts, config.profile.name
    );
    let report = run(&config).expect("bench_batch run failed");

    let mut table = Table::new(&[
        "Workers",
        "Busy (s)",
        "Makespan (s)",
        "Speedup (x)",
        "Pipelines/s",
        "Cache Hit (%)",
        "Host Wall (s)",
        "Trace Digest",
    ]);
    for r in &report.rows {
        table.row(vec![
            r.workers.to_string(),
            f(r.busy_s, 2),
            f(r.makespan_s, 2),
            f(r.speedup, 2),
            f(r.throughput_pps, 1),
            f(r.cache_hit_pct, 1),
            f(r.host_wall_s, 2),
            r.trace_digest.clone(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "deterministic across worker counts: {}",
        report.deterministic
    );

    let json = serde_json::to_string(&report).expect("serializable report");
    std::fs::write(&out_path, format!("{json}\n")).expect("write BENCH_batch.json");
    eprintln!("wrote {out_path}");

    if !report.deterministic {
        eprintln!("FAIL: traces differ across worker counts — determinism invariant violated");
        std::process::exit(1);
    }
    let last = report.rows.last().expect("at least one worker count");
    if last.speedup < 2.0 {
        eprintln!(
            "FAIL: acceptance requires >=2x speedup at {} workers, got {:.2}x \
             (workload too small to parallelize?)",
            last.workers, last.speedup
        );
        std::process::exit(1);
    }
}
