//! Regenerate **Table 3** of the SPEAR paper: comparison of prompt
//! refinement strategies (time, speedup, F1, F1 gain, cache hit rate).
//!
//! Usage: `cargo run -p spear-bench --bin table3 [-- --n 1000 --seed 140]`

use spear_bench::report::{f, Table};
use spear_bench::table3::{run, Table3Config};

fn arg(name: &str, default: u64) -> u64 {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let config = Table3Config {
        n_tweets: arg("--n", 1000) as usize,
        seed: arg("--seed", 140),
        ..Table3Config::default()
    };
    eprintln!(
        "Table 3: refinement strategies — {} tweets, seed {}, model {} (simulated)",
        config.n_tweets, config.seed, config.profile.name
    );
    let rows = run(&config).expect("table3 run failed");

    let mut table = Table::new(&[
        "Strategy",
        "Time (s)",
        "Speedup (x)",
        "F1",
        "F1 Gain (%)",
        "Cache Hit (%)",
    ]);
    for r in &rows {
        table.row(vec![
            r.strategy.clone(),
            f(r.time_s, 2),
            f(r.speedup, 2),
            f(r.f1, 2),
            f(r.f1_gain_pct, 1),
            f(r.cache_hit_pct, 1),
        ]);
    }
    println!("{}", table.render());
    for r in &rows {
        println!("{}", serde_json::to_string(r).expect("serializable row"));
    }
}
