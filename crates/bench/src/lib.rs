//! # spear-bench — the benchmark harness
//!
//! Regenerates every table and figure of the SPEAR paper's evaluation (§7)
//! plus four ablations, against the simulated substrate documented in
//! DESIGN.md. Binaries:
//!
//! | target | reproduces |
//! |---|---|
//! | `table3` | Table 3 — refinement strategy comparison |
//! | `table4` | Table 4 — fusion gain by type and selectivity |
//! | `figure1` | Figure 1 — fusion gain / accuracy drop across models |
//! | `ablation_cache` | prefix cache on/off for Table 3 |
//! | `ablation_planner` | cost-based refinement planning vs naive |
//! | `ablation_views` | view-guided refinement vs from-scratch prompts |
//! | `ablation_predictive` | predictive vs reactive refinement |
//! | `bench_batch` | concurrent batch-executor throughput sweep (`BENCH_batch.json`) |
//! | `bench_serve` | serving-layer affinity-routing sweep (`BENCH_serve.json`) |
//! | `bench_host` | host fast-path throughput: interned vs flat prefill (`BENCH_host.json`) |
//! | `bench_cluster` | multi-node scale-out sweep with prefix-aware routing (`BENCH_cluster.json`) |
//!
//! All runs are deterministic (seeded corpus, seeded task model, virtual
//! clock); re-running a binary reproduces the numbers bit-for-bit.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod batch_bench;
pub mod cluster_bench;
pub mod fusion_exp;
pub mod host_bench;
pub mod report;
pub mod serve_bench;
pub mod table3;
pub mod workload;
