//! The cluster scale-out sweep behind `bench_cluster` (`BENCH_cluster.json`).
//!
//! Serves one seeded Zipf-skewed workload through [`spear_cluster`]
//! fleets of growing size, under both placement policies:
//!
//! - **prefix** — prefix-aware rendezvous placement with hot-prefix
//!   replication (the fabric's native policy);
//! - **hash** — uniform request-id hashing, the scatter baseline.
//!
//! Acceptance gates (checked by the binary):
//!
//! 1. throughput at the gate node count (8 when swept) is at least
//!    `0.7×` ideal linear scaling over the single-node run;
//! 2. prefix-aware beats hash-random on fleet-wide cache hit rate at
//!    every multi-node count;
//! 3. the cluster trace fingerprint is identical across host worker-lane
//!    counts — including a join → drain → leave churn schedule replayed
//!    at each lane count.

use std::time::Instant;

use spear_cluster::prelude::*;
use spear_llm::ModelProfile;
use spear_serve::{generate, AdmissionConfig, LoadGenConfig, ServeConfig};

/// Sweep configuration.
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    /// Workload (Zipf-skewed family popularity by default).
    pub load: LoadGenConfig,
    /// Model profile every node serves.
    pub profile: ModelProfile,
    /// Fleet sizes to sweep.
    pub node_counts: Vec<usize>,
    /// Worker lanes per node during the scaling sweep. 1 keeps the
    /// scaling signal pure: fleet size is the only parallelism knob.
    pub node_lanes: usize,
    /// Host lane counts for the determinism checks.
    pub lane_sweep: Vec<usize>,
    /// Router tuning for the prefix-aware policy.
    pub router: RouterConfig,
}

impl Default for ClusterBenchConfig {
    fn default() -> Self {
        Self {
            load: LoadGenConfig {
                seed: 140,
                requests: 1536,
                families: 12,
                mean_interarrival_us: 250,
                interactive_fraction: 0.6,
                interactive_deadline_us: None,
                gen_calls: 1,
                family_zipf: 1.1,
                duplicate_share: 0.0,
            },
            profile: ModelProfile::qwen25_7b_instruct(),
            node_counts: vec![1, 2, 4, 8, 16],
            node_lanes: 1,
            lane_sweep: vec![1, 4, 8],
            router: RouterConfig {
                // Aggressive enough that the Zipf head (≈35% of arrivals
                // at s=1.1) spreads over several replicas; the tail stays
                // unreplicated.
                replicate_share: 0.08,
                max_replicas: 6,
                ..RouterConfig::default()
            },
        }
    }
}

/// One swept fleet configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClusterRow {
    /// Fleet size.
    pub nodes: usize,
    /// Placement policy (`prefix` or `hash`).
    pub policy: String,
    /// Requests completed fleet-wide.
    pub completed: u64,
    /// Completed requests per virtual second.
    pub throughput_rps: f64,
    /// Speed-up over the single-node run of the same policy.
    pub scaling_x: f64,
    /// `scaling_x / nodes` — fraction of ideal linear scaling.
    pub efficiency: f64,
    /// Fleet-wide prefix-cache hit rate, percent.
    pub fleet_hit_pct: f64,
    /// Max-over-mean node service time (1.0 = perfectly balanced).
    pub imbalance: f64,
    /// Virtual makespan, seconds.
    pub makespan_s: f64,
    /// Families handed off (0 — no churn in the sweep).
    pub handoffs: u64,
    /// Families that gained replicas.
    pub replicated_families: u64,
    /// Total replica expansions.
    pub replica_expansions: u64,
    /// Requests steered off the primary replica by p2c.
    pub p2c_balanced: u64,
    /// Host-side elapsed seconds (informational, machine-dependent).
    pub host_wall_s: f64,
    /// Fleet trace fingerprint (hex).
    pub trace_fingerprint: String,
    /// Full fleet report.
    pub report: ClusterReport,
}

/// The full sweep result.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ClusterBenchReport {
    /// Workload description.
    pub workload: String,
    /// Requests per configuration.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Zipf exponent of family popularity.
    pub zipf: f64,
    /// Node count the scaling gate applies at (8 when swept, else the
    /// largest).
    pub gate_nodes: usize,
    /// Fraction of ideal linear scaling at `gate_nodes` (prefix policy).
    pub scaling_efficiency: f64,
    /// Prefix-aware beat hash-random on fleet hit rate at every
    /// multi-node count.
    pub prefix_beats_hash: bool,
    /// Scaling-sweep fingerprints identical across `lane_sweep`.
    pub lane_invariant: bool,
    /// Churn-schedule fingerprints identical across `lane_sweep`.
    pub churn_invariant: bool,
    /// Fingerprint of the churn replay (hex).
    pub churn_fingerprint: String,
    /// Families handed off during the churn replay.
    pub churn_handoffs: u64,
    /// Host-side elapsed seconds for the whole sweep (informational,
    /// machine-dependent).
    pub host_wall_s: f64,
    /// Host-wall speedup of the parallel phase-2 node loop over the
    /// sequential reference at the gate fleet size (informational,
    /// machine-dependent; outputs are pinned identical by test).
    pub host_parallel_speedup_x: f64,
    /// One row per (fleet size, policy).
    pub rows: Vec<ClusterRow>,
}

/// Per-node scheduler config: generous admission so every fleet size
/// serves the identical request set and throughput is the only variable.
fn node_config(lanes: usize) -> ServeConfig {
    ServeConfig {
        lanes,
        admission: AdmissionConfig {
            max_depth: 100_000,
            bucket_capacity: 1 << 40,
            refill_per_us: 1_000_000.0,
            ..AdmissionConfig::default()
        },
        ..ServeConfig::default()
    }
}

fn run_once(
    config: &ClusterBenchConfig,
    nodes: usize,
    policy: RouterPolicy,
    lanes: usize,
    churn: Vec<ChurnEvent>,
) -> ClusterRun {
    let cluster = Cluster::new(ClusterConfig {
        initial_nodes: nodes,
        node: node_config(lanes),
        router: RouterConfig {
            policy,
            ..config.router.clone()
        },
        churn,
        profile: config.profile.clone(),
        ..ClusterConfig::default()
    });
    cluster.run(generate(&config.load))
}

/// A join → drain → leave schedule spanning the arrival horizon, used by
/// the churn-replay determinism check.
#[must_use]
pub fn churn_schedule(config: &ClusterBenchConfig, nodes: usize) -> Vec<ChurnEvent> {
    let horizon = config.load.requests as u64 * config.load.mean_interarrival_us;
    vec![
        ChurnEvent::join(horizon / 4, nodes as u64),
        ChurnEvent::join(horizon * 3 / 10, nodes as u64 + 1),
        ChurnEvent::drain(horizon / 2, 0),
        ChurnEvent::leave(horizon * 3 / 4, 1),
    ]
}

fn row(config: &ClusterBenchConfig, nodes: usize, policy: RouterPolicy) -> ClusterRow {
    let start = Instant::now();
    let run = run_once(config, nodes, policy, config.node_lanes, Vec::new());
    let report = run.report;
    ClusterRow {
        nodes,
        policy: match policy {
            RouterPolicy::PrefixAware => "prefix".to_string(),
            RouterPolicy::HashRandom => "hash".to_string(),
        },
        completed: report.completed,
        throughput_rps: report.throughput_rps(),
        scaling_x: 0.0,  // filled once the single-node row exists
        efficiency: 0.0, // likewise
        fleet_hit_pct: report.fleet_hit_rate().unwrap_or(0.0) * 100.0,
        imbalance: report.imbalance,
        makespan_s: report.makespan_us as f64 / 1e6,
        handoffs: report.router.handoffs,
        replicated_families: report.router.replicated_families,
        replica_expansions: report.router.replica_expansions,
        p2c_balanced: report.router.p2c_balanced,
        host_wall_s: start.elapsed().as_secs_f64(),
        trace_fingerprint: format!("{:016x}", report.trace_fingerprint),
        report,
    }
}

/// Run the full sweep plus both determinism checks.
#[must_use]
pub fn run(config: &ClusterBenchConfig) -> ClusterBenchReport {
    let sweep_started = Instant::now();
    let mut rows = Vec::new();
    for &nodes in &config.node_counts {
        for policy in [RouterPolicy::PrefixAware, RouterPolicy::HashRandom] {
            rows.push(row(config, nodes, policy));
        }
    }
    // Scale each row against its policy's single-node throughput.
    for policy in ["prefix", "hash"] {
        let base = rows
            .iter()
            .find(|r| r.policy == policy && r.nodes == 1)
            .map(|r| r.throughput_rps)
            .unwrap_or(0.0);
        if base > 0.0 {
            for r in rows.iter_mut().filter(|r| r.policy == policy) {
                r.scaling_x = r.throughput_rps / base;
                r.efficiency = r.scaling_x / r.nodes as f64;
            }
        }
    }

    let gate_nodes = if config.node_counts.contains(&8) {
        8
    } else {
        config.node_counts.iter().copied().max().unwrap_or(1)
    };
    let scaling_efficiency = rows
        .iter()
        .find(|r| r.policy == "prefix" && r.nodes == gate_nodes)
        .map(|r| r.efficiency)
        .unwrap_or(0.0);
    let prefix_beats_hash = config.node_counts.iter().filter(|&&n| n > 1).all(|&n| {
        let hit = |policy: &str| {
            rows.iter()
                .find(|r| r.policy == policy && r.nodes == n)
                .map(|r| r.fleet_hit_pct)
                .unwrap_or(0.0)
        };
        hit("prefix") > hit("hash")
    });

    // Determinism: the gate-sized fleet must fingerprint identically at
    // every host lane count, bare and under churn replay.
    let lane_prints: Vec<u64> = config
        .lane_sweep
        .iter()
        .map(|&lanes| {
            run_once(
                config,
                gate_nodes,
                RouterPolicy::PrefixAware,
                lanes,
                Vec::new(),
            )
            .report
            .trace_fingerprint
        })
        .collect();
    let lane_invariant = lane_prints.windows(2).all(|w| w[0] == w[1]);

    let churn_runs: Vec<ClusterReport> = config
        .lane_sweep
        .iter()
        .map(|&lanes| {
            run_once(
                config,
                gate_nodes,
                RouterPolicy::PrefixAware,
                lanes,
                churn_schedule(config, gate_nodes),
            )
            .report
        })
        .collect();
    let churn_invariant = churn_runs
        .windows(2)
        .all(|w| w[0].trace_fingerprint == w[1].trace_fingerprint);

    // Host-parallel phase 2: time the gate-sized fleet against the
    // sequential reference loop. Same outputs (pinned by the cluster
    // determinism tests); only the host wall differs. Recorded, not
    // gated: the ratio tracks available cores, and a single-core host
    // legitimately reports <= 1x (thread overhead, no parallelism).
    let host_parallel_speedup_x = {
        let cluster = Cluster::new(ClusterConfig {
            initial_nodes: gate_nodes,
            node: node_config(config.node_lanes),
            router: config.router.clone(),
            profile: config.profile.clone(),
            ..ClusterConfig::default()
        });
        let started = Instant::now();
        let parallel = cluster.run(generate(&config.load));
        let parallel_s = started.elapsed().as_secs_f64();
        let started = Instant::now();
        let sequential = cluster.run_sequential(generate(&config.load));
        let sequential_s = started.elapsed().as_secs_f64();
        assert_eq!(
            parallel.report.trace_fingerprint, sequential.report.trace_fingerprint,
            "parallel phase 2 changed the fleet fingerprint"
        );
        if parallel_s > 0.0 {
            sequential_s / parallel_s
        } else {
            0.0
        }
    };

    ClusterBenchReport {
        workload: format!(
            "{} requests, {} families, zipf {}, mean interarrival {} µs, {} lane(s)/node",
            config.load.requests,
            config.load.families,
            config.load.family_zipf,
            config.load.mean_interarrival_us,
            config.node_lanes,
        ),
        requests: config.load.requests,
        seed: config.load.seed,
        zipf: config.load.family_zipf,
        gate_nodes,
        scaling_efficiency,
        prefix_beats_hash,
        lane_invariant,
        churn_invariant,
        churn_fingerprint: churn_runs
            .first()
            .map(|r| format!("{:016x}", r.trace_fingerprint))
            .unwrap_or_default(),
        churn_handoffs: churn_runs.first().map(|r| r.router.handoffs).unwrap_or(0),
        host_wall_s: sweep_started.elapsed().as_secs_f64(),
        host_parallel_speedup_x,
        rows,
    }
}
