//! Table 4 and Figure 1: operator fusion vs sequential execution.
//!
//! Two pipeline configurations (paper §7 "Operator Fusion"):
//! `Map→Filter` (clean up the tweet, then classify sentiment) and
//! `Filter→Map` (filter for negative sentiment, then clean up), each run
//! sequentially and fused, across selectivity levels (Table 4, Qwen) and
//! across three models (Figure 1).
//!
//! Selectivity is controlled through the corpus: the filter keeps negative
//! tweets, so a corpus with `negative_fraction = s` has filter selectivity
//! `s`. Prompts here are not view-derived (opaque), so the prefix cache is
//! out of the picture and the measurement isolates fusion itself.

use std::sync::Arc;

use spear_core::error::Result;
use spear_data::tweets::{self, Sentiment, TweetConfig};
use spear_llm::{EngineConfig, ModelProfile, SimLlm};
use spear_optimizer::cost::CostModel;
use spear_optimizer::fusion::{self, PlanEstimates, StageEstimate};
use spear_optimizer::plan::{PhysicalPlan, SemanticPlan};
use spear_optimizer::run_plan;

use crate::workload;

/// Pipeline order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FusionOrder {
    /// Clean up, then classify (`Map→Filter`).
    MapFilter,
    /// Classify, then clean up (`Filter→Map`).
    FilterMap,
}

impl FusionOrder {
    /// Paper notation.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FusionOrder::MapFilter => "Map→Filter",
            FusionOrder::FilterMap => "Filter→Map",
        }
    }

    /// Build the logical plan.
    #[must_use]
    pub fn plan(self) -> SemanticPlan {
        match self {
            FusionOrder::MapFilter => SemanticPlan::map_then_filter(
                &workload::map_instruction(),
                &workload::filter_instruction(),
            ),
            FusionOrder::FilterMap => SemanticPlan::filter_then_map(
                &workload::filter_instruction(),
                &workload::map_instruction(),
            ),
        }
    }
}

/// Workload configuration.
#[derive(Debug, Clone)]
pub struct FusionConfig {
    /// Tweets per measurement (paper: 1000).
    pub n_tweets: usize,
    /// Corpus/engine seed.
    pub seed: u64,
    /// Filter selectivity (fraction of negative tweets).
    pub selectivity: f64,
}

impl Default for FusionConfig {
    fn default() -> Self {
        Self {
            n_tweets: 1000,
            seed: 140,
            selectivity: 0.5,
        }
    }
}

/// One sequential-vs-fused measurement.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FusionMeasurement {
    /// Model name.
    pub model: String,
    /// Pipeline order, paper notation.
    pub order: String,
    /// Configured selectivity.
    pub selectivity: f64,
    /// Total sequential time over the corpus, seconds.
    pub seq_time_s: f64,
    /// Total fused time, seconds.
    pub fused_time_s: f64,
    /// Performance gain of fusion, percent (negative = fusion slower).
    pub gain_pct: f64,
    /// Sequential filter accuracy vs ground truth.
    pub seq_accuracy: f64,
    /// Fused filter accuracy.
    pub fused_accuracy: f64,
    /// Accuracy drop from fusing, percentage points.
    pub accuracy_drop_pct: f64,
    /// What the cost-based optimizer would have decided, given the
    /// sequential run's observed token profile.
    pub optimizer_would_fuse: bool,
}

fn accuracy(outcomes: &[spear_optimizer::ItemOutcome], corpus: &[tweets::Tweet]) -> f64 {
    let correct = outcomes
        .iter()
        .zip(corpus)
        .filter(|(o, t)| o.passed == (t.label == Sentiment::Negative))
        .count();
    correct as f64 / corpus.len().max(1) as f64
}

/// Measure one `(model, order, selectivity)` cell.
///
/// # Errors
///
/// Propagates engine failures.
pub fn measure(
    profile: &ModelProfile,
    order: FusionOrder,
    config: &FusionConfig,
) -> Result<FusionMeasurement> {
    let corpus = tweets::generate(&TweetConfig {
        count: config.n_tweets,
        negative_fraction: config.selectivity,
        school_fraction: 0.3,
        hard_fraction: 0.12,
        seed: config.seed,
    });
    let items: Vec<String> = corpus.iter().map(|t| t.text.clone()).collect();
    let plan = order.plan();

    let engine_cfg = EngineConfig {
        seed: config.seed,
        ..EngineConfig::default()
    };
    let seq_engine = Arc::new(SimLlm::with_config(profile.clone(), engine_cfg.clone()));
    let seq = run_plan(seq_engine, &PhysicalPlan::sequential(&plan), &items)?;
    let fused_engine = Arc::new(SimLlm::with_config(profile.clone(), engine_cfg));
    let fused = run_plan(fused_engine, &PhysicalPlan::fused(&plan), &items)?;

    let seq_time = seq.latency.as_secs_f64();
    let fused_time = fused.latency.as_secs_f64();
    let seq_acc = accuracy(&seq.outcomes, &corpus);
    let fused_acc = accuracy(&fused.outcomes, &corpus);

    // Feed the sequential run's observed per-call token profile to the
    // optimizer's fusion rule, checking that the cost-based decision agrees
    // with the measured outcome.
    let calls = seq.gen_calls.max(1) as f64;
    let estimates = PlanEstimates {
        n_items: corpus.len() as f64,
        selectivity: config.selectivity,
        per_stage: StageEstimate {
            prompt_tokens: seq.usage.prompt_tokens as f64 / calls,
            cached_fraction: 0.0,
            decode_tokens: seq.usage.completion_tokens as f64 / calls,
        },
        fused: StageEstimate {
            prompt_tokens: fused.usage.prompt_tokens as f64 / fused.gen_calls.max(1) as f64,
            cached_fraction: 0.0,
            decode_tokens: fused.usage.completion_tokens as f64 / fused.gen_calls.max(1) as f64,
        },
    };
    let cost_model = CostModel {
        overhead_us: profile.request_overhead_us,
        prefill_us: profile.prefill_us_per_token,
        cached_us: profile.cached_prefill_us_per_token,
        decode_us: profile.decode_us_per_token,
    };
    let decision = fusion::decide(&plan, &estimates, &cost_model);

    Ok(FusionMeasurement {
        model: profile.name.clone(),
        order: order.label().to_string(),
        selectivity: config.selectivity,
        seq_time_s: seq_time,
        fused_time_s: fused_time,
        gain_pct: 100.0 * (seq_time - fused_time) / seq_time,
        seq_accuracy: seq_acc,
        fused_accuracy: fused_acc,
        accuracy_drop_pct: 100.0 * (seq_acc - fused_acc),
        optimizer_would_fuse: decision.fuse,
    })
}

/// The selectivity levels of Table 4.
pub const TABLE4_SELECTIVITIES: [f64; 5] = [0.1, 0.3, 0.5, 0.8, 1.0];

/// Run the full Table 4 sweep (Qwen profile, both orders × selectivities).
///
/// # Errors
///
/// Propagates engine failures.
pub fn table4(n_tweets: usize, seed: u64) -> Result<Vec<FusionMeasurement>> {
    let profile = ModelProfile::qwen25_7b_instruct();
    let mut out = Vec::new();
    for order in [FusionOrder::MapFilter, FusionOrder::FilterMap] {
        for s in TABLE4_SELECTIVITIES {
            out.push(measure(
                &profile,
                order,
                &FusionConfig {
                    n_tweets,
                    seed,
                    selectivity: s,
                },
            )?);
        }
    }
    Ok(out)
}

/// Run the Figure 1 sweep: both orders across the three evaluation models
/// at the class-balanced default selectivity.
///
/// # Errors
///
/// Propagates engine failures.
pub fn figure1(n_tweets: usize, seed: u64) -> Result<Vec<FusionMeasurement>> {
    let mut out = Vec::new();
    for profile in ModelProfile::evaluation_models() {
        for order in [FusionOrder::MapFilter, FusionOrder::FilterMap] {
            out.push(measure(
                &profile,
                order,
                &FusionConfig {
                    n_tweets,
                    seed,
                    selectivity: 0.5,
                },
            )?);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(selectivity: f64) -> FusionConfig {
        FusionConfig {
            n_tweets: 250,
            seed: 140,
            selectivity,
        }
    }

    #[test]
    fn map_filter_fusion_gains_at_all_selectivities() {
        let profile = ModelProfile::qwen25_7b_instruct();
        for s in [0.1, 0.5, 1.0] {
            let m = measure(&profile, FusionOrder::MapFilter, &cfg(s)).unwrap();
            assert!(
                (10.0..35.0).contains(&m.gain_pct),
                "gain {} at selectivity {s}",
                m.gain_pct
            );
            assert!(m.optimizer_would_fuse, "optimizer agrees at s={s}");
            assert!(
                m.accuracy_drop_pct > 1.0 && m.accuracy_drop_pct < 12.0,
                "accuracy drop {}",
                m.accuracy_drop_pct
            );
        }
    }

    #[test]
    fn filter_map_fusion_depends_on_selectivity() {
        let profile = ModelProfile::qwen25_7b_instruct();
        let low = measure(&profile, FusionOrder::FilterMap, &cfg(0.1)).unwrap();
        assert!(low.gain_pct < 0.0, "pushdown wins at 10%: {}", low.gain_pct);
        assert!(!low.optimizer_would_fuse);

        let high = measure(&profile, FusionOrder::FilterMap, &cfg(1.0)).unwrap();
        assert!(
            high.gain_pct > 12.0,
            "fusion wins at 100%: {}",
            high.gain_pct
        );
        assert!(high.optimizer_would_fuse);
    }

    #[test]
    fn filter_map_crossover_is_between_30_and_80_percent() {
        let profile = ModelProfile::qwen25_7b_instruct();
        let g30 = measure(&profile, FusionOrder::FilterMap, &cfg(0.3))
            .unwrap()
            .gain_pct;
        let g80 = measure(&profile, FusionOrder::FilterMap, &cfg(0.8))
            .unwrap()
            .gain_pct;
        assert!(g30 < 2.0, "gain at 30% should be ~0 or negative: {g30}");
        assert!(g80 > 8.0, "gain at 80% should be clearly positive: {g80}");
    }

    #[test]
    fn accuracy_drops_are_model_ordered_for_filter_map() {
        // Figure 1: Filter→Map accuracy drops ~0.3% (GPT-4o-mini) to ~6%
        // (Mistral).
        let gpt = measure(
            &ModelProfile::gpt_4o_mini(),
            FusionOrder::FilterMap,
            &cfg(0.5),
        )
        .unwrap();
        let mistral = measure(
            &ModelProfile::mistral_7b_instruct(),
            FusionOrder::FilterMap,
            &cfg(0.5),
        )
        .unwrap();
        assert!(
            gpt.accuracy_drop_pct < mistral.accuracy_drop_pct,
            "gpt {} < mistral {}",
            gpt.accuracy_drop_pct,
            mistral.accuracy_drop_pct
        );
    }

    #[test]
    fn measurements_are_deterministic() {
        let profile = ModelProfile::qwen25_7b_instruct();
        let a = measure(&profile, FusionOrder::MapFilter, &cfg(0.5)).unwrap();
        let b = measure(&profile, FusionOrder::MapFilter, &cfg(0.5)).unwrap();
        assert_eq!(a.seq_time_s, b.seq_time_s);
        assert_eq!(a.fused_accuracy, b.fused_accuracy);
    }
}
