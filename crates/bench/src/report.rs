//! Plain-text table rendering for benchmark reports.
//!
//! Every harness binary prints the same fixed-width tables the paper shows,
//! plus a JSON line per row (machine-readable, for EXPERIMENTS.md and CI
//! diffing).

/// A simple fixed-width table printer.
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Create a table with `headers`.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self {
            headers: headers.iter().map(|s| (*s).to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must match the header count).
    ///
    /// # Panics
    ///
    /// Panics when the column count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Render with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(
            &widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  "),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Format a float with `d` decimals.
#[must_use]
pub fn f(x: f64, d: usize) -> String {
    format!("{x:.d$}")
}

/// Format a percentage with sign, e.g. `-10.35%`.
#[must_use]
pub fn pct(x: f64, d: usize) -> String {
    format!("{x:+.d$}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(&["Strategy", "Time (s)", "F1"]);
        t.row(vec!["Static Prompt".into(), "3.10".into(), "0.70".into()]);
        t.row(vec!["Auto".into(), "2.12".into(), "0.81".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Strategy"));
        assert!(lines[1].starts_with("---"));
        // All rows equal width per column: "Static Prompt" sets column 0.
        assert!(lines[3].starts_with("Auto         "));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn row_width_is_checked() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(pct(-10.349, 2), "-10.35%");
        assert_eq!(pct(21.166, 2), "+21.17%");
    }
}
