//! Ablation studies beyond the paper's headline tables (DESIGN.md §3,
//! experiments A–D). Each validates one §5 optimization in isolation.

use std::collections::BTreeMap;

use spear_core::error::Result;
use spear_core::history::RefinementMode;
use spear_core::llm::{GenOptions, GenRequest, LlmClient, PromptIdentity};
use spear_core::prompt::PromptEntry;
use spear_core::refiner::{RefineCtx, RefinerRegistry};
use spear_core::store::PromptStore;
use spear_core::value::{map, Value};
use spear_core::view::{ViewCatalog, ViewDef};
use spear_data::tweets::{self, Sentiment, TweetConfig};
use spear_data::vocab;
use spear_llm::{EngineConfig, ModelProfile, SimLlm, Tokenizer};
use spear_optimizer::predictive::RiskModel;
use spear_optimizer::refinement_planner::{self, Budget, RefinerProfile};
use spear_optimizer::view_selector;

// ---------------------------------------------------------------------------
// Ablation B: cost-based refinement planning
// ---------------------------------------------------------------------------

/// One refiner's measured profile plus what the policies did with it.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PlannerRow {
    /// Policy name.
    pub policy: String,
    /// Refiners applied, in order.
    pub refiners: Vec<String>,
    /// Prompt tokens added by the applied refiners.
    pub tokens_added: u64,
    /// Mean confidence achieved on the probe task.
    pub confidence: f64,
}

/// Measure each candidate refiner's effect on a QA probe, then compare the
/// cost-based plan against naive all-refiners and no-refinement baselines
/// under a token budget.
///
/// # Errors
///
/// Propagates engine/refiner failures.
pub fn ablation_planner(seed: u64) -> Result<Vec<PlannerRow>> {
    let engine = SimLlm::with_config(
        ModelProfile::qwen25_7b_instruct(),
        EngineConfig {
            seed,
            ..EngineConfig::default()
        },
    );
    let tokenizer = Tokenizer::new();
    let registry = RefinerRegistry::with_builtins();
    let views = ViewCatalog::new();
    let store = PromptStore::new();
    let notes = "Medications: enoxaparin 40 mg SC daily for DVT prophylaxis. \
                 Also on lisinopril 10 mg.";
    let base_text = "Highlight any use of Enoxaparin in the medication history.";

    let probe = |prompt_text: &str| -> Result<f64> {
        let resp = engine.generate(&GenRequest {
            text: format!("{prompt_text}\nNotes: {notes}"),
            identity: PromptIdentity::Opaque,
            options: GenOptions {
                max_tokens: 128,
                temperature: 0.0,
                task: Some("qa".to_string()),
            },
            segments: None,
        })?;
        Ok(resp.confidence)
    };
    let base_confidence = probe(base_text)?;

    // Candidate refiners with per-candidate args.
    let candidates: Vec<(&str, Value)> = vec![
        ("auto_refine", Value::Null),
        (
            "inject_example",
            map([
                ("input", Value::from("enoxaparin 60 mg nightly for PE")),
                (
                    "output",
                    Value::from("Enoxaparin use documented: 60 mg nightly"),
                ),
            ]),
        ),
        ("append", Value::from("Answer in complete sentences.")),
        ("normalize", Value::Null),
    ];

    // Measure each refiner in isolation: confidence gain + token cost.
    let mut profiles = Vec::new();
    let mut refined_texts: BTreeMap<String, String> = BTreeMap::new();
    for (name, args) in &candidates {
        let entry = PromptEntry::new(base_text, "f_base", RefinementMode::Manual);
        let context = spear_core::context::Context::new();
        let metadata = spear_core::metadata::Metadata::new();
        let output = registry.resolve(name)?.refine(&RefineCtx {
            current: Some(&entry),
            context: &context,
            metadata: &metadata,
            llm: Some(&engine),
            views: &views,
            prompts: &store,
            args,
        })?;
        let text = output.new_text.unwrap_or_else(|| base_text.to_string());
        let gain = probe(&text)? - base_confidence;
        let token_cost = tokenizer.count(&text) as f64 - tokenizer.count(base_text) as f64;
        profiles.push(RefinerProfile {
            name: (*name).to_string(),
            avg_gain: gain,
            token_cost: token_cost.max(0.0),
            latency_us: 0.0,
        });
        refined_texts.insert((*name).to_string(), text);
    }

    // Apply a refiner sequence cumulatively and measure the result.
    let apply_sequence = |names: &[String]| -> Result<(u64, f64)> {
        let mut text = base_text.to_string();
        for name in names {
            let entry = PromptEntry::new(&text, "f", RefinementMode::Manual);
            let args = candidates
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, a)| a.clone())
                .unwrap_or(Value::Null);
            let context = spear_core::context::Context::new();
            let metadata = spear_core::metadata::Metadata::new();
            let output = registry.resolve(name)?.refine(&RefineCtx {
                current: Some(&entry),
                context: &context,
                metadata: &metadata,
                llm: Some(&engine),
                views: &views,
                prompts: &store,
                args: &args,
            })?;
            if let Some(t) = output.new_text {
                text = t;
            }
        }
        let added = tokenizer
            .count(&text)
            .saturating_sub(tokenizer.count(base_text)) as u64;
        Ok((added, probe(&text)?))
    };

    let budget = Budget {
        max_tokens: Some(40.0),
        max_latency_us: None,
    };
    let planned = refinement_planner::plan(&profiles, &budget, 0.005);
    let all: Vec<String> = candidates.iter().map(|(n, _)| (*n).to_string()).collect();

    let mut rows = Vec::new();
    let (_, none_conf) = (0u64, base_confidence);
    rows.push(PlannerRow {
        policy: "No refinement".into(),
        refiners: vec![],
        tokens_added: 0,
        confidence: none_conf,
    });
    let (all_tokens, all_conf) = apply_sequence(&all)?;
    rows.push(PlannerRow {
        policy: "Naive (all refiners)".into(),
        refiners: all,
        tokens_added: all_tokens,
        confidence: all_conf,
    });
    let (plan_tokens, plan_conf) = apply_sequence(&planned.refiners)?;
    rows.push(PlannerRow {
        policy: "Cost-based plan (≤40 tokens)".into(),
        refiners: planned.refiners,
        tokens_added: plan_tokens,
        confidence: plan_conf,
    });
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Ablation C: view-guided refinement / cost-based view selection
// ---------------------------------------------------------------------------

/// One task's scratch-vs-view comparison.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ViewRow {
    /// Task description.
    pub task: String,
    /// View chosen by cost-based selection.
    pub chosen_view: String,
    /// Mean per-item time writing the prompt from scratch (opaque), s.
    pub scratch_time_s: f64,
    /// Mean per-item time deriving from the chosen view (cached), s.
    pub view_time_s: f64,
    /// Speedup of the view-guided path.
    pub speedup: f64,
}

/// Compare from-scratch prompt construction against view-guided refinement
/// over a small task suite, with the view's rendering warm in the cache.
///
/// # Errors
///
/// Propagates engine failures.
pub fn ablation_views(seed: u64, n_items: usize) -> Result<Vec<ViewRow>> {
    let catalog = ViewCatalog::new();
    catalog.register(crate::workload::view_v());
    catalog.register(
        ViewDef::new(
            "review_pipeline",
            crate::workload::view_v_text()
                .replace("tweet", "review")
                .replace("author", "customer"),
        )
        .with_tag("sentiment"),
    );

    let corpus = tweets::generate(&TweetConfig {
        count: n_items,
        negative_fraction: 0.5,
        school_fraction: 0.5,
        hard_fraction: 0.1,
        seed,
    });

    let tasks = [
        "summarize each tweet and select negative sentiment about school topics",
        "summarize each review and select negative sentiment from the customer",
    ];

    let mut rows = Vec::new();
    for task in tasks {
        let choice =
            view_selector::select_view(&catalog, task, None).expect("catalog is non-empty");
        let view = catalog.get(&choice.view)?;
        let view_prompt = format!("{}\nFocus on {task}.", view.template);
        let scratch_prompt = format!(
            "{}\nAdditional requirement derived from the task: {task}.",
            crate::workload::static_prompt_text()
        );

        let run = |prompt: &str, structured: bool, warm: Option<&str>| -> Result<f64> {
            let engine = SimLlm::with_config(
                ModelProfile::qwen25_7b_instruct(),
                EngineConfig {
                    seed,
                    ..EngineConfig::default()
                },
            );
            let mut total = 0.0;
            for tweet in &corpus {
                engine.clear_cache();
                if let Some(w) = warm {
                    engine.warm(w);
                }
                let resp = engine.generate(&GenRequest {
                    text: format!("{prompt}\nTweet: {}", tweet.text),
                    identity: if structured {
                        PromptIdentity::Structured {
                            id: format!("view:{}@1#0/v2", choice.view),
                        }
                    } else {
                        PromptIdentity::Opaque
                    },
                    options: GenOptions {
                        max_tokens: 128,
                        temperature: 0.0,
                        task: Some("classify_school_negative".to_string()),
                    },
                    segments: None,
                })?;
                total += resp.latency.as_secs_f64();
            }
            Ok(total / corpus.len().max(1) as f64)
        };

        let scratch_time = run(&scratch_prompt, false, None)?;
        let view_time = run(&view_prompt, true, Some(&view.template))?;
        rows.push(ViewRow {
            task: task.to_string(),
            chosen_view: choice.view,
            scratch_time_s: scratch_time,
            view_time_s: view_time,
            speedup: scratch_time / view_time,
        });
    }
    Ok(rows)
}

// ---------------------------------------------------------------------------
// Ablation D: predictive vs reactive refinement
// ---------------------------------------------------------------------------

/// One policy's aggregate result.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PredictiveRow {
    /// Policy name.
    pub policy: String,
    /// Total LLM calls over the corpus.
    pub calls: u64,
    /// Total time, seconds.
    pub time_s: f64,
    /// Classification accuracy.
    pub accuracy: f64,
}

/// Compare reactive retry (generate, then retry on low confidence) against
/// predictive refinement (refine *before* generating when the risk model
/// fires) on a corpus with a high fraction of ambiguous items.
///
/// # Errors
///
/// Propagates engine failures.
pub fn ablation_predictive(seed: u64, n_items: usize) -> Result<Vec<PredictiveRow>> {
    let corpus = tweets::generate(&TweetConfig {
        count: n_items,
        negative_fraction: 0.5,
        school_fraction: 0.3,
        hard_fraction: 0.35,
        seed,
    });
    let base_prompt = "Classify the sentiment of the tweet.";
    let refined_prompt = "Classify the sentiment of the tweet. Think step by \
                          step about the wording and be specific about which \
                          phrases decide the label.";
    // Retry threshold sits just above the ambiguous-item confidence band
    // (~0.72), so reactive retries fire on most ambiguous items.
    let threshold = 0.76;
    // Threshold chosen so that only genuinely ambiguous items (no lexicon
    // signal) trip pre-emptive refinement; crisp items run the cheap prompt.
    let risk_model = RiskModel {
        threshold: 0.75,
        ..RiskModel::default()
    };

    let classify = |engine: &SimLlm, prompt: &str, tweet: &str| -> Result<(bool, f64, f64)> {
        let resp = engine.generate(&GenRequest {
            text: format!("{prompt}\nTweet: {tweet}"),
            identity: PromptIdentity::Opaque,
            options: GenOptions {
                max_tokens: 16,
                temperature: 0.0,
                task: Some("classify_sentiment".to_string()),
            },
            segments: None,
        })?;
        Ok((
            resp.text.starts_with("negative"),
            resp.confidence,
            resp.latency.as_secs_f64(),
        ))
    };

    let mut rows = Vec::new();
    for policy in ["Reactive retry", "Predictive refinement"] {
        let engine = SimLlm::with_config(
            ModelProfile::qwen25_7b_instruct(),
            EngineConfig {
                seed,
                ..EngineConfig::default()
            },
        );
        let mut calls = 0u64;
        let mut time = 0.0;
        let mut correct = 0usize;
        for tweet in &corpus {
            let truth = tweet.label == Sentiment::Negative;
            let decided = if policy == "Reactive retry" {
                let (label, conf, t) = classify(&engine, base_prompt, &tweet.text)?;
                calls += 1;
                time += t;
                if conf < threshold {
                    let (label2, _, t2) = classify(&engine, refined_prompt, &tweet.text)?;
                    calls += 1;
                    time += t2;
                    label2
                } else {
                    label
                }
            } else {
                // Predictive: consult the risk model first; ambiguity proxy
                // is the absence of lexicon signal.
                let ambiguity = if vocab::sentiment_score(&tweet.text) == 0 {
                    1.0
                } else {
                    0.2
                };
                let prompt = if risk_model.should_refine(base_prompt, ambiguity) {
                    refined_prompt
                } else {
                    base_prompt
                };
                let (label, _, t) = classify(&engine, prompt, &tweet.text)?;
                calls += 1;
                time += t;
                label
            };
            if decided == truth {
                correct += 1;
            }
        }
        rows.push(PredictiveRow {
            policy: policy.to_string(),
            calls,
            time_s: time,
            accuracy: correct as f64 / corpus.len().max(1) as f64,
        });
    }
    Ok(rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_beats_naive_on_token_efficiency() {
        let rows = ablation_planner(7).unwrap();
        assert_eq!(rows.len(), 3);
        let none = &rows[0];
        let naive = &rows[1];
        let planned = &rows[2];
        assert!(planned.confidence > none.confidence, "plan helps");
        assert!(
            planned.tokens_added < naive.tokens_added,
            "plan is cheaper than naive: {} vs {}",
            planned.tokens_added,
            naive.tokens_added
        );
        assert!(planned.tokens_added <= 40, "budget respected");
        assert!(
            !planned.refiners.contains(&"normalize".to_string()),
            "no-op refiner skipped as low impact"
        );
    }

    #[test]
    fn view_guidance_wins_on_latency() {
        let rows = ablation_views(7, 60).unwrap();
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert!(r.speedup > 1.1, "task {:?}: speedup {}", r.task, r.speedup);
        }
        assert_eq!(rows[0].chosen_view, "tweet_pipeline", "school task → V");
        assert_eq!(
            rows[1].chosen_view, "review_pipeline",
            "review task → review view"
        );
    }

    #[test]
    fn predictive_uses_fewer_calls_without_losing_accuracy() {
        let rows = ablation_predictive(7, 300).unwrap();
        let reactive = &rows[0];
        let predictive = &rows[1];
        assert!(
            predictive.calls < reactive.calls,
            "predictive {} < reactive {}",
            predictive.calls,
            reactive.calls
        );
        assert!(predictive.time_s < reactive.time_s);
        assert!(
            predictive.accuracy >= reactive.accuracy - 0.05,
            "accuracy comparable: {} vs {}",
            predictive.accuracy,
            reactive.accuracy
        );
    }
}
