//! Serving-layer benchmark (`bench_serve`): cache-affinity routing on vs
//! off under the same seeded open-loop workload.
//!
//! For each lane count the same generated request stream is served twice —
//! once with affinity routing (same prompt family ⇒ same cache owner and
//! lane) and once with isolated round-robin placement — on a fresh engine
//! each time. The contrast the acceptance gate checks: affinity routing
//! must convert the workload's shared instruction prefixes into a higher
//! prefix-cache hit rate. The trace fingerprint column additionally
//! witnesses the determinism invariant: for a fixed affinity setting, the
//! fingerprint is identical at every lane count.
//!
//! The **pressure** variant ([`pressure_config`], `bench_serve
//! --pressure`) runs a burstier multi-GEN workload through a bounded KV
//! block pool ([`KvPressureConfig`]): its gate additionally demands that
//! the pool visibly contended (`evicted_blocks > 0`, `preempted > 0`)
//! and that those contended counters — not just the fingerprints — are
//! identical at every lane count.

use std::sync::Arc;
use std::time::Instant;

use spear_core::llm::LlmClient;
use spear_core::runtime::Runtime;
use spear_llm::{EngineConfig, ModelProfile, SimLlm};
use spear_serve::prelude::*;

/// Configuration for the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    /// Workload shape (seed, request count, families, arrival process).
    pub load: LoadGenConfig,
    /// Engine seed and model.
    pub profile: ModelProfile,
    /// Lane counts to sweep.
    pub lane_counts: Vec<usize>,
    /// Bounded-KV memory pressure; `None` = unconstrained serving.
    pub pressure: Option<KvPressureConfig>,
}

impl Default for ServeBenchConfig {
    fn default() -> Self {
        Self {
            load: LoadGenConfig {
                seed: 140,
                requests: 384,
                families: 6,
                mean_interarrival_us: 30_000,
                interactive_fraction: 0.6,
                interactive_deadline_us: None,
                gen_calls: 1,
                family_zipf: 0.0,
                duplicate_share: 0.0,
            },
            profile: ModelProfile::qwen25_7b_instruct(),
            lane_counts: vec![1, 4, 8],
            pressure: None,
        }
    }
}

/// The memory-pressure sweep: a burstier workload with long decode
/// phases (6 GEN slots) against a pool sized well below the working set,
/// so serving must evict resident prefixes and preempt running requests.
#[must_use]
pub fn pressure_config() -> ServeBenchConfig {
    ServeBenchConfig {
        load: LoadGenConfig {
            seed: 140,
            requests: 192,
            families: 4,
            mean_interarrival_us: 800,
            interactive_fraction: 0.6,
            interactive_deadline_us: None,
            gen_calls: 6,
            family_zipf: 0.0,
            duplicate_share: 0.0,
        },
        profile: ModelProfile::qwen25_7b_instruct(),
        lane_counts: vec![1, 4, 8],
        pressure: Some(KvPressureConfig {
            pool_blocks: 192,
            block_size: 4,
            pool_stripes: 1,
            max_batched_tokens: 1024,
            prefill_chunk_tokens: 128,
            ..KvPressureConfig::default()
        }),
    }
}

/// The generation-reuse sweep (`bench_serve --reuse`): a duplicate-heavy
/// workload — 70% of requests replay an earlier request's exact payload —
/// served with the whole-call memo on and off at each lane count. Bursty
/// arrivals put many duplicates inside their leader's service window
/// (exercising single-flight coalescing) while duplicates of older
/// requests land long after (exercising plain memo hits).
#[must_use]
pub fn reuse_config() -> ServeBenchConfig {
    ServeBenchConfig {
        load: LoadGenConfig {
            seed: 140,
            requests: 1536,
            families: 6,
            mean_interarrival_us: 2_000,
            interactive_fraction: 0.6,
            interactive_deadline_us: None,
            // Four GEN slots per plan: repeat slots render the same prompt,
            // so engine work dominates scheduler overhead and the memo has
            // within-request repeats to serve on top of the duplicates.
            gen_calls: 4,
            family_zipf: 0.0,
            duplicate_share: 0.7,
        },
        profile: ModelProfile::qwen25_7b_instruct(),
        lane_counts: vec![1, 4, 8],
        pressure: None,
    }
}

/// One served configuration.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeRow {
    /// Worker lanes.
    pub lanes: usize,
    /// Whether affinity routing was on.
    pub affinity: bool,
    /// Requests completed (all classes).
    pub completed: u64,
    /// Requests shed by admission control.
    pub rejected: u64,
    /// Prompt-token cache hit rate, percent (completed requests).
    pub cache_hit_pct: f64,
    /// Interactive-class hit rate, percent.
    pub interactive_hit_pct: f64,
    /// Batch-class hit rate, percent.
    pub batch_hit_pct: f64,
    /// Interactive p99 end-to-end virtual latency, ms.
    pub interactive_p99_ms: f64,
    /// Virtual makespan, seconds.
    pub makespan_s: f64,
    /// Preemption events under memory pressure (0 when unconstrained).
    pub preempted: u64,
    /// KV blocks evicted under memory pressure (0 when unconstrained).
    pub evicted_blocks: u64,
    /// Host-side elapsed seconds (informational, machine-dependent).
    pub host_wall_s: f64,
    /// Order-canonical fingerprint over statuses and trace digests.
    pub trace_fingerprint: String,
    /// Full metrics snapshot.
    pub report: ServeReport,
}

/// The full sweep result.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServeBenchReport {
    /// Workload description.
    pub workload: String,
    /// Requests per configuration.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Whether, per affinity setting, every lane count produced the same
    /// trace fingerprint.
    pub deterministic: bool,
    /// Mean hit-rate lift of affinity routing over isolated placement,
    /// in percentage points, averaged over lane counts.
    pub affinity_lift_pct: f64,
    /// One row per (lane count, affinity setting).
    pub rows: Vec<ServeRow>,
}

fn serve_once(config: &ServeBenchConfig, lanes: usize, affinity: bool) -> ServeRow {
    let workload = spear_serve::generate(&config.load);
    let engine = Arc::new(SimLlm::with_config(
        config.profile.clone(),
        EngineConfig {
            seed: config.load.seed,
            ..EngineConfig::default()
        },
    ));
    let runtime = Runtime::builder()
        .llm(Arc::clone(&engine) as Arc<dyn LlmClient>)
        .views(workload.views.clone())
        .build();
    let node = ServeNode::new(ServeConfig {
        lanes,
        quantum: 4,
        affinity_routing: affinity,
        admission: AdmissionConfig::default(),
        verify_admission: true,
        pressure: config.pressure.clone(),
        program_cache_capacity: 64,
        reuse: true,
    });
    let started = Instant::now();
    let run = node.run(&runtime, Some(&engine), workload.requests);
    let host_wall_s = started.elapsed().as_secs_f64();
    let report = run.report;
    ServeRow {
        lanes,
        affinity,
        completed: report.interactive.completed + report.batch.completed,
        rejected: report.interactive.rejected + report.batch.rejected,
        cache_hit_pct: report.cache_hit_rate().unwrap_or(0.0) * 100.0,
        interactive_hit_pct: report.interactive.cache_hit_rate().unwrap_or(0.0) * 100.0,
        batch_hit_pct: report.batch.cache_hit_rate().unwrap_or(0.0) * 100.0,
        interactive_p99_ms: report.interactive.e2e_us.p99.unwrap_or(0) as f64 / 1_000.0,
        makespan_s: report.makespan_us as f64 / 1e6,
        preempted: report.kv.preempted,
        evicted_blocks: report.kv.evicted_blocks,
        host_wall_s,
        trace_fingerprint: format!("{:016x}", report.trace_fingerprint),
        report,
    }
}

/// Run the sweep: every lane count, affinity on and off.
#[must_use]
pub fn run(config: &ServeBenchConfig) -> ServeBenchReport {
    let mut rows = Vec::with_capacity(config.lane_counts.len() * 2);
    for &lanes in &config.lane_counts {
        for affinity in [true, false] {
            rows.push(serve_once(config, lanes, affinity));
        }
    }

    let fingerprint_invariant = |affinity: bool| -> bool {
        let mut prints = rows
            .iter()
            .filter(|r| r.affinity == affinity)
            .map(|r| &r.trace_fingerprint);
        match prints.next() {
            Some(first) => prints.all(|p| p == first),
            None => true,
        }
    };
    let deterministic = fingerprint_invariant(true) && fingerprint_invariant(false);

    let lifts: Vec<f64> = config
        .lane_counts
        .iter()
        .filter_map(|&lanes| {
            let on = rows.iter().find(|r| r.lanes == lanes && r.affinity)?;
            let off = rows.iter().find(|r| r.lanes == lanes && !r.affinity)?;
            Some(on.cache_hit_pct - off.cache_hit_pct)
        })
        .collect();
    let affinity_lift_pct = if lifts.is_empty() {
        0.0
    } else {
        lifts.iter().sum::<f64>() / lifts.len() as f64
    };

    ServeBenchReport {
        workload: format!(
            "open-loop Poisson arrivals, {} requests over {} prompt families",
            config.load.requests, config.load.families
        ),
        requests: config.load.requests,
        seed: config.load.seed,
        deterministic,
        affinity_lift_pct,
        rows,
    }
}

/// One (lane count, reuse setting) configuration of the reuse sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReuseRow {
    /// Worker lanes.
    pub lanes: usize,
    /// Whether the generation memo was on.
    pub reuse: bool,
    /// Requests completed (all classes).
    pub completed: u64,
    /// Host-side elapsed seconds for the serving pass.
    pub host_wall_s: f64,
    /// Completed requests per host second.
    pub host_rps: f64,
    /// Virtual makespan, seconds (must not depend on the reuse setting).
    pub makespan_s: f64,
    /// Reuse ledger and memo-occupancy counters.
    pub reuse_report: ReuseReport,
    /// Order-canonical fingerprint over statuses and trace digests.
    pub trace_fingerprint: String,
}

/// The reuse sweep result (`BENCH_reuse.json`).
#[derive(Debug, Clone, serde::Serialize)]
pub struct ReuseBenchReport {
    /// Workload description.
    pub workload: String,
    /// Requests per configuration.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Share of requests that replay an earlier request's exact payload.
    pub duplicate_share: f64,
    /// Aggregate host throughput with reuse on over reuse off (total host
    /// wall across the lane sweep; virtual-time outputs are identical).
    pub speedup_x: f64,
    /// For every lane count, the reuse-on fingerprint equals the
    /// reuse-off fingerprint (the memo is observationally invisible).
    pub digests_match: bool,
    /// Reuse-on ledger counters are identical at every lane count.
    pub counters_lane_invariant: bool,
    /// Memo hits outside the leader's service window (reuse-on rows).
    pub hits: u64,
    /// Duplicates that arrived inside their leader's service window.
    pub coalesced: u64,
    /// One row per (lane count, reuse setting).
    pub rows: Vec<ReuseRow>,
}

/// Serve the reuse workload once on a fresh engine + runtime + node,
/// returning the run and its host wall time.
fn reuse_pass(config: &ServeBenchConfig, lanes: usize, reuse: bool) -> (ServeRun, f64) {
    let workload = spear_serve::generate(&config.load);
    // The chain interner off: it and the memo overlap on exact duplicates
    // (both skip re-tokenization), so leaving it on would measure the
    // memo's marginal win over an already-interned baseline. The sweep
    // isolates whole-call reuse against the canonical tokenize + prefill +
    // task-model path; both settings of the `reuse` knob see the same
    // engine, so the comparison stays apples-to-apples.
    let engine = Arc::new(SimLlm::with_config(
        config.profile.clone(),
        EngineConfig {
            seed: config.load.seed,
            intern_enabled: false,
            ..EngineConfig::default()
        },
    ));
    let runtime = Runtime::builder()
        .llm(Arc::clone(&engine) as Arc<dyn LlmClient>)
        .views(workload.views.clone())
        .build();
    // Generous admission: the speedup claim is about serving cost, so
    // every configuration must serve the identical request set.
    let node = ServeNode::new(ServeConfig {
        lanes,
        quantum: 4,
        affinity_routing: true,
        admission: AdmissionConfig {
            max_depth: 100_000,
            bucket_capacity: 1 << 40,
            refill_per_us: 1_000_000.0,
            ..AdmissionConfig::default()
        },
        verify_admission: true,
        pressure: config.pressure.clone(),
        program_cache_capacity: 64,
        reuse,
    });
    let started = Instant::now();
    let run = node.run(&runtime, Some(&engine), workload.requests);
    (run, started.elapsed().as_secs_f64())
}

fn reuse_once(config: &ServeBenchConfig, lanes: usize, reuse: bool) -> ReuseRow {
    // Best-of-two timing: virtual outputs are bit-identical across passes
    // (pinned by test), so the second pass only tightens the host wall
    // against one-off warmup costs (page faults, allocator growth).
    let (run, first_wall) = reuse_pass(config, lanes, reuse);
    let (_, second_wall) = reuse_pass(config, lanes, reuse);
    let host_wall_s = first_wall.min(second_wall);
    let report = run.report;
    let completed = report.interactive.completed + report.batch.completed;
    ReuseRow {
        lanes,
        reuse,
        completed,
        host_wall_s,
        host_rps: if host_wall_s > 0.0 {
            completed as f64 / host_wall_s
        } else {
            0.0
        },
        makespan_s: report.makespan_us as f64 / 1e6,
        reuse_report: report.reuse.clone(),
        trace_fingerprint: format!("{:016x}", report.trace_fingerprint),
    }
}

/// Run the reuse sweep: every lane count, memo on and off.
#[must_use]
pub fn run_reuse(config: &ServeBenchConfig) -> ReuseBenchReport {
    // One throwaway pass warms the process (lazy relocations, allocator
    // arenas) so the first measured row isn't structurally penalized.
    let mut warm = config.clone();
    warm.load.requests = config.load.requests.min(128);
    let _ = reuse_pass(&warm, 1, true);

    let mut rows = Vec::with_capacity(config.lane_counts.len() * 2);
    for &lanes in &config.lane_counts {
        for reuse in [true, false] {
            rows.push(reuse_once(config, lanes, reuse));
        }
    }

    let digests_match = config.lane_counts.iter().all(|&lanes| {
        let print = |reuse: bool| {
            rows.iter()
                .find(|r| r.lanes == lanes && r.reuse == reuse)
                .map(|r| &r.trace_fingerprint)
        };
        print(true) == print(false)
    });
    let on_rows: Vec<&ReuseRow> = rows.iter().filter(|r| r.reuse).collect();
    let counters_lane_invariant = on_rows
        .windows(2)
        .all(|w| w[0].reuse_report == w[1].reuse_report);

    let wall = |reuse: bool| -> f64 {
        rows.iter()
            .filter(|r| r.reuse == reuse)
            .map(|r| r.host_wall_s)
            .sum()
    };
    let (on_wall, off_wall) = (wall(true), wall(false));
    let speedup_x = if on_wall > 0.0 {
        off_wall / on_wall
    } else {
        0.0
    };

    let ledger = on_rows
        .first()
        .map(|r| r.reuse_report.clone())
        .unwrap_or_default();

    ReuseBenchReport {
        workload: format!(
            "open-loop Poisson arrivals, {} requests over {} prompt families, \
             {:.0}% exact duplicates",
            config.load.requests,
            config.load.families,
            config.load.duplicate_share * 100.0
        ),
        requests: config.load.requests,
        seed: config.load.seed,
        duplicate_share: config.load.duplicate_share,
        speedup_x,
        digests_match,
        counters_lane_invariant,
        hits: ledger.hits,
        coalesced: ledger.coalesced,
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> ServeBenchConfig {
        ServeBenchConfig {
            load: LoadGenConfig {
                requests: 48,
                families: 3,
                ..ServeBenchConfig::default().load
            },
            lane_counts: vec![1, 4],
            ..ServeBenchConfig::default()
        }
    }

    #[test]
    fn affinity_lifts_hit_rate_and_fingerprints_are_lane_invariant() {
        let report = run(&small());
        assert_eq!(report.rows.len(), 4);
        assert!(report.deterministic, "fingerprints must match across lanes");
        assert!(
            report.affinity_lift_pct > 20.0,
            "affinity routing should lift hit rate by >20 points, got {:.1}",
            report.affinity_lift_pct
        );
        for row in &report.rows {
            assert_eq!(row.completed, 48, "no shedding at this load");
        }
    }

    #[test]
    fn reuse_sweep_is_invisible_and_lane_invariant() {
        // Stretch the trimmed stream's interarrival so some duplicates
        // land outside their leader's service window (plain hits) while
        // near-in-time ones still coalesce.
        let config = ServeBenchConfig {
            load: LoadGenConfig {
                requests: 96,
                mean_interarrival_us: 50_000,
                ..reuse_config().load
            },
            lane_counts: vec![1, 4],
            ..reuse_config()
        };
        let report = run_reuse(&config);
        assert!(report.digests_match, "memo must not change any trace");
        assert!(report.counters_lane_invariant, "ledger is deterministic");
        assert!(report.hits > 0, "duplicates of old requests hit the memo");
        assert!(report.coalesced > 0, "bursty duplicates coalesce");
        // The virtual timeline is reuse-independent too.
        for &lanes in &config.lane_counts {
            let makespan = |reuse: bool| {
                report
                    .rows
                    .iter()
                    .find(|r| r.lanes == lanes && r.reuse == reuse)
                    .map(|r| r.makespan_s)
            };
            assert_eq!(makespan(true), makespan(false));
        }
    }

    #[test]
    fn rerunning_reproduces_the_report() {
        let a = run(&small());
        let b = run(&small());
        for (x, y) in a.rows.iter().zip(&b.rows) {
            assert_eq!(x.trace_fingerprint, y.trace_fingerprint);
            assert_eq!(x.makespan_s, y.makespan_s);
            assert_eq!(x.cache_hit_pct, y.cache_hit_pct);
        }
    }
}
