//! Concurrent batch-execution throughput benchmark (`bench_batch`).
//!
//! Runs the Sentiment140-style filter workload — one pipeline instance per
//! tweet, all sharing the long view-V instruction prefix — through
//! [`BatchRunner`] at several worker counts and reports, per count:
//!
//! - **busy time**: total simulated engine time, summed over worker lanes.
//!   A workload property; identical at every worker count.
//! - **makespan**: the busiest lane's simulated time — the wall-clock a
//!   deployment with one engine replica per worker would observe. This is
//!   the number the speedup column is computed from, because it is a
//!   deterministic function of (workload, seed, worker count) and therefore
//!   reproducible on any machine, including single-core CI.
//! - **host wall**: the actual elapsed time on the machine running the
//!   benchmark. Informational only; it depends on the host's core count.
//! - **trace digest**: FNV-1a over every per-pipeline trace, in submission
//!   order. Equal digests across worker counts witness the determinism
//!   invariant on the full ≥500-pipeline workload.

use std::sync::Arc;
use std::time::Instant;

use spear_core::batch::BatchRunner;
use spear_core::error::Result;
use spear_core::llm::LlmClient;
use spear_core::pipeline::Pipeline;
use spear_core::runtime::{ExecState, Runtime};
use spear_core::value::Value;
use spear_core::view::{ParamSpec, ViewCatalog, ViewDef};
use spear_data::tweets::{self, TweetConfig};
use spear_kv::shard::fnv1a;
use spear_llm::{EngineConfig, ModelProfile, SimLlm};

use crate::workload;

/// Configuration for the batch throughput benchmark.
#[derive(Debug, Clone)]
pub struct BatchBenchConfig {
    /// Number of independent pipeline instances (acceptance floor: 500).
    pub n_pipelines: usize,
    /// Corpus + engine seed.
    pub seed: u64,
    /// Model profile.
    pub profile: ModelProfile,
    /// Worker counts to sweep.
    pub worker_counts: Vec<usize>,
}

impl Default for BatchBenchConfig {
    fn default() -> Self {
        Self {
            n_pipelines: 512,
            seed: 140,
            profile: ModelProfile::qwen25_7b_instruct(),
            worker_counts: vec![1, 2, 4, 8],
        }
    }
}

/// One row of the sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BatchRow {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Pipeline instances executed.
    pub pipelines: usize,
    /// Aggregate simulated engine busy time, seconds (worker-invariant).
    pub busy_s: f64,
    /// Simulated makespan (busiest lane), seconds.
    pub makespan_s: f64,
    /// Speedup over the 1-worker makespan.
    pub speedup: f64,
    /// Pipelines per simulated second.
    pub throughput_pps: f64,
    /// Prompt-token cache hit rate, percent.
    pub cache_hit_pct: f64,
    /// Host-side elapsed seconds (machine-dependent, informational).
    pub host_wall_s: f64,
    /// FNV-1a digest of all per-pipeline traces in submission order.
    pub trace_digest: String,
}

/// The full sweep result.
#[derive(Debug, Clone, serde::Serialize)]
pub struct BatchBenchReport {
    /// Workload description.
    pub workload: String,
    /// Pipeline instances per configuration.
    pub pipelines: usize,
    /// Seed used for corpus and engine.
    pub seed: u64,
    /// Whether every worker count produced identical per-pipeline traces.
    pub deterministic: bool,
    /// One row per worker count.
    pub rows: Vec<BatchRow>,
}

/// The benchmark's view: the long shared instruction prefix of
/// [`workload::view_v_text`] plus a per-instance tweet slot, so every
/// pipeline prefill hits the warm prefix.
fn bench_view() -> ViewDef {
    ViewDef::new(
        "batch_tweet_filter",
        format!(
            "{}\nFocus topic: {{{{topic}}}}.\nTweet: {{{{ctx:tweet}}}}",
            workload::view_v_text()
        ),
    )
    .with_param(ParamSpec::optional("topic", "any topic"))
}

fn bench_pipeline() -> Arc<Pipeline> {
    Arc::new(
        Pipeline::builder("batch_sentiment_filter")
            .create_from_view(
                "filter_prompt",
                "batch_tweet_filter",
                [("topic".to_string(), Value::from("school"))]
                    .into_iter()
                    .collect(),
            )
            .gen("verdict", "filter_prompt")
            .build(),
    )
}

fn states(config: &BatchBenchConfig) -> Vec<ExecState> {
    tweets::generate(&TweetConfig {
        count: config.n_pipelines,
        negative_fraction: 0.4,
        school_fraction: 0.4,
        hard_fraction: 0.1,
        seed: config.seed,
    })
    .iter()
    .map(|tweet| {
        let mut state = ExecState::new();
        state.context.set("tweet", tweet.text.clone());
        state
    })
    .collect()
}

/// Run the sweep.
///
/// # Errors
///
/// Propagates the first pipeline failure of any configuration.
pub fn run(config: &BatchBenchConfig) -> Result<BatchBenchReport> {
    let pipeline = bench_pipeline();
    let mut rows = Vec::with_capacity(config.worker_counts.len());
    let mut baseline_makespan = None;
    let mut baseline_digest: Option<u64> = None;
    let mut deterministic = true;

    for &workers in &config.worker_counts {
        // Fresh engine per configuration: the sweep compares cold starts,
        // not runs that inherit the previous configuration's cache.
        let llm = Arc::new(SimLlm::with_config(
            config.profile.clone(),
            EngineConfig {
                seed: config.seed,
                ..EngineConfig::default()
            },
        ));
        let views = ViewCatalog::new();
        views.register(bench_view());
        let entry = views.instantiate(
            "batch_tweet_filter",
            [("topic".to_string(), Value::from("school"))]
                .into_iter()
                .collect(),
        )?;
        let rt = Runtime::builder()
            .llm(llm.clone() as Arc<dyn LlmClient>)
            .views(views)
            .build();

        // Pre-warm the shared instruction prefix, as the paper's serving
        // setting assumes (view V is resident from its initial run).
        let mut warm_ctx = spear_core::context::Context::new();
        warm_ctx.set("tweet", "");
        llm.warm(&entry.render(&warm_ctx)?);

        let started = Instant::now();
        let outcomes = BatchRunner::new(workers).run_states(&rt, &pipeline, states(config));
        let host_wall_s = started.elapsed().as_secs_f64();

        let mut digest = 0xcbf2_9ce4_8422_2325u64;
        for outcome in outcomes {
            let outcome = outcome?;
            let jsonl = outcome.state.trace.to_jsonl().map_err(|e| {
                spear_core::error::SpearError::TraceParse {
                    line: 0,
                    reason: e.to_string(),
                }
            })?;
            digest ^= fnv1a(jsonl.as_bytes());
            digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
        }

        let busy_s = llm.clock().elapsed().as_secs_f64();
        let makespan_s = llm.clock().max_lane_elapsed().as_secs_f64();
        let base = *baseline_makespan.get_or_insert(makespan_s);
        match baseline_digest {
            None => baseline_digest = Some(digest),
            Some(d) => deterministic &= d == digest,
        }
        let stats = llm.cache_stats();
        rows.push(BatchRow {
            workers,
            pipelines: config.n_pipelines,
            busy_s,
            makespan_s,
            speedup: if makespan_s > 0.0 {
                base / makespan_s
            } else {
                1.0
            },
            throughput_pps: if makespan_s > 0.0 {
                config.n_pipelines as f64 / makespan_s
            } else {
                0.0
            },
            cache_hit_pct: stats.hit_rate().unwrap_or(0.0) * 100.0,
            host_wall_s,
            trace_digest: format!("{digest:016x}"),
        });
    }

    Ok(BatchBenchReport {
        workload: format!(
            "sentiment140-style filter, shared view prefix, {} pipelines",
            config.n_pipelines
        ),
        pipelines: config.n_pipelines,
        seed: config.seed,
        deterministic,
        rows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BatchBenchConfig {
        BatchBenchConfig {
            n_pipelines: 24,
            worker_counts: vec![1, 4],
            ..BatchBenchConfig::default()
        }
    }

    #[test]
    fn sweep_is_deterministic_and_speeds_up() {
        let report = run(&small()).expect("bench runs");
        assert!(report.deterministic, "traces must match across counts");
        assert_eq!(report.rows.len(), 2);
        let (one, four) = (&report.rows[0], &report.rows[1]);
        assert_eq!(one.trace_digest, four.trace_digest);
        assert!(
            (one.busy_s - four.busy_s).abs() < 1e-9,
            "busy time is invariant"
        );
        assert!(
            four.speedup > 2.0,
            "4 workers beat 2x, got {}",
            four.speedup
        );
        assert!(one.cache_hit_pct > 0.0, "warm prefix must hit");
    }

    #[test]
    fn rerunning_reproduces_digests_exactly() {
        let a = run(&small()).expect("first run");
        let b = run(&small()).expect("second run");
        assert_eq!(a.rows[0].trace_digest, b.rows[0].trace_digest);
        assert_eq!(a.rows[0].makespan_s, b.rows[0].makespan_s);
    }
}
