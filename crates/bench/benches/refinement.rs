//! Criterion wrapper for the Table 3 workload (small-n version suitable
//! for `cargo bench`; the full 1000-tweet table comes from the `table3`
//! binary). Measures the end-to-end harness cost of each refinement
//! strategy — wall-clock of simulation + bookkeeping, not the virtual
//! latencies the table reports.
//!
//! Run with: `cargo bench -p spear-bench --bench refinement`

use criterion::{criterion_group, criterion_main, Criterion};
use spear_bench::table3::{run, Table3Config};

fn bench_table3(c: &mut Criterion) {
    let mut group = c.benchmark_group("table3_harness");
    group.sample_size(10);
    group.bench_function("all_strategies_n50", |b| {
        b.iter(|| {
            std::hint::black_box(
                run(&Table3Config {
                    n_tweets: 50,
                    ..Table3Config::default()
                })
                .unwrap(),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_table3);
criterion_main!(benches);
