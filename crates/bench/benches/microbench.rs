//! Microbenchmarks for the substrates: tokenizer, prefix cache, KV store,
//! prompt store, templates, conditions, diff, SPEAR-DL, and the executor.
//!
//! Run with: `cargo bench -p spear-bench --bench microbench`

use std::collections::BTreeMap;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};

use spear_core::prelude::*;
use spear_kv::KvStore;
use spear_llm::{PrefixCache, Tokenizer};

fn bench_tokenizer(c: &mut Criterion) {
    let tok = Tokenizer::new();
    let text = spear_bench::workload::view_v_text();
    c.bench_function("tokenizer/encode_450_token_instruction", |b| {
        b.iter(|| std::hint::black_box(tok.encode(&text)));
    });
    // Regression guards for the zero-alloc hot paths: `count` must not
    // build a token vector, and `encode_into` must reuse the caller's
    // buffer. Both should run well under `encode`'s fresh-Vec time.
    c.bench_function("tokenizer/count_alloc_free", |b| {
        b.iter(|| std::hint::black_box(tok.count(&text)));
    });
    c.bench_function("tokenizer/encode_into_reused_buffer", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            tok.encode_into(&text, &mut buf);
            std::hint::black_box(buf.len())
        });
    });
    c.bench_function("tokenizer/streaming_resume_suffix_only", |b| {
        // The interner fast path: a warm 450-token prefix costs only the
        // per-request suffix.
        let suffix = "case 17: ledger gasket orbit\nAnswer with a word limit of 50.";
        let mut buf = Vec::new();
        let mut encoder = spear_llm::StreamingEncoder::new();
        b.iter(|| {
            buf.clear();
            encoder.reset("");
            encoder.feed(suffix, &mut buf);
            encoder.finish(&mut buf);
            std::hint::black_box(buf.len())
        });
    });
}

fn bench_prefix_cache(c: &mut Criterion) {
    let tok = Tokenizer::new();
    let instruction = spear_bench::workload::view_v_text();
    let warm_tokens = tok.encode(&instruction);
    let probe = tok.encode(&format!("{instruction}\nTweet: terrible exam today"));

    c.bench_function("prefix_cache/lookup_hit_450_tokens", |b| {
        let mut cache = PrefixCache::with_defaults();
        cache.insert(&warm_tokens);
        b.iter(|| std::hint::black_box(cache.lookup(&probe)));
    });
    c.bench_function("prefix_cache/insert_450_tokens", |b| {
        b.iter_batched(
            PrefixCache::with_defaults,
            |mut cache| cache.insert(&warm_tokens),
            BatchSize::SmallInput,
        );
    });
}

fn bench_kv_store(c: &mut Criterion) {
    c.bench_function("kv/put_get", |b| {
        let store: KvStore<u64> = KvStore::new();
        let mut i = 0u64;
        b.iter(|| {
            store.put(format!("key-{}", i % 512), i);
            i += 1;
            std::hint::black_box(store.get(&format!("key-{}", i % 512)))
        });
    });
    c.bench_function("kv/snapshot_read", |b| {
        let store: KvStore<u64> = KvStore::new();
        for i in 0..512u64 {
            store.put(format!("key-{i}"), i);
        }
        let snap = store.snapshot();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            std::hint::black_box(snap.get(&format!("key-{}", i % 512)))
        });
    });
}

fn bench_prompt_store(c: &mut Criterion) {
    c.bench_function("prompt_store/refine_with_history", |b| {
        let store = PromptStore::new();
        store.define("p", "base prompt text", "f", RefinementMode::Manual);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            store
                .refine(
                    "p",
                    format!("base prompt text v{i}"),
                    RefAction::Update,
                    "bench",
                    RefinementMode::Auto,
                    i,
                    None,
                    BTreeMap::new(),
                    None,
                )
                .unwrap()
        });
    });
}

fn bench_template_and_condition(c: &mut Criterion) {
    let entry = PromptEntry::new(
        "Summarize {{drug}} from {{ctx:notes}} within {{limit}} words.",
        "f",
        RefinementMode::Manual,
    )
    .with_param("drug", "Enoxaparin")
    .with_param("limit", 60);
    let mut ctx = Context::new();
    ctx.set("notes", "enoxaparin 40 mg daily");
    c.bench_function("template/render_three_placeholders", |b| {
        b.iter(|| std::hint::black_box(entry.render(&ctx).unwrap()));
    });

    let mut m = Metadata::new();
    m.set("confidence", 0.62);
    let cond = Cond::All(vec![
        Cond::low_confidence(0.7),
        Cond::NotInContext("orders".into()),
    ]);
    c.bench_function("condition/eval_conjunction", |b| {
        b.iter(|| std::hint::black_box(cond.eval(&ctx, &m).unwrap()));
    });
}

fn bench_diff(c: &mut Criterion) {
    let v1 = spear_bench::workload::view_v_text();
    let v2 = format!("{v1}\nFocus on school-related tweets only.");
    c.bench_function("diff/line_lcs_450_tokens", |b| {
        b.iter(|| std::hint::black_box(spear_core::diff::diff(&v1, &v2)));
    });
}

fn bench_dl(c: &mut Criterion) {
    let program = r#"
        VIEW qa(drug) = "Highlight {{drug}}.\nNotes: {{ctx:notes}}";
        PIPELINE p {
          REF CREATE "qa_prompt" FROM VIEW qa(drug = "Enoxaparin");
          GEN "answer_0" USING "qa_prompt";
          RETRY "answer" USING "qa_prompt" IF M["confidence"] < 0.7
            WITH auto_refine() MODE AUTO MAX 2;
          CHECK "orders" NOT IN C { RET "lookup" INTO "orders"; }
        }
    "#;
    c.bench_function("dl/parse_and_compile", |b| {
        b.iter(|| std::hint::black_box(spear_dl::compile(program).unwrap()));
    });
}

fn bench_executor(c: &mut Criterion) {
    let runtime = Runtime::builder().llm(Arc::new(EchoLlm::default())).build();
    let pipeline = Pipeline::builder("bench")
        .create_text(
            "p",
            "Classify the note. {{ctx:item}}",
            RefinementMode::Manual,
        )
        .gen("a", "p")
        .check(Cond::low_confidence(0.99), |b| b.expand("p", "hint"))
        .build();
    c.bench_function("executor/three_op_pipeline", |b| {
        b.iter_batched(
            || {
                let mut state = ExecState::new();
                state.context.set("item", "sample");
                state
            },
            |mut state| runtime.execute(&pipeline, &mut state).unwrap(),
            BatchSize::SmallInput,
        );
    });
}

fn bench_fusion_planning(c: &mut Criterion) {
    use spear_optimizer::cost::CostModel;
    use spear_optimizer::fusion::{decide, PlanEstimates, StageEstimate};
    use spear_optimizer::plan::SemanticPlan;
    let plan = SemanticPlan::filter_then_map("negative?", "clean");
    let est = PlanEstimates {
        n_items: 1000.0,
        selectivity: 0.3,
        per_stage: StageEstimate {
            prompt_tokens: 60.0,
            cached_fraction: 0.0,
            decode_tokens: 20.0,
        },
        fused: StageEstimate {
            prompt_tokens: 95.0,
            cached_fraction: 0.0,
            decode_tokens: 26.0,
        },
    };
    let model = CostModel::default();
    c.bench_function("optimizer/fusion_decision", |b| {
        b.iter(|| std::hint::black_box(decide(&plan, &est, &model)));
    });
}

criterion_group!(
    benches,
    bench_tokenizer,
    bench_prefix_cache,
    bench_kv_store,
    bench_prompt_store,
    bench_template_and_condition,
    bench_diff,
    bench_dl,
    bench_executor,
    bench_fusion_planning
);
criterion_main!(benches);
