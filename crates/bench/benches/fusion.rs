//! Criterion wrapper for the fusion workload (small-n version; the full
//! Table 4 / Figure 1 sweeps come from the `table4` / `figure1` binaries).
//!
//! Run with: `cargo bench -p spear-bench --bench fusion`

use criterion::{criterion_group, criterion_main, Criterion};
use spear_bench::fusion_exp::{measure, FusionConfig, FusionOrder};
use spear_llm::ModelProfile;

fn bench_fusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("fusion_harness");
    group.sample_size(10);
    let profile = ModelProfile::qwen25_7b_instruct();
    for (name, order) in [
        ("map_filter_n50", FusionOrder::MapFilter),
        ("filter_map_n50", FusionOrder::FilterMap),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                std::hint::black_box(
                    measure(
                        &profile,
                        order,
                        &FusionConfig {
                            n_tweets: 50,
                            seed: 140,
                            selectivity: 0.5,
                        },
                    )
                    .unwrap(),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fusion);
criterion_main!(benches);
