//! The SPEAR prompt algebra: core operators as data (paper §3.3).
//!
//! "At the heart of SPEAR is a prompt algebra that manipulates the prompt P,
//! context C, and metadata M in a structured way. This algebra is *closed
//! under composition* in that each of its operators consumes and produces
//! the triple (P, C, M)."
//!
//! Operators are plain serializable data — the executor in
//! [`crate::runtime`] interprets them. Keeping the algebra first-order is
//! what makes pipelines loggable, optimizable (see `spear-optimizer`), and
//! compilable from SPEAR-DL.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::condition::Cond;
use crate::history::{RefAction, RefinementMode};
use crate::llm::GenOptions;
use crate::retriever::RetrievalQuery;
use crate::value::Value;

/// How GEN (and prompt-based RET) names its prompt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PromptRef {
    /// A named entry in P — structured, versioned, cacheable.
    Key(String),
    /// An ad-hoc string (may contain `{{ctx:...}}` placeholders). Opaque to
    /// the optimizer and the prefix cache — this is the baseline the paper
    /// compares against.
    Inline(String),
    /// Instantiate a view on the fly without storing it in P.
    View {
        /// View name.
        name: String,
        /// Instantiation arguments.
        args: BTreeMap<String, Value>,
    },
    /// A pre-rendered template emitted by plan lowering (e.g. the
    /// optimizer fusing semantic stages into one GEN). The text may contain
    /// `{{ctx:...}}` placeholders; unlike `Inline`, the lowering step can
    /// attach the source plan's structured identity, keeping such prompts
    /// cacheable (structure gates caching).
    Lowered {
        /// Template text.
        text: String,
        /// Structured identity inherited from the source plan; `None`
        /// means opaque.
        identity: Option<String>,
    },
}

impl PromptRef {
    /// Convenience: a key reference.
    #[must_use]
    pub fn key(k: impl Into<String>) -> Self {
        PromptRef::Key(k.into())
    }
}

/// How MERGE reconciles two prompt fragments (paper §3.3: "selecting one
/// prompt, combining fragments from both, or choosing the most effective
/// version based on runtime metadata such as confidence or latency").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MergePolicy {
    /// Keep the left fragment.
    PreferLeft,
    /// Keep the right fragment.
    PreferRight,
    /// Concatenate left then right with a separator.
    Concat {
        /// Separator between the fragments.
        separator: String,
    },
    /// Choose by comparing two metadata signals (e.g. per-branch
    /// confidence); falls back to left when either signal is missing.
    BySignal {
        /// Signal scoring the left fragment.
        left_signal: String,
        /// Signal scoring the right fragment.
        right_signal: String,
    },
}

/// What DELEGATE sends to the agent.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PayloadSpec {
    /// A context entry (`DELEGATE["validation_agent", C["answer_1"]]`).
    CtxKey(String),
    /// The rendered text of a prompt entry.
    PromptKey(String),
    /// A literal value.
    Lit(Value),
}

/// One operator of the algebra.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// `RET[source]` — retrieve data into C.
    Ret {
        /// Registered retriever name.
        source: String,
        /// Structured query (ignored when `prompt` is set).
        query: RetrievalQuery,
        /// Optional prompt key for prompt-based retrieval; rendered at
        /// execution time, so REF can refine retrieval intent (paper §2:
        /// `RET["med_context", prompt: P["retrieve_meds_72hr"]]`).
        prompt: Option<String>,
        /// Context key to write results into.
        into: String,
        /// Maximum documents.
        limit: usize,
    },
    /// `GEN[label]` — invoke the LLM; result lands in `C[label]`.
    Gen {
        /// Context key for the generation.
        label: String,
        /// The prompt.
        prompt: PromptRef,
        /// Generation options.
        options: GenOptions,
    },
    /// `REF[action, f]` — construct or refine `P[target]`.
    Ref {
        /// Prompt key to refine.
        target: String,
        /// Action type recorded in the ref_log.
        action: RefAction,
        /// Registered refiner name (the function `f`).
        refiner: String,
        /// Per-application refiner arguments.
        args: Value,
        /// Refinement mode (manual / assisted / auto).
        mode: RefinementMode,
    },
    /// `CHECK[cond, f]` — conditional execution.
    Check {
        /// The condition over (C, M).
        cond: Cond,
        /// Operators to run when the condition holds. REF operators inside
        /// inherit the condition as their ref_log `trigger`.
        then_ops: Vec<Op>,
        /// Operators to run otherwise.
        else_ops: Vec<Op>,
    },
    /// `MERGE[P_1, P_2]` — reconcile two prompt fragments into one.
    Merge {
        /// Left prompt key.
        left: String,
        /// Right prompt key.
        right: String,
        /// Destination prompt key.
        into: String,
        /// Reconciliation policy.
        policy: MergePolicy,
    },
    /// `DELEGATE[agent, payload]` — offload a subtask; result lands in C.
    Delegate {
        /// Registered agent name.
        agent: String,
        /// Payload to send.
        payload: PayloadSpec,
        /// Context key for the agent's result.
        into: String,
    },
}

impl Op {
    /// Short operator name for traces (`"RET"`, `"GEN"`, …).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Op::Ret { .. } => "RET",
            Op::Gen { .. } => "GEN",
            Op::Ref { .. } => "REF",
            Op::Check { .. } => "CHECK",
            Op::Merge { .. } => "MERGE",
            Op::Delegate { .. } => "DELEGATE",
        }
    }

    /// Total number of operators including nested CHECK branches — used by
    /// the executor's op budget and by optimizer cost estimates.
    #[must_use]
    pub fn size(&self) -> u64 {
        match self {
            Op::Check {
                then_ops, else_ops, ..
            } => {
                1 + then_ops.iter().map(Op::size).sum::<u64>()
                    + else_ops.iter().map(Op::size).sum::<u64>()
            }
            _ => 1,
        }
    }

    /// Compact one-line rendering in the paper's notation.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            Op::Ret {
                source,
                prompt,
                into,
                ..
            } => match prompt {
                Some(p) => format!("RET[{source:?}, prompt: P[{p:?}]] -> C[{into:?}]"),
                None => format!("RET[{source:?}] -> C[{into:?}]"),
            },
            Op::Gen { label, prompt, .. } => match prompt {
                PromptRef::Key(k) => format!("GEN[{label:?}] using P[{k:?}]"),
                PromptRef::Inline(_) => format!("GEN[{label:?}] using inline prompt"),
                PromptRef::Lowered { .. } => {
                    format!("GEN[{label:?}] using lowered prompt")
                }
                PromptRef::View { name, .. } => {
                    format!("GEN[{label:?}] using VIEW[{name:?}]")
                }
            },
            Op::Ref {
                target,
                action,
                refiner,
                ..
            } => format!("REF[{action}, {refiner}] on P[{target:?}]"),
            Op::Check { cond, .. } => format!("CHECK[{cond}]"),
            Op::Merge {
                left, right, into, ..
            } => format!("MERGE[P[{left:?}], P[{right:?}]] -> P[{into:?}]"),
            Op::Delegate { agent, into, .. } => {
                format!("DELEGATE[{agent:?}] -> C[{into:?}]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_check() -> Op {
        Op::Check {
            cond: Cond::low_confidence(0.7),
            then_ops: vec![
                Op::Ref {
                    target: "qa_prompt".into(),
                    action: RefAction::Update,
                    refiner: "auto_refine".into(),
                    args: Value::Null,
                    mode: RefinementMode::Auto,
                },
                Op::Gen {
                    label: "answer_1".into(),
                    prompt: PromptRef::key("qa_prompt"),
                    options: GenOptions::default(),
                },
            ],
            else_ops: vec![],
        }
    }

    #[test]
    fn kind_and_size() {
        let check = sample_check();
        assert_eq!(check.kind(), "CHECK");
        assert_eq!(check.size(), 3);
        assert_eq!(
            Op::Delegate {
                agent: "v".into(),
                payload: PayloadSpec::CtxKey("answer_1".into()),
                into: "evidence_score".into(),
            }
            .size(),
            1
        );
    }

    #[test]
    fn describe_uses_paper_notation() {
        assert_eq!(sample_check().describe(), "CHECK[M[\"confidence\"] < 0.7]");
        let ret = Op::Ret {
            source: "order_lookup".into(),
            query: RetrievalQuery::All,
            prompt: Some("retrieve_meds_72hr".into()),
            into: "med_context".into(),
            limit: 10,
        };
        assert!(ret.describe().contains("prompt: P[\"retrieve_meds_72hr\"]"));
    }

    #[test]
    fn ops_serialize_roundtrip() {
        let op = sample_check();
        let json = serde_json::to_string(&op).unwrap();
        let back: Op = serde_json::from_str(&json).unwrap();
        assert_eq!(op, back);
    }

    #[test]
    fn merge_policies_roundtrip() {
        for policy in [
            MergePolicy::PreferLeft,
            MergePolicy::PreferRight,
            MergePolicy::Concat {
                separator: "\n".into(),
            },
            MergePolicy::BySignal {
                left_signal: "confidence:a".into(),
                right_signal: "confidence:b".into(),
            },
        ] {
            let json = serde_json::to_string(&policy).unwrap();
            let back: MergePolicy = serde_json::from_str(&json).unwrap();
            assert_eq!(policy, back);
        }
    }
}
