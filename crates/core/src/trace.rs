//! Structured execution logging (paper §6: "the runtime also supports
//! shadow execution, structured logging, and refinement replay, enabling
//! traceability and introspection for prompt evolution").

use serde::{Deserialize, Serialize};

use crate::error::SpearError;
use crate::value::Value;

/// What a trace event records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Pipeline started.
    PipelineStart,
    /// Pipeline finished.
    PipelineEnd,
    /// RET executed.
    Ret,
    /// GEN executed.
    Gen,
    /// REF executed.
    Ref,
    /// CHECK evaluated true; then-branch ran.
    CheckTaken,
    /// CHECK evaluated false; else-branch (possibly empty) ran.
    CheckSkipped,
    /// MERGE executed.
    Merge,
    /// DELEGATE executed.
    Delegate,
    /// An operator failed (the error is re-raised after logging).
    Error,
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Monotonic event sequence within the trace.
    pub seq: u64,
    /// Executor step (operator index) the event belongs to.
    pub step: u64,
    /// Event kind.
    pub kind: TraceKind,
    /// Operator description in paper notation.
    pub op: String,
    /// Structured payload (tokens, latency, condition text, …).
    pub detail: Value,
}

/// An append-only, queryable execution trace.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event, assigning its sequence number.
    pub fn record(&mut self, step: u64, kind: TraceKind, op: String, detail: Value) {
        let seq = self.events.len() as u64;
        self.events.push(TraceEvent {
            seq,
            step,
            kind,
            op,
            detail,
        });
    }

    /// All events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events of one kind.
    #[must_use]
    pub fn of_kind(&self, kind: TraceKind) -> Vec<&TraceEvent> {
        self.events.iter().filter(|e| e.kind == kind).collect()
    }

    /// Count of events of one kind.
    #[must_use]
    pub fn count(&self, kind: TraceKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Serialize as JSON Lines (one event per line) for durable logs.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures (practically impossible for these
    /// types, but surfaced rather than swallowed).
    pub fn to_jsonl(&self) -> Result<String, serde_json::Error> {
        let mut out = String::new();
        for e in &self.events {
            out.push_str(&serde_json::to_string(e)?);
            out.push('\n');
        }
        Ok(out)
    }

    /// FNV-1a digest of the JSONL rendering — a compact fingerprint for
    /// determinism checks: two traces digest equal iff their serialized
    /// events are byte-identical. Used by the batch and serve benchmarks
    /// to witness the "same seed ⇒ same traces at any worker count"
    /// invariant without holding every trace in memory.
    ///
    /// # Errors
    ///
    /// Propagates serialization failures, as [`Trace::to_jsonl`] does.
    pub fn digest(&self) -> Result<u64, serde_json::Error> {
        let mut hash = 0xcbf2_9ce4_8422_2325u64;
        for e in &self.events {
            for byte in serde_json::to_string(e)?.bytes() {
                hash ^= u64::from(byte);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            hash ^= u64::from(b'\n');
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Ok(hash)
    }

    /// Parse a JSON-Lines trace produced by [`Trace::to_jsonl`].
    ///
    /// # Errors
    ///
    /// Fails on the first malformed line — including trailing garbage
    /// after a valid JSON object — reporting its 1-based line number via
    /// [`SpearError::TraceParse`]. Blank lines are skipped.
    pub fn from_jsonl(s: &str) -> Result<Self, SpearError> {
        let mut events = Vec::new();
        for (number, line) in s.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            let event = serde_json::from_str(line).map_err(|e| SpearError::TraceParse {
                line: number + 1,
                reason: e.to_string(),
            })?;
            events.push(event);
        }
        Ok(Self { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trace {
        let mut t = Trace::new();
        t.record(
            0,
            TraceKind::PipelineStart,
            "pipeline \"qa\"".into(),
            Value::Null,
        );
        t.record(
            1,
            TraceKind::Gen,
            "GEN[\"answer_0\"]".into(),
            crate::value::map([("tokens", Value::from(42))]),
        );
        t.record(2, TraceKind::CheckTaken, "CHECK[...]".into(), Value::Null);
        t.record(3, TraceKind::Gen, "GEN[\"answer_1\"]".into(), Value::Null);
        t.record(
            4,
            TraceKind::PipelineEnd,
            "pipeline \"qa\"".into(),
            Value::Null,
        );
        t
    }

    #[test]
    fn events_get_monotonic_seq() {
        let t = sample();
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn kind_queries() {
        let t = sample();
        assert_eq!(t.count(TraceKind::Gen), 2);
        assert_eq!(t.of_kind(TraceKind::CheckTaken).len(), 1);
        assert_eq!(t.count(TraceKind::Error), 0);
    }

    #[test]
    fn jsonl_roundtrip() {
        let t = sample();
        let jsonl = t.to_jsonl().unwrap();
        assert_eq!(jsonl.lines().count(), 5);
        let back = Trace::from_jsonl(&jsonl).unwrap();
        assert_eq!(back.events(), t.events());
    }

    #[test]
    fn digest_distinguishes_traces_and_matches_jsonl() {
        let t = sample();
        assert_eq!(t.digest().unwrap(), sample().digest().unwrap());
        let mut other = sample();
        other.record(5, TraceKind::Gen, "GEN[\"extra\"]".into(), Value::Null);
        assert_ne!(t.digest().unwrap(), other.digest().unwrap());
        // The digest is exactly FNV-1a over the JSONL bytes.
        let mut expected = 0xcbf2_9ce4_8422_2325u64;
        for b in t.to_jsonl().unwrap().bytes() {
            expected ^= u64::from(b);
            expected = expected.wrapping_mul(0x0000_0100_0000_01b3);
        }
        assert_eq!(t.digest().unwrap(), expected);
    }

    #[test]
    fn detail_payload_survives() {
        let t = sample();
        let gen = &t.of_kind(TraceKind::Gen)[0];
        assert_eq!(gen.detail.path("tokens").unwrap().as_i64(), Some(42));
    }
}
