//! Meta prompts: querying and analysing prompt histories (paper §4.4).
//!
//! "Because SPEAR treats prompt histories as first-class data, it can
//! support meta-level reasoning in that pipelines can query, analyze, and
//! revise their own prompt logic." This module mines ref_logs across a
//! prompt store to answer the paper's example questions — which refiners
//! consistently raise confidence, which are underperforming and should be
//! replaced — and renders an entry's evolution as a textual *meta prompt*
//! suitable for feeding back into an LLM.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::history::{RefAction, RefinementMode};
use crate::prompt::PromptEntry;
use crate::store::PromptStore;
use crate::value::Value;

/// Aggregated effectiveness statistics for one refinement function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefinerStats {
    /// Refiner (function) name.
    pub f_name: String,
    /// Number of applications observed.
    pub applications: u64,
    /// Applications for which a confidence-after was observable.
    pub measured: u64,
    /// Mean confidence at application time (before the refinement's effect).
    pub avg_confidence_before: Option<f64>,
    /// Mean confidence at the *next* record on the same entry — the first
    /// observation after the refinement took effect.
    pub avg_confidence_after: Option<f64>,
    /// Mean confidence gain (`after - before`) over measured applications.
    pub avg_gain: Option<f64>,
    /// How often each mode applied this refiner.
    pub by_mode: BTreeMap<String, u64>,
}

impl RefinerStats {
    fn finalize(f_name: String, samples: &RefinerSamples) -> Self {
        let mean = |v: &[f64]| {
            if v.is_empty() {
                None
            } else {
                Some(v.iter().sum::<f64>() / v.len() as f64)
            }
        };
        let gains: Vec<f64> = samples.before_after.iter().map(|(b, a)| a - b).collect();
        let befores: Vec<f64> = samples.before_after.iter().map(|(b, _)| *b).collect();
        let afters: Vec<f64> = samples.before_after.iter().map(|(_, a)| *a).collect();
        Self {
            f_name,
            applications: samples.applications,
            measured: samples.before_after.len() as u64,
            avg_confidence_before: mean(&befores),
            avg_confidence_after: mean(&afters),
            avg_gain: mean(&gains),
            by_mode: samples.by_mode.clone(),
        }
    }
}

#[derive(Default)]
struct RefinerSamples {
    applications: u64,
    before_after: Vec<(f64, f64)>,
    by_mode: BTreeMap<String, u64>,
}

/// Mine refiner statistics from every entry in the store.
///
/// For each non-CREATE record, `confidence_before` is the confidence signal
/// snapshotted in that record; `confidence_after` is the confidence in the
/// *following* record of the same entry (the first post-refinement
/// observation). Records with no successor contribute to `applications`
/// but not to the gain estimate.
#[must_use]
pub fn analyze_refiners(store: &PromptStore) -> Vec<RefinerStats> {
    let mut samples: BTreeMap<String, RefinerSamples> = BTreeMap::new();
    for key in store.keys() {
        let Some(entry) = store.try_get(&key) else {
            continue;
        };
        for (idx, rec) in entry.ref_log.iter().enumerate() {
            if rec.action == RefAction::Create {
                continue;
            }
            let s = samples.entry(rec.f_name.clone()).or_default();
            s.applications += 1;
            *s.by_mode.entry(rec.mode.to_string()).or_default() += 1;
            let before = rec.signals.get("confidence").and_then(Value::as_f64);
            let after = entry
                .ref_log
                .get(idx + 1)
                .and_then(|next| next.signals.get("confidence"))
                .and_then(Value::as_f64);
            if let (Some(b), Some(a)) = (before, after) {
                s.before_after.push((b, a));
            }
        }
    }
    let mut out: Vec<RefinerStats> = samples
        .into_iter()
        .map(|(name, s)| RefinerStats::finalize(name, &s))
        .collect();
    // Best average gain first; unmeasured refiners sink to the end.
    out.sort_by(|a, b| {
        b.avg_gain
            .unwrap_or(f64::NEG_INFINITY)
            .partial_cmp(&a.avg_gain.unwrap_or(f64::NEG_INFINITY))
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.f_name.cmp(&b.f_name))
    });
    out
}

/// Refiners whose measured average gain falls below `threshold` — candidates
/// for "automatic replacement of underperforming refiners" (paper §4.4).
#[must_use]
pub fn underperformers(stats: &[RefinerStats], threshold: f64) -> Vec<&RefinerStats> {
    stats
        .iter()
        .filter(|s| s.avg_gain.is_some_and(|g| g < threshold))
        .collect()
}

/// Recommend the best measured refiner, if any has a positive average gain.
#[must_use]
pub fn recommend(stats: &[RefinerStats]) -> Option<&RefinerStats> {
    stats
        .iter()
        .filter(|s| s.avg_gain.is_some_and(|g| g > 0.0))
        .max_by(|a, b| {
            a.avg_gain
                .unwrap_or(0.0)
                .partial_cmp(&b.avg_gain.unwrap_or(0.0))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
}

/// Render an entry's evolution as a textual meta prompt — the paper's
/// "visualize how a prompt evolved over the course of fallback or retry
/// chains" — formatted so it can be fed to an LLM for meta-reasoning.
#[must_use]
pub fn meta_prompt_for(key: &str, entry: &PromptEntry) -> String {
    let mut out = format!(
        "Prompt {key:?} evolution ({} versions, origin: {:?}):\n",
        entry.version, entry.origin
    );
    for rec in &entry.ref_log {
        out.push_str("  - ");
        out.push_str(&rec.summary());
        if let Some(conf) = rec.signals.get("confidence").and_then(Value::as_f64) {
            out.push_str(&format!(" [confidence={conf:.2}]"));
        }
        if let Some(note) = &rec.note {
            out.push_str(&format!(" note: {note}"));
        }
        out.push('\n');
    }
    out.push_str(&format!("Current text:\n{}\n", entry.text));
    out.push_str(
        "Question: which refinements improved the outcome, and what should \
         be applied next?",
    );
    out
}

/// Counts of refinement applications by mode across the whole store — a
/// quick view of how automated a pipeline's prompt management has become.
#[must_use]
pub fn mode_distribution(store: &PromptStore) -> BTreeMap<RefinementMode, u64> {
    let mut out = BTreeMap::new();
    for key in store.keys() {
        if let Some(entry) = store.try_get(&key) {
            for rec in &entry.ref_log {
                *out.entry(rec.mode).or_default() += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap as Map;

    /// Build a store where `good_refiner` raises confidence by +0.3 and
    /// `bad_refiner` lowers it by 0.1 across several entries.
    fn mined_store() -> PromptStore {
        let store = PromptStore::new();
        for i in 0..3 {
            let key = format!("p{i}");
            store.define(&key, "base", "f_base", RefinementMode::Manual);
            let mut signals = Map::new();
            signals.insert("confidence".to_string(), Value::from(0.5));
            store
                .refine(
                    &key,
                    "base + good".into(),
                    RefAction::Update,
                    "good_refiner",
                    RefinementMode::Auto,
                    1,
                    None,
                    signals,
                    None,
                )
                .unwrap();
            let mut signals = Map::new();
            signals.insert("confidence".to_string(), Value::from(0.8));
            store
                .refine(
                    &key,
                    "base + good + bad".into(),
                    RefAction::Update,
                    "bad_refiner",
                    RefinementMode::Auto,
                    2,
                    None,
                    signals,
                    None,
                )
                .unwrap();
            let mut signals = Map::new();
            signals.insert("confidence".to_string(), Value::from(0.7));
            store
                .refine(
                    &key,
                    "final".into(),
                    RefAction::Update,
                    "closer",
                    RefinementMode::Manual,
                    3,
                    None,
                    signals,
                    None,
                )
                .unwrap();
        }
        store
    }

    #[test]
    fn analyze_computes_gains_per_refiner() {
        let stats = analyze_refiners(&mined_store());
        let good = stats.iter().find(|s| s.f_name == "good_refiner").unwrap();
        let bad = stats.iter().find(|s| s.f_name == "bad_refiner").unwrap();
        assert_eq!(good.applications, 3);
        assert!((good.avg_gain.unwrap() - 0.3).abs() < 1e-9);
        assert!((bad.avg_gain.unwrap() + 0.1).abs() < 1e-9);
        // Sorted best-first.
        assert_eq!(stats[0].f_name, "good_refiner");
    }

    #[test]
    fn trailing_records_count_but_are_unmeasured() {
        let stats = analyze_refiners(&mined_store());
        let closer = stats.iter().find(|s| s.f_name == "closer").unwrap();
        assert_eq!(closer.applications, 3);
        assert_eq!(closer.measured, 0);
        assert!(closer.avg_gain.is_none());
    }

    #[test]
    fn underperformers_and_recommendation() {
        let stats = analyze_refiners(&mined_store());
        let bad: Vec<&str> = underperformers(&stats, 0.0)
            .iter()
            .map(|s| s.f_name.as_str())
            .collect();
        assert_eq!(bad, vec!["bad_refiner"]);
        assert_eq!(recommend(&stats).unwrap().f_name, "good_refiner");
    }

    #[test]
    fn recommend_none_when_nothing_measured_positive() {
        let store = PromptStore::new();
        store.define("p", "x", "f", RefinementMode::Manual);
        let stats = analyze_refiners(&store);
        assert!(recommend(&stats).is_none());
    }

    #[test]
    fn meta_prompt_includes_history_and_question() {
        let store = mined_store();
        let entry = store.get("p0").unwrap();
        let mp = meta_prompt_for("p0", &entry);
        assert!(mp.contains("good_refiner"));
        assert!(mp.contains("confidence=0.50"));
        assert!(mp.contains("Current text"));
        assert!(mp.ends_with("applied next?"));
    }

    #[test]
    fn mode_distribution_counts_all_records() {
        let dist = mode_distribution(&mined_store());
        assert_eq!(dist[&RefinementMode::Manual], 6, "3 creates + 3 closers");
        assert_eq!(dist[&RefinementMode::Auto], 6);
    }
}
