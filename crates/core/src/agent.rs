//! The agent boundary used by DELEGATE.
//!
//! DELEGATE "offloads subtasks to an external agent (e.g., a coder,
//! retriever, or downstream service)" (paper §3.3). Agents receive a
//! structured payload plus a read-only view of the context and return a
//! structured value that the operator writes back into C — e.g. the paper's
//! `DELEGATE["validation_agent", C["answer_1"]] → C["evidence_score"]`.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::context::Context;
use crate::error::{Result, SpearError};
use crate::value::Value;

/// An external (or in-process) agent.
pub trait Agent: Send + Sync {
    /// Handle a delegated subtask.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::Agent`] on failure.
    fn call(&self, payload: &Value, context: &Context) -> Result<Value>;
}

/// Wrap a closure as an [`Agent`].
pub struct FnAgent<F>(pub F);

impl<F> Agent for FnAgent<F>
where
    F: Fn(&Value, &Context) -> Result<Value> + Send + Sync,
{
    fn call(&self, payload: &Value, context: &Context) -> Result<Value> {
        (self.0)(payload, context)
    }
}

/// Named registry of agents; DELEGATE resolves agent names here.
#[derive(Clone, Default)]
pub struct AgentRegistry {
    inner: Arc<RwLock<BTreeMap<String, Arc<dyn Agent>>>>,
}

impl AgentRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `agent` under `name` (replacing any previous one).
    pub fn register(&self, name: impl Into<String>, agent: Arc<dyn Agent>) {
        self.inner.write().insert(name.into(), agent);
    }

    /// Resolve an agent name.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::AgentNotFound`] when absent.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn Agent>> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SpearError::AgentNotFound(name.to_string()))
    }

    /// Registered agent names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

impl std::fmt::Debug for AgentRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AgentRegistry")
            .field("agents", &self.names())
            .finish()
    }
}

/// Built-in evidence-alignment validator, modelled on the paper's
/// "Delegated Evidence Check" example (Table 1): scores how well an answer
/// aligns with the evidence present in context under `evidence_key`.
///
/// The score is the fraction of content words in the answer that also occur
/// in the evidence — a deterministic stand-in for an LLM judge that exercises
/// the same pipeline path.
pub struct EvidenceValidator {
    /// Context key holding the evidence (a string or a list of doc maps).
    pub evidence_key: String,
}

impl EvidenceValidator {
    fn evidence_text(value: &Value) -> String {
        match value {
            Value::Str(s) => s.clone(),
            Value::List(items) => items
                .iter()
                .map(|item| {
                    item.path("text")
                        .and_then(Value::as_str)
                        .map_or_else(|| item.render(), str::to_string)
                })
                .collect::<Vec<_>>()
                .join("\n"),
            other => other.render(),
        }
    }
}

impl Agent for EvidenceValidator {
    fn call(&self, payload: &Value, context: &Context) -> Result<Value> {
        let answer = payload.as_str().ok_or_else(|| SpearError::Agent {
            agent: "evidence_validator".into(),
            reason: "payload must be the answer text (a string)".into(),
        })?;
        let evidence = context
            .get(&self.evidence_key)
            .ok_or_else(|| SpearError::Agent {
                agent: "evidence_validator".into(),
                reason: format!("evidence key {:?} missing from context", self.evidence_key),
            })?;
        let evidence_text = Self::evidence_text(&evidence).to_lowercase();
        let words: Vec<String> = answer
            .split(|c: char| !c.is_alphanumeric())
            .filter(|w| w.len() > 3)
            .map(str::to_lowercase)
            .collect();
        let score = if words.is_empty() {
            0.0
        } else {
            words
                .iter()
                .filter(|w| evidence_text.contains(w.as_str()))
                .count() as f64
                / words.len() as f64
        };
        Ok(Value::from(score))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fn_agent_wraps_closures() {
        let agent = FnAgent(|payload: &Value, _ctx: &Context| {
            Ok(Value::from(payload.as_i64().unwrap_or(0) * 2))
        });
        let out = agent.call(&Value::from(21), &Context::new()).unwrap();
        assert_eq!(out.as_i64(), Some(42));
    }

    #[test]
    fn registry_resolution() {
        let reg = AgentRegistry::new();
        reg.register(
            "doubler",
            Arc::new(FnAgent(|p: &Value, _: &Context| Ok(p.clone()))),
        );
        assert!(reg.resolve("doubler").is_ok());
        assert!(matches!(
            reg.resolve("missing"),
            Err(SpearError::AgentNotFound(_))
        ));
    }

    #[test]
    fn evidence_validator_scores_overlap() {
        let mut ctx = Context::new();
        ctx.set(
            "notes",
            "Patient started enoxaparin 40mg daily for prophylaxis after surgery",
        );
        let agent = EvidenceValidator {
            evidence_key: "notes".into(),
        };
        let supported = agent
            .call(&Value::from("enoxaparin prophylaxis after surgery"), &ctx)
            .unwrap();
        let unsupported = agent
            .call(&Value::from("warfarin bridging protocol unrelated"), &ctx)
            .unwrap();
        assert!(supported.as_f64().unwrap() > 0.9);
        assert!(unsupported.as_f64().unwrap() < 0.3);
    }

    #[test]
    fn evidence_validator_reads_doc_lists() {
        let mut ctx = Context::new();
        ctx.set(
            "docs",
            Value::List(vec![crate::value::map([(
                "text",
                Value::from("enoxaparin administered at night"),
            )])]),
        );
        let agent = EvidenceValidator {
            evidence_key: "docs".into(),
        };
        let score = agent
            .call(&Value::from("enoxaparin administered"), &ctx)
            .unwrap();
        assert!(score.as_f64().unwrap() > 0.9);
    }

    #[test]
    fn evidence_validator_error_paths() {
        let agent = EvidenceValidator {
            evidence_key: "missing".into(),
        };
        assert!(agent.call(&Value::from("text"), &Context::new()).is_err());
        let mut ctx = Context::new();
        ctx.set("missing", "evidence");
        assert!(agent.call(&Value::from(42), &ctx).is_err());
    }
}
