//! Structural prompt features.
//!
//! A small, backend-agnostic analysis of prompt text used in two places:
//! the LLM simulator's quality model (`spear-llm`) maps features to
//! accuracy bonuses, and the optimizer's predictive-refinement risk model
//! (`spear-optimizer`) treats *missing* features as risk. Centralizing the
//! detection keeps the two views of "prompt structure" consistent.

use serde::{Deserialize, Serialize};

/// Structural features detected in a rendered prompt.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PromptFeatures {
    /// States a high-level objective ("Objective: …").
    pub has_objective: bool,
    /// Demands specificity ("be specific", "focus on …").
    pub has_specificity: bool,
    /// Carries a reasoning hint ("think step by step").
    pub has_hint: bool,
    /// Embeds a worked example ("Example: … Output: …").
    pub has_example: bool,
    /// Imposes a word limit.
    pub has_word_limit: bool,
}

impl PromptFeatures {
    /// Detect features from prompt text (case-insensitive marker scan).
    #[must_use]
    pub fn detect(prompt: &str) -> Self {
        Self::detect_lowered(&prompt.to_lowercase())
    }

    /// [`PromptFeatures::detect`] over text the caller has already
    /// lowercased with [`str::to_lowercase`] — lets hot paths that scan a
    /// prompt several times pay for the case fold once.
    #[must_use]
    pub fn detect_lowered(lower: &str) -> Self {
        Self {
            has_objective: lower.contains("objective:") || lower.contains("the goal is"),
            has_specificity: lower.contains("be specific")
                || lower.contains("every relevant detail")
                || lower.contains("focus on"),
            has_hint: lower.contains("step by step") || lower.contains("reasoning"),
            has_example: lower.contains("example:") && lower.contains("output:"),
            has_word_limit: lower.contains("word limit")
                || lower.contains("at most")
                || lower.contains("no more than"),
        }
    }

    /// Number of present features.
    #[must_use]
    pub fn count(&self) -> u32 {
        u32::from(self.has_objective)
            + u32::from(self.has_specificity)
            + u32::from(self.has_hint)
            + u32::from(self.has_example)
            + u32::from(self.has_word_limit)
    }

    /// A stable fingerprint: prompts with the same feature set share it.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        u64::from(self.has_objective)
            | u64::from(self.has_specificity) << 1
            | u64::from(self.has_hint) << 2
            | u64::from(self.has_example) << 3
            | u64::from(self.has_word_limit) << 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detection_matches_markers() {
        let f = PromptFeatures::detect(
            "Objective: find school tweets. Be specific. Think step by step.\n\
             Example:\nInput: x\nOutput: y\nUse at most 30 words.",
        );
        assert!(f.has_objective && f.has_specificity && f.has_hint);
        assert!(f.has_example && f.has_word_limit);
        assert_eq!(f.count(), 5);
        assert_eq!(
            PromptFeatures::detect("plain text"),
            PromptFeatures::default()
        );
    }

    #[test]
    fn example_requires_both_markers() {
        assert!(!PromptFeatures::detect("Example: something").has_example);
        assert!(PromptFeatures::detect("Example:\nInput a\nOutput: b").has_example);
    }

    #[test]
    fn fingerprint_distinguishes_feature_sets() {
        let a = PromptFeatures::detect("plain");
        let b = PromptFeatures::detect("think step by step");
        let c = PromptFeatures::detect("focus on dosage");
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(b.fingerprint(), c.fingerprint());
    }

    #[test]
    fn detection_is_case_insensitive() {
        assert!(PromptFeatures::detect("THINK STEP BY STEP").has_hint);
    }
}
