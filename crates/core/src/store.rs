//! The prompt store **P**.
//!
//! "Prompt (P) is a structured store of named prompt fragments ... Each
//! entry in P captures how it was constructed, refined, and reused."
//! (paper §3.2). The store is backed by the `spear-kv` versioned KV
//! substrate (paper §6), so every write of an entry is itself versioned at
//! the storage layer, independently of the entry-level `ref_log` — the
//! former gives storage-level rollback/snapshots, the latter gives the
//! prompt-evolution provenance the paper's introspection features need.

use std::collections::BTreeMap;
use std::sync::Arc;

use spear_kv::{KvStore, LogOp, LogRecord, Persister};

use crate::diff::{self, PromptDiff};
use crate::error::{Result, SpearError};
use crate::history::{RefAction, RefinementMode};
use crate::prompt::PromptEntry;
use crate::value::Value;

/// Named store of structured prompt fragments.
///
/// Cloning the store clones the *handle*; both handles see the same entries
/// (the KV substrate is internally shared). Entry mutation is
/// read-modify-write and is not transactional across concurrent writers to
/// the *same key*; SPEAR pipelines mutate P single-threaded from the
/// executor, which is the intended usage.
#[derive(Clone)]
pub struct PromptStore {
    backend: KvStore<PromptEntry>,
    persister: Option<Arc<dyn Persister<PromptEntry>>>,
}

impl std::fmt::Debug for PromptStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PromptStore")
            .field("entries", &self.len())
            .field("durable", &self.persister.is_some())
            .finish()
    }
}

impl Default for PromptStore {
    fn default() -> Self {
        Self::new()
    }
}

impl PromptStore {
    /// Create an empty store on a fresh in-memory backend.
    #[must_use]
    pub fn new() -> Self {
        Self {
            backend: KvStore::new(),
            persister: None,
        }
    }

    /// Create a store over an existing KV backend (e.g. one recovered from
    /// a durability log).
    #[must_use]
    pub fn with_backend(backend: KvStore<PromptEntry>) -> Self {
        Self {
            backend,
            persister: None,
        }
    }

    /// Attach a durability sink: every subsequent entry write (insert,
    /// refine, rollback, merge, clone) is mirrored as a KV log record, so
    /// the store — including every embedded ref_log — can be rebuilt with
    /// `JsonlLog::recover` after a restart (paper §6: stores "may be ...
    /// backed by high-performance key-value systems").
    #[must_use]
    pub fn with_persister(mut self, persister: Arc<dyn Persister<PromptEntry>>) -> Self {
        self.persister = Some(persister);
        self
    }

    /// Mirror a completed write to the persister, if any. The in-memory
    /// mutation has already landed, so a log failure cannot be unwound;
    /// it is reported on stderr rather than silently dropped. Callers that
    /// need hard durability guarantees should check [`PromptStore::sync`]
    /// at their commit points.
    fn persist(&self, key: &str) {
        if let Some(p) = &self.persister {
            if let Some(versioned) = self.backend.get_versioned(key) {
                let record = LogRecord {
                    seq: versioned.seq,
                    key: key.to_string(),
                    op: versioned.value.map_or(LogOp::Delete, LogOp::Put),
                };
                if let Err(e) = p.append(&record) {
                    eprintln!("spear-core: durability append failed for {key:?}: {e}");
                }
            }
        }
    }

    /// Flush the durability sink, if any.
    ///
    /// # Errors
    ///
    /// Propagates persister flush failures.
    pub fn sync(&self) -> Result<()> {
        if let Some(p) = &self.persister {
            p.flush()?;
        }
        Ok(())
    }

    /// The underlying KV store (for snapshotting and persistence wiring).
    #[must_use]
    pub fn backend(&self) -> &KvStore<PromptEntry> {
        &self.backend
    }

    /// Insert `entry` under `key`, replacing any existing entry.
    pub fn insert(&self, key: impl Into<String>, entry: PromptEntry) {
        let key = key.into();
        self.backend.put(key.clone(), entry);
        self.persist(&key);
    }

    /// Convenience: create a fresh entry from raw text.
    pub fn define(
        &self,
        key: impl Into<String>,
        text: impl Into<String>,
        f_name: &str,
        mode: RefinementMode,
    ) {
        self.insert(key, PromptEntry::new(text, f_name, mode));
    }

    /// Fetch the entry at `key`.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::PromptNotFound`] when absent.
    pub fn get(&self, key: &str) -> Result<PromptEntry> {
        self.backend
            .get(key)
            .ok_or_else(|| SpearError::PromptNotFound(key.to_string()))
    }

    /// Fetch the entry at `key`, or `None`.
    #[must_use]
    pub fn try_get(&self, key: &str) -> Option<PromptEntry> {
        self.backend.get(key)
    }

    /// Whether `key` exists.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.backend.contains(key)
    }

    /// All keys, sorted.
    #[must_use]
    pub fn keys(&self) -> Vec<String> {
        self.backend.keys()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.backend.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.backend.is_empty()
    }

    /// Remove `key`. Returns `true` if it existed.
    pub fn remove(&self, key: &str) -> bool {
        let removed = self.backend.delete(key);
        if removed {
            self.persist(key);
        }
        removed
    }

    /// Read-modify-write an entry in place.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::PromptNotFound`] when absent.
    pub fn update<F: FnOnce(&mut PromptEntry)>(&self, key: &str, f: F) -> Result<()> {
        let mut entry = self.get(key)?;
        f(&mut entry);
        self.backend.put(key, entry);
        self.persist(key);
        Ok(())
    }

    /// Apply a refinement producing `new_text` to the entry at `key`,
    /// recording full provenance. This is the storage-side half of REF.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::PromptNotFound`] when absent.
    #[allow(clippy::too_many_arguments)]
    pub fn refine(
        &self,
        key: &str,
        new_text: String,
        action: RefAction,
        f_name: &str,
        mode: RefinementMode,
        step: u64,
        trigger: Option<String>,
        signals: BTreeMap<String, Value>,
        note: Option<String>,
    ) -> Result<u64> {
        let mut entry = self.get(key)?;
        entry.apply_refinement(new_text, action, f_name, mode, step, trigger, signals, note);
        let version = entry.version;
        self.backend.put(key, entry);
        self.persist(key);
        Ok(version)
    }

    /// Roll an entry back to an earlier version. The rollback is itself a
    /// refinement (the history is append-only — the paper's ref_log never
    /// loses steps), so the entry's version still increases.
    ///
    /// # Errors
    ///
    /// [`SpearError::PromptNotFound`] if the key is absent,
    /// [`SpearError::PromptVersionNotFound`] if the version is not retained.
    pub fn rollback(&self, key: &str, version: u64, step: u64) -> Result<u64> {
        let entry = self.get(key)?;
        let old_text = entry
            .text_at_version(version)
            .ok_or_else(|| SpearError::PromptVersionNotFound {
                key: key.to_string(),
                version,
            })?
            .to_string();
        self.refine(
            key,
            old_text,
            RefAction::Rollback,
            &format!("rollback_to_v{version}"),
            RefinementMode::Manual,
            step,
            None,
            BTreeMap::new(),
            None,
        )
    }

    /// Clone the entry at `src` to `dst` ("clone successful configurations",
    /// paper §4.3). The clone keeps the full ref_log so provenance survives.
    ///
    /// # Errors
    ///
    /// [`SpearError::PromptNotFound`] if `src` is absent.
    pub fn clone_entry(&self, src: &str, dst: impl Into<String>) -> Result<()> {
        let entry = self.get(src)?;
        let dst = dst.into();
        self.backend.put(dst.clone(), entry);
        self.persist(&dst);
        Ok(())
    }

    /// Diff the current texts of two entries (`DIFF[P_1, P_2]`).
    ///
    /// # Errors
    ///
    /// [`SpearError::PromptNotFound`] if either key is absent.
    pub fn diff(&self, left: &str, right: &str) -> Result<PromptDiff> {
        let l = self.get(left)?;
        let r = self.get(right)?;
        Ok(diff::diff(&l.text, &r.text))
    }

    /// Diff two versions of the same entry.
    ///
    /// # Errors
    ///
    /// [`SpearError::PromptNotFound`] / [`SpearError::PromptVersionNotFound`].
    pub fn diff_versions(&self, key: &str, v1: u64, v2: u64) -> Result<PromptDiff> {
        let entry = self.get(key)?;
        let t1 = entry
            .text_at_version(v1)
            .ok_or_else(|| SpearError::PromptVersionNotFound {
                key: key.to_string(),
                version: v1,
            })?;
        let t2 = entry
            .text_at_version(v2)
            .ok_or_else(|| SpearError::PromptVersionNotFound {
                key: key.to_string(),
                version: v2,
            })?;
        Ok(diff::diff(t1, t2))
    }

    /// Keys of entries carrying `tag` (runtime dispatch, paper §3.1).
    #[must_use]
    pub fn keys_with_tag(&self, tag: &str) -> Vec<String> {
        self.keys()
            .into_iter()
            .filter(|k| self.try_get(k).is_some_and(|e| e.tags.contains(tag)))
            .collect()
    }

    /// Deep-copy every entry into a fresh store (used by shadow execution:
    /// the shadow must not see writes from the primary, and vice versa).
    #[must_use]
    pub fn deep_clone(&self) -> PromptStore {
        let fresh = PromptStore::new();
        for key in self.keys() {
            if let Some(entry) = self.try_get(&key) {
                fresh.insert(key, entry);
            }
        }
        fresh
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(key: &str, text: &str) -> PromptStore {
        let s = PromptStore::new();
        s.define(key, text, "f_base", RefinementMode::Manual);
        s
    }

    #[test]
    fn define_get_roundtrip() {
        let s = store_with("qa_prompt", "Summarize the medication history.");
        let e = s.get("qa_prompt").unwrap();
        assert_eq!(e.version, 1);
        assert!(s.contains("qa_prompt"));
        assert!(matches!(
            s.get("missing"),
            Err(SpearError::PromptNotFound(_))
        ));
    }

    #[test]
    fn refine_persists_new_version() {
        let s = store_with("p", "base");
        let v = s
            .refine(
                "p",
                "base\nextra".into(),
                RefAction::Append,
                "f_expand",
                RefinementMode::Manual,
                1,
                None,
                BTreeMap::new(),
                None,
            )
            .unwrap();
        assert_eq!(v, 2);
        let e = s.get("p").unwrap();
        assert_eq!(e.text, "base\nextra");
        assert_eq!(e.ref_log.len(), 2);
    }

    #[test]
    fn rollback_restores_text_but_appends_history() {
        let s = store_with("p", "v1 text");
        s.refine(
            "p",
            "v2 text".into(),
            RefAction::Update,
            "f",
            RefinementMode::Auto,
            1,
            None,
            BTreeMap::new(),
            None,
        )
        .unwrap();
        let v = s.rollback("p", 1, 2).unwrap();
        assert_eq!(v, 3);
        let e = s.get("p").unwrap();
        assert_eq!(e.text, "v1 text");
        assert_eq!(e.ref_log.len(), 3, "history is append-only");
        assert_eq!(e.ref_log[2].action, RefAction::Rollback);
    }

    #[test]
    fn rollback_to_unknown_version_errors() {
        let s = store_with("p", "v1");
        assert!(matches!(
            s.rollback("p", 7, 1),
            Err(SpearError::PromptVersionNotFound { .. })
        ));
    }

    #[test]
    fn clone_entry_copies_provenance() {
        let s = store_with("src", "text");
        s.clone_entry("src", "dst").unwrap();
        let d = s.get("dst").unwrap();
        assert_eq!(d.text, "text");
        assert_eq!(d.ref_log.len(), 1);
        assert!(s.clone_entry("missing", "x").is_err());
    }

    #[test]
    fn diff_between_entries_and_versions() {
        let s = store_with("a", "shared line");
        s.define("b", "shared line\nextra", "f", RefinementMode::Manual);
        let d = s.diff("a", "b").unwrap();
        assert_eq!(d.added, 1);
        assert_eq!(d.removed, 0);

        s.refine(
            "a",
            "shared line\nmore".into(),
            RefAction::Append,
            "f",
            RefinementMode::Manual,
            1,
            None,
            BTreeMap::new(),
            None,
        )
        .unwrap();
        let dv = s.diff_versions("a", 1, 2).unwrap();
        assert_eq!(dv.added, 1);
        assert!(s.diff_versions("a", 1, 9).is_err());
    }

    #[test]
    fn tag_query() {
        let s = PromptStore::new();
        s.insert(
            "discharge",
            PromptEntry::new("t", "f", RefinementMode::Manual).with_tag("clinical"),
        );
        s.insert(
            "radiology",
            PromptEntry::new("t", "f", RefinementMode::Manual).with_tag("clinical"),
        );
        s.insert("tweet", PromptEntry::new("t", "f", RefinementMode::Manual));
        assert_eq!(s.keys_with_tag("clinical").len(), 2);
        assert!(s.keys_with_tag("nope").is_empty());
    }

    #[test]
    fn deep_clone_isolates_writes() {
        let s = store_with("p", "original");
        let shadow = s.deep_clone();
        shadow
            .refine(
                "p",
                "mutated".into(),
                RefAction::Update,
                "f",
                RefinementMode::Auto,
                1,
                None,
                BTreeMap::new(),
                None,
            )
            .unwrap();
        assert_eq!(s.get("p").unwrap().text, "original");
        assert_eq!(shadow.get("p").unwrap().text, "mutated");
    }

    #[test]
    fn backend_versioning_tracks_entry_writes() {
        let s = store_with("p", "v1");
        s.refine(
            "p",
            "v2".into(),
            RefAction::Update,
            "f",
            RefinementMode::Manual,
            1,
            None,
            BTreeMap::new(),
            None,
        )
        .unwrap();
        // Two storage-level versions of the entry exist.
        assert_eq!(s.backend().history("p").len(), 2);
    }
}
