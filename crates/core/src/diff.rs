//! Structural and semantic prompt diffs (the derived `DIFF` operator,
//! paper Table 2: "Compute structural or semantic difference between prompt
//! versions").

use serde::{Deserialize, Serialize};

/// One edit in a line-level diff.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DiffEdit {
    /// Line present in both texts.
    Keep(String),
    /// Line only in the left text.
    Remove(String),
    /// Line only in the right text.
    Add(String),
}

/// Result of diffing two prompt texts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptDiff {
    /// Line-level edit script (LCS-based), left → right.
    pub edits: Vec<DiffEdit>,
    /// Number of added lines.
    pub added: usize,
    /// Number of removed lines.
    pub removed: usize,
    /// Length (in characters) of the common prefix — the quantity prefix
    /// caching cares about.
    pub common_prefix_chars: usize,
    /// Word-level Jaccard similarity in `[0, 1]` — a cheap semantic proxy.
    pub similarity: f64,
}

impl PromptDiff {
    /// Whether the two texts were identical.
    #[must_use]
    pub fn is_identical(&self) -> bool {
        self.added == 0 && self.removed == 0
    }

    /// Unified-diff-style rendering.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.edits {
            match e {
                DiffEdit::Keep(l) => {
                    out.push_str("  ");
                    out.push_str(l);
                }
                DiffEdit::Remove(l) => {
                    out.push_str("- ");
                    out.push_str(l);
                }
                DiffEdit::Add(l) => {
                    out.push_str("+ ");
                    out.push_str(l);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Diff two prompt texts.
#[must_use]
pub fn diff(left: &str, right: &str) -> PromptDiff {
    let l_lines: Vec<&str> = left.lines().collect();
    let r_lines: Vec<&str> = right.lines().collect();
    let edits = lcs_edits(&l_lines, &r_lines);
    let added = edits
        .iter()
        .filter(|e| matches!(e, DiffEdit::Add(_)))
        .count();
    let removed = edits
        .iter()
        .filter(|e| matches!(e, DiffEdit::Remove(_)))
        .count();
    PromptDiff {
        added,
        removed,
        common_prefix_chars: common_prefix_chars(left, right),
        similarity: jaccard_words(left, right),
        edits,
    }
}

/// Length in characters of the longest common prefix (on char boundaries).
#[must_use]
pub fn common_prefix_chars(a: &str, b: &str) -> usize {
    a.chars().zip(b.chars()).take_while(|(x, y)| x == y).count()
}

/// Word-level Jaccard similarity. Tokens are lowercased alphanumeric runs.
#[must_use]
pub fn jaccard_words(a: &str, b: &str) -> f64 {
    let words = |s: &str| -> std::collections::BTreeSet<String> {
        s.split(|c: char| !c.is_alphanumeric())
            .filter(|w| !w.is_empty())
            .map(str::to_lowercase)
            .collect()
    };
    let wa = words(a);
    let wb = words(b);
    if wa.is_empty() && wb.is_empty() {
        return 1.0;
    }
    let inter = wa.intersection(&wb).count();
    let union = wa.union(&wb).count();
    inter as f64 / union as f64
}

/// Classic O(n·m) LCS edit script over lines. Prompt texts are short
/// (tens of lines), so the quadratic table is fine; the optimizer never
/// diffs documents.
fn lcs_edits(left: &[&str], right: &[&str]) -> Vec<DiffEdit> {
    let n = left.len();
    let m = right.len();
    // dp[i][j] = LCS length of left[i..] and right[j..]
    let mut dp = vec![vec![0usize; m + 1]; n + 1];
    for i in (0..n).rev() {
        for j in (0..m).rev() {
            dp[i][j] = if left[i] == right[j] {
                dp[i + 1][j + 1] + 1
            } else {
                dp[i + 1][j].max(dp[i][j + 1])
            };
        }
    }
    let mut edits = Vec::with_capacity(n + m);
    let (mut i, mut j) = (0, 0);
    while i < n && j < m {
        if left[i] == right[j] {
            edits.push(DiffEdit::Keep(left[i].to_string()));
            i += 1;
            j += 1;
        } else if dp[i + 1][j] >= dp[i][j + 1] {
            edits.push(DiffEdit::Remove(left[i].to_string()));
            i += 1;
        } else {
            edits.push(DiffEdit::Add(right[j].to_string()));
            j += 1;
        }
    }
    while i < n {
        edits.push(DiffEdit::Remove(left[i].to_string()));
        i += 1;
    }
    while j < m {
        edits.push(DiffEdit::Add(right[j].to_string()));
        j += 1;
    }
    edits
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_texts() {
        let d = diff("a\nb", "a\nb");
        assert!(d.is_identical());
        assert_eq!(d.similarity, 1.0);
        assert_eq!(d.common_prefix_chars, 3);
    }

    #[test]
    fn pure_append_is_adds_only() {
        let d = diff(
            "Summarize the notes.",
            "Summarize the notes.\nFocus on dosage.",
        );
        assert_eq!(d.removed, 0);
        assert_eq!(d.added, 1);
        assert_eq!(d.common_prefix_chars, "Summarize the notes.".len());
    }

    #[test]
    fn replacement_counts_both_sides() {
        let d = diff("old line\nshared", "new line\nshared");
        assert_eq!(d.added, 1);
        assert_eq!(d.removed, 1);
        assert!(d.similarity < 1.0 && d.similarity > 0.0);
    }

    #[test]
    fn render_marks_edits() {
        let d = diff("a\nb", "a\nc");
        let r = d.render();
        assert!(r.contains("  a"));
        assert!(r.contains("- b"));
        assert!(r.contains("+ c"));
    }

    #[test]
    fn jaccard_edges() {
        assert_eq!(jaccard_words("", ""), 1.0);
        assert_eq!(jaccard_words("a b", ""), 0.0);
        assert_eq!(jaccard_words("Dose timing", "dose TIMING"), 1.0);
        assert!((jaccard_words("a b c d", "a b") - 0.5).abs() < 1e-12);
    }

    #[test]
    fn common_prefix_is_char_safe() {
        assert_eq!(common_prefix_chars("héllo", "hénry"), 2);
        assert_eq!(common_prefix_chars("", "x"), 0);
    }

    #[test]
    fn lcs_preserves_order() {
        let d = diff("1\n2\n3\n4", "2\n4\n5");
        // LCS is {2, 4}; 1 and 3 removed; 5 added.
        assert_eq!(d.removed, 2);
        assert_eq!(d.added, 1);
        let kept: Vec<_> = d
            .edits
            .iter()
            .filter_map(|e| match e {
                DiffEdit::Keep(l) => Some(l.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(kept, vec!["2", "4"]);
    }
}
