//! Refinement functions — the `f` in `REF[action, f]` (paper §3.3, §4.1).
//!
//! A [`Refiner`] transforms a prompt entry's text, possibly informed by the
//! context C and metadata M, and "may write structured output back into C
//! for downstream steps". Refiners are stateless and registered by name in a
//! [`RefinerRegistry`]; per-application arguments arrive as a [`Value`], so
//! pipelines remain serializable data (essential for SPEAR-DL, logging, and
//! replay).
//!
//! The built-in set covers the paper's three refinement modes:
//! manual text edits (`set_text`, `append`, `prepend`, `replace`,
//! `inject_example`, `normalize`), view instantiation (`from_view`),
//! assisted LLM rewriting (`llm_rewrite`), and signal-driven automatic
//! refinement (`auto_refine`).

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::RwLock;

use crate::context::Context;
use crate::error::{Result, SpearError};
use crate::llm::{GenOptions, GenRequest, LlmClient, PromptIdentity};
use crate::metadata::Metadata;
use crate::prompt::{PromptEntry, PromptOrigin};
use crate::value::Value;
use crate::view::ViewCatalog;

/// Everything a refiner may consult.
pub struct RefineCtx<'a> {
    /// The entry being refined (`None` when the action is CREATE and the
    /// key does not exist yet).
    pub current: Option<&'a PromptEntry>,
    /// Runtime context C.
    pub context: &'a Context,
    /// Runtime metadata M.
    pub metadata: &'a Metadata,
    /// LLM backend, when the runtime has one (assisted refinement).
    pub llm: Option<&'a dyn LlmClient>,
    /// View catalog (for `from_view`).
    pub views: &'a ViewCatalog,
    /// The prompt store P (read-only here; meta-programming refiners such
    /// as `diff` consult other entries — paper §3.1 "meta programming:
    /// leveraging SPEAR's own operators to query, analyze, and refine
    /// prompts").
    pub prompts: &'a crate::store::PromptStore,
    /// Per-application arguments from the pipeline.
    pub args: &'a Value,
}

impl RefineCtx<'_> {
    /// Current text, or empty for CREATE.
    #[must_use]
    pub fn current_text(&self) -> &str {
        self.current.map_or("", |e| e.text.as_str())
    }

    fn require_current(&self, refiner: &str) -> Result<&PromptEntry> {
        self.current.ok_or_else(|| SpearError::RefinerArgs {
            refiner: refiner.to_string(),
            reason: "target prompt does not exist; use CREATE first".to_string(),
        })
    }

    fn args_str(&self, refiner: &str) -> Result<&str> {
        self.args.as_str().ok_or_else(|| SpearError::RefinerArgs {
            refiner: refiner.to_string(),
            reason: format!("expected string args, got {}", self.args),
        })
    }

    fn args_field<'v>(&'v self, refiner: &str, field: &str) -> Result<&'v Value> {
        self.args
            .as_map()
            .and_then(|m| m.get(field))
            .ok_or_else(|| SpearError::RefinerArgs {
                refiner: refiner.to_string(),
                reason: format!("missing required field {field:?} in args"),
            })
    }
}

/// Result of a refinement.
#[derive(Debug, Default)]
pub struct RefineOutput {
    /// New prompt text; `None` means the text is unchanged (a refiner may
    /// only write to context).
    pub new_text: Option<String>,
    /// Structured outputs written back into C (paper §3.2).
    pub ctx_writes: Vec<(String, Value)>,
    /// Replacement params (e.g. when instantiating from a view).
    pub params: Option<BTreeMap<String, Value>>,
    /// Replacement origin (e.g. when instantiating from a view).
    pub origin: Option<PromptOrigin>,
    /// Free-form note recorded in the ref_log.
    pub note: Option<String>,
}

impl RefineOutput {
    /// A pure text replacement.
    #[must_use]
    pub fn text(t: impl Into<String>) -> Self {
        Self {
            new_text: Some(t.into()),
            ..Self::default()
        }
    }
}

/// A refinement function.
pub trait Refiner: Send + Sync {
    /// Apply the refinement.
    ///
    /// # Errors
    ///
    /// Implementations return [`SpearError::RefinerArgs`] for invalid
    /// arguments and may propagate LLM/view errors.
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput>;
}

/// Wrap a closure as a [`Refiner`].
pub struct FnRefiner<F>(pub F);

impl<F> Refiner for FnRefiner<F>
where
    F: Fn(&RefineCtx<'_>) -> Result<RefineOutput> + Send + Sync,
{
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        (self.0)(rcx)
    }
}

// ---------------------------------------------------------------------------
// Built-in refiners
// ---------------------------------------------------------------------------

/// `set_text` — CREATE/replace the whole text with the string argument.
struct SetText;
impl Refiner for SetText {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        Ok(RefineOutput::text(rcx.args_str("set_text")?))
    }
}

/// Join two prompt fragments with a single newline, handling empty sides.
fn join_fragments(a: &str, b: &str) -> String {
    match (a.is_empty(), b.is_empty()) {
        (true, _) => b.to_string(),
        (_, true) => a.to_string(),
        _ => format!("{a}\n{b}"),
    }
}

/// `append` — add the string argument at the end (the paper's
/// `REF[APPEND, "Focus on dosage and timing of Enoxaparin."]`).
struct Append;
impl Refiner for Append {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let addition = rcx.args_str("append")?;
        let current = rcx.require_current("append")?;
        Ok(RefineOutput::text(join_fragments(&current.text, addition)))
    }
}

/// `prepend` — add the string argument at the front.
struct Prepend;
impl Refiner for Prepend {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let addition = rcx.args_str("prepend")?;
        let current = rcx.require_current("prepend")?;
        Ok(RefineOutput::text(join_fragments(addition, &current.text)))
    }
}

/// `replace` — substring replacement; args `{find, with}`.
struct Replace;
impl Refiner for Replace {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let find =
            rcx.args_field("replace", "find")?
                .as_str()
                .ok_or_else(|| SpearError::RefinerArgs {
                    refiner: "replace".into(),
                    reason: "field \"find\" must be a string".into(),
                })?;
        let with =
            rcx.args_field("replace", "with")?
                .as_str()
                .ok_or_else(|| SpearError::RefinerArgs {
                    refiner: "replace".into(),
                    reason: "field \"with\" must be a string".into(),
                })?;
        let current = rcx.require_current("replace")?;
        if !current.text.contains(find) {
            return Err(SpearError::RefinerArgs {
                refiner: "replace".into(),
                reason: format!("pattern {find:?} not found in prompt text"),
            });
        }
        Ok(RefineOutput::text(current.text.replace(find, with)))
    }
}

/// `from_view` — instantiate a view; args `{view, args?}`. This is the
/// refiner behind `REF[CREATE, f_qa_prompt("Enoxaparin")]` when the base
/// prompt comes from the catalog, and behind the derived VIEW operator.
struct FromView;
impl Refiner for FromView {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let view_name = rcx
            .args_field("from_view", "view")?
            .as_str()
            .ok_or_else(|| SpearError::RefinerArgs {
                refiner: "from_view".into(),
                reason: "field \"view\" must be a string".into(),
            })?
            .to_string();
        let view_args: BTreeMap<String, Value> = match rcx.args.as_map().and_then(|m| m.get("args"))
        {
            Some(Value::Map(m)) => m.clone(),
            Some(other) => {
                return Err(SpearError::RefinerArgs {
                    refiner: "from_view".into(),
                    reason: format!("field \"args\" must be a map, got {other}"),
                })
            }
            None => BTreeMap::new(),
        };
        let entry = rcx.views.instantiate(&view_name, view_args)?;
        Ok(RefineOutput {
            new_text: Some(entry.text),
            params: Some(entry.params),
            origin: Some(entry.origin),
            note: Some(format!("instantiated view {view_name:?}")),
            ctx_writes: Vec::new(),
        })
    }
}

/// `llm_rewrite` — assisted refinement: the LLM rewrites the prompt given a
/// high-level instruction (paper §4.1, Assisted mode). Args: instruction
/// string, or `{instruction, keep_constraints?}`.
struct LlmRewrite;
impl Refiner for LlmRewrite {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let instruction = match rcx.args {
            Value::Str(s) => s.clone(),
            Value::Map(m) => m
                .get("instruction")
                .and_then(Value::as_str)
                .ok_or_else(|| SpearError::RefinerArgs {
                    refiner: "llm_rewrite".into(),
                    reason: "missing \"instruction\"".into(),
                })?
                .to_string(),
            other => {
                return Err(SpearError::RefinerArgs {
                    refiner: "llm_rewrite".into(),
                    reason: format!("expected string or map args, got {other}"),
                })
            }
        };
        let current = rcx.require_current("llm_rewrite")?;
        let llm = rcx.llm.ok_or(SpearError::LlmUnavailable {
            requested_by: "llm_rewrite".into(),
        })?;
        let meta_prompt = format!(
            "Rewrite the following prompt. Keep its task and constraints; \
             apply this instruction: {instruction}\n--- PROMPT ---\n{}",
            current.text
        );
        let response = llm.generate(&GenRequest {
            text: meta_prompt,
            identity: PromptIdentity::Opaque,
            options: GenOptions {
                max_tokens: 512,
                temperature: 0.0,
                task: Some("rewrite_prompt".to_string()),
            },
            segments: None,
        })?;
        Ok(RefineOutput {
            new_text: Some(response.text),
            note: Some(format!("assisted rewrite: {instruction}")),
            ..RefineOutput::default()
        })
    }
}

/// The escalation ladder used by automatic refinement: each retry appends a
/// progressively stronger addition.
pub const AUTO_HINT_LADDER: [&str; 3] = [
    "Think step by step and explain your reasoning briefly.",
    "Be specific about every relevant detail (values, timing, entities) and \
     state your confidence.",
    "Example: for the input, first list the relevant facts, then derive the \
     answer strictly from those facts.",
];

/// `auto_refine` — automatic, signal-driven refinement (paper §4.1, Auto
/// mode: `f_add_hint := auto_refine(P["qa_prompt"], signal:
/// M["confidence"])`). Inspects the named signal and the retry counter and
/// appends the next hint from [`AUTO_HINT_LADDER`]. Args (all optional):
/// `{signal: "confidence"}`.
struct AutoRefine;
impl Refiner for AutoRefine {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let signal = rcx
            .args
            .as_map()
            .and_then(|m| m.get("signal"))
            .and_then(Value::as_str)
            .unwrap_or("confidence");
        let current = rcx.require_current("auto_refine")?;
        let value = rcx.metadata.get(signal);
        // Pick the next hint not already present (progressive escalation
        // across retries).
        let next = AUTO_HINT_LADDER
            .iter()
            .find(|h| !current.text.contains(**h));
        let Some(hint) = next else {
            return Err(SpearError::RefinerArgs {
                refiner: "auto_refine".into(),
                reason: "hint ladder exhausted; escalate to assisted/manual refinement".into(),
            });
        };
        let note = match value {
            Some(v) => format!("auto_refine on {signal}={v}"),
            None => format!("auto_refine (signal {signal} absent)"),
        };
        Ok(RefineOutput {
            new_text: Some(join_fragments(&current.text, hint)),
            note: Some(note),
            ..RefineOutput::default()
        })
    }
}

/// `inject_example` — append a formatted few-shot example; args
/// `{input, output}`.
struct InjectExample;
impl Refiner for InjectExample {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let input = rcx.args_field("inject_example", "input")?.render();
        let output = rcx.args_field("inject_example", "output")?.render();
        let current = rcx.require_current("inject_example")?;
        let example = format!("Example:\nInput: {input}\nOutput: {output}");
        Ok(RefineOutput::text(join_fragments(&current.text, &example)))
    }
}

/// `normalize` — trim trailing whitespace per line and collapse runs of
/// blank lines (the `f_normalize` of the paper's MAP example).
struct Normalize;
impl Refiner for Normalize {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let current = rcx.require_current("normalize")?;
        let mut out: Vec<&str> = Vec::new();
        let mut blank_run = 0usize;
        for line in current.text.lines() {
            let trimmed = line.trim_end();
            if trimmed.is_empty() {
                blank_run += 1;
                if blank_run > 1 {
                    continue;
                }
            } else {
                blank_run = 0;
            }
            out.push(trimmed);
        }
        while out.last().is_some_and(|l| l.is_empty()) {
            out.pop();
        }
        Ok(RefineOutput::text(out.join("\n")))
    }
}

/// `diff` — the derived DIFF operator (paper Table 2): computes the
/// structural/semantic difference between two prompt entries and writes the
/// result into C (the prompt text is untouched). Args: `{left, right, into?}`
/// where `left`/`right` are prompt keys and `into` defaults to `"diff"`.
struct DiffRefiner;
impl Refiner for DiffRefiner {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let left =
            rcx.args_field("diff", "left")?
                .as_str()
                .ok_or_else(|| SpearError::RefinerArgs {
                    refiner: "diff".into(),
                    reason: "field \"left\" must be a prompt key".into(),
                })?;
        let right =
            rcx.args_field("diff", "right")?
                .as_str()
                .ok_or_else(|| SpearError::RefinerArgs {
                    refiner: "diff".into(),
                    reason: "field \"right\" must be a prompt key".into(),
                })?;
        let into = rcx
            .args
            .as_map()
            .and_then(|m| m.get("into"))
            .and_then(Value::as_str)
            .unwrap_or("diff")
            .to_string();
        let d = rcx.prompts.diff(left, right)?;
        let result = crate::value::map([
            ("added", Value::from(d.added)),
            ("removed", Value::from(d.removed)),
            ("similarity", Value::from(d.similarity)),
            ("common_prefix_chars", Value::from(d.common_prefix_chars)),
            ("rendered", Value::from(d.render())),
        ]);
        Ok(RefineOutput {
            new_text: None,
            ctx_writes: vec![(into, result)],
            note: Some(format!("diff({left:?}, {right:?})")),
            ..RefineOutput::default()
        })
    }
}

/// `split_sections` — the post-processing half of GEN fusion (paper §5:
/// fused GENs "generating multiple sections from the same view" need their
/// combined output distributed back to the labels the original GENs would
/// have written). Args: `{from, into: [keys...], separator?}`. Reads
/// `C[from]`, splits on the separator (default `"\n===\n"`), and writes one
/// section per key into C; missing sections fall back to the whole text so
/// downstream operators still see *something* when a model ignores the
/// sectioning instruction. The prompt text is untouched.
struct SplitSections;
impl Refiner for SplitSections {
    fn refine(&self, rcx: &RefineCtx<'_>) -> Result<RefineOutput> {
        let from = rcx
            .args_field("split_sections", "from")?
            .as_str()
            .ok_or_else(|| SpearError::RefinerArgs {
                refiner: "split_sections".into(),
                reason: "field \"from\" must be a context key".into(),
            })?;
        let into = rcx
            .args_field("split_sections", "into")?
            .as_list()
            .ok_or_else(|| SpearError::RefinerArgs {
                refiner: "split_sections".into(),
                reason: "field \"into\" must be a list of context keys".into(),
            })?
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| SpearError::RefinerArgs {
                        refiner: "split_sections".into(),
                        reason: "every \"into\" element must be a string".into(),
                    })
            })
            .collect::<Result<Vec<String>>>()?;
        let separator = rcx
            .args
            .as_map()
            .and_then(|m| m.get("separator"))
            .and_then(Value::as_str)
            .unwrap_or("\n===\n")
            .to_string();
        let combined = rcx
            .context
            .get(from)
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or_else(|| SpearError::RefinerArgs {
                refiner: "split_sections".into(),
                reason: format!("context key {from:?} missing or not text"),
            })?;
        let mut parts = combined.split(&separator);
        let ctx_writes = into
            .iter()
            .map(|key| {
                let section = parts
                    .next()
                    .map_or_else(|| combined.trim().to_string(), |s| s.trim().to_string());
                (key.clone(), Value::from(section))
            })
            .collect();
        Ok(RefineOutput {
            new_text: None,
            ctx_writes,
            note: Some(format!("split C[{from:?}] into {} sections", into.len())),
            ..RefineOutput::default()
        })
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Named registry of refiners.
#[derive(Clone, Default)]
pub struct RefinerRegistry {
    inner: Arc<RwLock<BTreeMap<String, Arc<dyn Refiner>>>>,
}

impl RefinerRegistry {
    /// Empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registry pre-loaded with every built-in refiner.
    #[must_use]
    pub fn with_builtins() -> Self {
        let reg = Self::new();
        reg.register("set_text", Arc::new(SetText));
        reg.register("append", Arc::new(Append));
        reg.register("prepend", Arc::new(Prepend));
        reg.register("replace", Arc::new(Replace));
        reg.register("from_view", Arc::new(FromView));
        reg.register("llm_rewrite", Arc::new(LlmRewrite));
        reg.register("auto_refine", Arc::new(AutoRefine));
        reg.register("inject_example", Arc::new(InjectExample));
        reg.register("normalize", Arc::new(Normalize));
        reg.register("diff", Arc::new(DiffRefiner));
        reg.register("split_sections", Arc::new(SplitSections));
        reg
    }

    /// Register `refiner` under `name` (replacing any previous one).
    pub fn register(&self, name: impl Into<String>, refiner: Arc<dyn Refiner>) {
        self.inner.write().insert(name.into(), refiner);
    }

    /// Resolve a refiner name.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::RefinerNotFound`] when absent.
    pub fn resolve(&self, name: &str) -> Result<Arc<dyn Refiner>> {
        self.inner
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| SpearError::RefinerNotFound(name.to_string()))
    }

    /// Registered names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.inner.read().keys().cloned().collect()
    }
}

impl std::fmt::Debug for RefinerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RefinerRegistry")
            .field("refiners", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RefinementMode;
    use crate::llm::EchoLlm;
    use crate::value::map;
    use crate::view::{ParamSpec, ViewDef};

    struct Fixture {
        entry: PromptEntry,
        context: Context,
        metadata: Metadata,
        views: ViewCatalog,
        prompts: crate::store::PromptStore,
    }

    impl Fixture {
        fn new(text: &str) -> Self {
            let views = ViewCatalog::new();
            views.register(
                ViewDef::new("qa", "Answer about {{drug}}.")
                    .with_param(ParamSpec::required("drug")),
            );
            Self {
                entry: PromptEntry::new(text, "f_base", RefinementMode::Manual),
                context: Context::new(),
                metadata: Metadata::new(),
                views,
                prompts: crate::store::PromptStore::new(),
            }
        }

        fn rcx<'a>(&'a self, args: &'a Value, llm: Option<&'a dyn LlmClient>) -> RefineCtx<'a> {
            RefineCtx {
                current: Some(&self.entry),
                context: &self.context,
                metadata: &self.metadata,
                llm,
                views: &self.views,
                prompts: &self.prompts,
                args,
            }
        }
    }

    fn apply(name: &str, fx: &Fixture, args: &Value) -> Result<RefineOutput> {
        let reg = RefinerRegistry::with_builtins();
        reg.resolve(name)?.refine(&fx.rcx(args, None))
    }

    #[test]
    fn append_prepend_set_replace() {
        let fx = Fixture::new("base prompt");
        let out = apply("append", &fx, &Value::from("Focus on dosage.")).unwrap();
        assert_eq!(out.new_text.unwrap(), "base prompt\nFocus on dosage.");

        let out = apply("prepend", &fx, &Value::from("System:")).unwrap();
        assert_eq!(out.new_text.unwrap(), "System:\nbase prompt");

        let out = apply("set_text", &fx, &Value::from("fresh")).unwrap();
        assert_eq!(out.new_text.unwrap(), "fresh");

        let out = apply(
            "replace",
            &fx,
            &map([("find", Value::from("base")), ("with", Value::from("core"))]),
        )
        .unwrap();
        assert_eq!(out.new_text.unwrap(), "core prompt");
    }

    #[test]
    fn replace_missing_pattern_errors() {
        let fx = Fixture::new("text");
        let err = apply(
            "replace",
            &fx,
            &map([("find", Value::from("zzz")), ("with", Value::from("y"))]),
        )
        .unwrap_err();
        assert!(matches!(err, SpearError::RefinerArgs { .. }));
    }

    #[test]
    fn append_without_target_errors() {
        let fx = Fixture::new("ignored");
        let reg = RefinerRegistry::with_builtins();
        let args = Value::from("x");
        let rcx = RefineCtx {
            current: None,
            context: &fx.context,
            metadata: &fx.metadata,
            llm: None,
            views: &fx.views,
            prompts: &fx.prompts,
            args: &args,
        };
        assert!(reg.resolve("append").unwrap().refine(&rcx).is_err());
    }

    #[test]
    fn diff_refiner_writes_context_only() {
        let fx = Fixture::new("ignored");
        fx.prompts
            .define("a", "shared", "f", RefinementMode::Manual);
        fx.prompts
            .define("b", "shared\nextra", "f", RefinementMode::Manual);
        let out = apply(
            "diff",
            &fx,
            &map([
                ("left", Value::from("a")),
                ("right", Value::from("b")),
                ("into", Value::from("prompt_diff")),
            ]),
        )
        .unwrap();
        assert!(out.new_text.is_none());
        let (key, val) = &out.ctx_writes[0];
        assert_eq!(key, "prompt_diff");
        assert_eq!(val.path("added").unwrap().as_i64(), Some(1));
        assert_eq!(val.path("removed").unwrap().as_i64(), Some(0));
    }

    #[test]
    fn from_view_sets_text_params_origin() {
        let fx = Fixture::new("");
        let out = apply(
            "from_view",
            &fx,
            &map([
                ("view", Value::from("qa")),
                ("args", map([("drug", Value::from("Enoxaparin"))])),
            ]),
        )
        .unwrap();
        assert!(out.new_text.unwrap().contains("{{drug}}"));
        assert_eq!(
            out.params.unwrap().get("drug").unwrap().as_str(),
            Some("Enoxaparin")
        );
        assert!(matches!(out.origin, Some(PromptOrigin::View { .. })));
    }

    #[test]
    fn llm_rewrite_requires_llm_and_uses_it() {
        let fx = Fixture::new("Summarize the notes.");
        let err = apply("llm_rewrite", &fx, &Value::from("emphasize PE risk")).unwrap_err();
        assert!(matches!(err, SpearError::LlmUnavailable { .. }));

        let echo = EchoLlm::default();
        let reg = RefinerRegistry::with_builtins();
        let args = Value::from("emphasize PE risk");
        let out = reg
            .resolve("llm_rewrite")
            .unwrap()
            .refine(&fx.rcx(&args, Some(&echo)))
            .unwrap();
        assert!(out.new_text.is_some());
        assert!(out.note.unwrap().contains("PE risk"));
    }

    #[test]
    fn auto_refine_walks_the_ladder_and_exhausts() {
        let mut fx = Fixture::new("Classify the tweet.");
        fx.metadata.set("confidence", 0.4);
        let args = map([("signal", Value::from("confidence"))]);

        for expected in AUTO_HINT_LADDER {
            let out = apply("auto_refine", &fx, &args).unwrap();
            let text = out.new_text.unwrap();
            assert!(text.contains(expected), "ladder step {expected:?}");
            fx.entry.apply_refinement(
                text,
                crate::history::RefAction::Update,
                "auto_refine",
                RefinementMode::Auto,
                0,
                None,
                BTreeMap::new(),
                None,
            );
        }
        // All hints applied: next call reports exhaustion.
        assert!(apply("auto_refine", &fx, &args).is_err());
    }

    #[test]
    fn auto_refine_notes_the_signal_value() {
        let mut fx = Fixture::new("p");
        fx.metadata.set("confidence", 0.55);
        let out = apply("auto_refine", &fx, &Value::Null).unwrap();
        assert!(out.note.unwrap().contains("0.55"));
    }

    #[test]
    fn inject_example_formats_pair() {
        let fx = Fixture::new("Classify sentiment.");
        let out = apply(
            "inject_example",
            &fx,
            &map([
                ("input", Value::from("I hate rain")),
                ("output", Value::from("negative")),
            ]),
        )
        .unwrap();
        let text = out.new_text.unwrap();
        assert!(text.contains("Input: I hate rain"));
        assert!(text.contains("Output: negative"));
    }

    #[test]
    fn normalize_collapses_blank_runs() {
        let fx = Fixture::new("a  \n\n\n\nb\t\n\n");
        let out = apply("normalize", &fx, &Value::Null).unwrap();
        assert_eq!(out.new_text.unwrap(), "a\n\nb");
    }

    #[test]
    fn split_sections_distributes_fused_output() {
        let mut fx = Fixture::new("shared prompt");
        fx.context
            .set("fused", "first section\n===\nsecond section");
        let out = apply(
            "split_sections",
            &fx,
            &map([
                ("from", Value::from("fused")),
                (
                    "into",
                    Value::from(vec![Value::from("summary"), Value::from("label")]),
                ),
            ]),
        )
        .unwrap();
        assert!(out.new_text.is_none());
        assert_eq!(out.ctx_writes.len(), 2);
        assert_eq!(
            out.ctx_writes[0],
            ("summary".into(), Value::from("first section"))
        );
        assert_eq!(
            out.ctx_writes[1],
            ("label".into(), Value::from("second section"))
        );
    }

    #[test]
    fn split_sections_pads_missing_sections_with_full_text() {
        let mut fx = Fixture::new("p");
        fx.context.set("fused", "only one section came back");
        let out = apply(
            "split_sections",
            &fx,
            &map([
                ("from", Value::from("fused")),
                (
                    "into",
                    Value::from(vec![Value::from("a"), Value::from("b")]),
                ),
            ]),
        )
        .unwrap();
        assert_eq!(
            out.ctx_writes[0].1,
            Value::from("only one section came back")
        );
        assert_eq!(
            out.ctx_writes[1].1,
            Value::from("only one section came back")
        );
    }

    #[test]
    fn split_sections_error_paths() {
        let fx = Fixture::new("p");
        // Missing context key.
        assert!(apply(
            "split_sections",
            &fx,
            &map([
                ("from", Value::from("ghost")),
                ("into", Value::from(vec![Value::from("a")])),
            ]),
        )
        .is_err());
        // Malformed into list.
        assert!(apply(
            "split_sections",
            &fx,
            &map([("from", Value::from("x")), ("into", Value::from(1))]),
        )
        .is_err());
    }

    #[test]
    fn registry_listing_and_missing() {
        let reg = RefinerRegistry::with_builtins();
        assert!(reg.names().contains(&"auto_refine".to_string()));
        assert!(matches!(
            reg.resolve("ghost"),
            Err(SpearError::RefinerNotFound(_))
        ));
    }

    #[test]
    fn fn_refiner_and_ctx_writes() {
        let reg = RefinerRegistry::new();
        reg.register(
            "extractor",
            Arc::new(FnRefiner(|rcx: &RefineCtx<'_>| {
                Ok(RefineOutput {
                    new_text: None,
                    ctx_writes: vec![(
                        "prompt_len".to_string(),
                        Value::from(rcx.current_text().len()),
                    )],
                    ..RefineOutput::default()
                })
            })),
        );
        let fx = Fixture::new("12345");
        let out = reg
            .resolve("extractor")
            .unwrap()
            .refine(&fx.rcx(&Value::Null, None))
            .unwrap();
        assert!(out.new_text.is_none());
        assert_eq!(out.ctx_writes[0].1.as_i64(), Some(5));
    }
}
