//! Prompt-text templating.
//!
//! Prompt fragments in P are "possibly parameterized with variables from
//! context C" (paper §3.1). Templates use `{{name}}` placeholders that
//! resolve, in order, against (1) the entry's own parameters, (2) the
//! runtime context, with the explicit forms `{{param:name}}` and
//! `{{ctx:name}}` pinning one source. The `{{view:name}}` form is resolved
//! earlier, at view-instantiation time (see [`crate::view`]); encountering it
//! here is an error, which catches views that were never instantiated.

use std::collections::BTreeMap;

use crate::context::Context;
use crate::error::{Result, SpearError};
use crate::value::Value;

/// One parsed segment of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Literal text.
    Text(String),
    /// A `{{...}}` placeholder, with its optional `source:` prefix split off.
    Placeholder {
        /// `None` for plain `{{name}}`; `Some("ctx")`, `Some("param")`, or
        /// `Some("view")` for the prefixed forms.
        source: Option<String>,
        /// The placeholder name.
        name: String,
    },
}

/// Split a template into literal and placeholder segments.
///
/// # Errors
///
/// Returns [`SpearError::MalformedTemplate`] on an unclosed `{{`.
pub fn parse(template: &str) -> Result<Vec<Segment>> {
    let mut segments = Vec::new();
    let mut rest = template;
    while let Some(start) = rest.find("{{") {
        if !rest[..start].is_empty() {
            segments.push(Segment::Text(rest[..start].to_string()));
        }
        let after = &rest[start + 2..];
        let Some(end) = after.find("}}") else {
            return Err(SpearError::MalformedTemplate(truncate(template)));
        };
        let inner = after[..end].trim();
        if inner.is_empty() {
            return Err(SpearError::MalformedTemplate(truncate(template)));
        }
        let (source, name) = match inner.split_once(':') {
            Some((src, n)) => (Some(src.trim().to_string()), n.trim().to_string()),
            None => (None, inner.to_string()),
        };
        segments.push(Segment::Placeholder { source, name });
        rest = &after[end + 2..];
    }
    if !rest.is_empty() {
        segments.push(Segment::Text(rest.to_string()));
    }
    Ok(segments)
}

/// Names of all placeholders in `template`, in order of first appearance
/// (view references excluded — those are resolved at instantiation time).
///
/// # Errors
///
/// Propagates parse errors.
pub fn placeholders(template: &str) -> Result<Vec<String>> {
    let mut names = Vec::new();
    for seg in parse(template)? {
        if let Segment::Placeholder { source, name } = seg {
            if source.as_deref() != Some("view") && !names.contains(&name) {
                names.push(name);
            }
        }
    }
    Ok(names)
}

/// Render `template`, resolving placeholders from `params` then `context`.
///
/// # Errors
///
/// Returns [`SpearError::UnboundPlaceholder`] if a placeholder resolves
/// nowhere, and [`SpearError::MalformedTemplate`] on syntax errors.
pub fn render(
    template: &str,
    params: &BTreeMap<String, Value>,
    context: &Context,
) -> Result<String> {
    let segments = parse(template)?;
    let mut out = String::with_capacity(template.len());
    for seg in segments {
        match seg {
            Segment::Text(t) => out.push_str(&t),
            Segment::Placeholder { source, name } => {
                let resolved: Option<Value> = match source.as_deref() {
                    None => params.get(&name).cloned().or_else(|| context.get(&name)),
                    Some("param") => params.get(&name).cloned(),
                    Some("ctx") => context.get(&name),
                    Some("view") => {
                        return Err(SpearError::InvalidPipeline(format!(
                            "template still contains uninstantiated view reference \
                             {{{{view:{name}}}}}; instantiate it through the ViewCatalog"
                        )));
                    }
                    Some(other) => {
                        return Err(SpearError::MalformedTemplate(format!(
                            "unknown placeholder source {other:?} in {}",
                            truncate(template)
                        )));
                    }
                };
                match resolved {
                    Some(v) => out.push_str(&v.render()),
                    None => {
                        return Err(SpearError::UnboundPlaceholder {
                            placeholder: name,
                            template: truncate(template),
                        });
                    }
                }
            }
        }
    }
    Ok(out)
}

fn truncate(template: &str) -> String {
    const HEAD: usize = 80;
    if template.len() <= HEAD {
        template.to_string()
    } else {
        let mut end = HEAD;
        while !template.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &template[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::map;

    fn params(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn literal_passthrough() {
        let ctx = Context::new();
        assert_eq!(
            render("no placeholders here", &BTreeMap::new(), &ctx).unwrap(),
            "no placeholders here"
        );
    }

    #[test]
    fn params_take_precedence_over_context() {
        let mut ctx = Context::new();
        ctx.set("drug", Value::from("Heparin"));
        let p = params(&[("drug", Value::from("Enoxaparin"))]);
        assert_eq!(
            render("Use of {{drug}}.", &p, &ctx).unwrap(),
            "Use of Enoxaparin."
        );
        // Explicit sources override the search order.
        assert_eq!(
            render("{{ctx:drug}} vs {{param:drug}}", &p, &ctx).unwrap(),
            "Heparin vs Enoxaparin"
        );
    }

    #[test]
    fn context_fallback() {
        let mut ctx = Context::new();
        ctx.set("notes", Value::from("patient stable"));
        assert_eq!(
            render("Notes: {{notes}}", &BTreeMap::new(), &ctx).unwrap(),
            "Notes: patient stable"
        );
    }

    #[test]
    fn unbound_placeholder_is_an_error() {
        let err = render("{{missing}}", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::UnboundPlaceholder { .. }));
    }

    #[test]
    fn unclosed_brace_is_malformed() {
        let err = render("bad {{oops", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::MalformedTemplate(_)));
    }

    #[test]
    fn empty_placeholder_is_malformed() {
        assert!(matches!(
            parse("{{ }}"),
            Err(SpearError::MalformedTemplate(_))
        ));
    }

    #[test]
    fn uninstantiated_view_reference_is_caught() {
        let err = render("{{view:base}}", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::InvalidPipeline(_)));
    }

    #[test]
    fn unknown_source_prefix_is_malformed() {
        let err = render("{{env:HOME}}", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::MalformedTemplate(_)));
    }

    #[test]
    fn placeholders_lists_unique_names_in_order() {
        let names = placeholders("{{a}} {{b}} {{a}} {{ctx:c}} {{view:ignored}}").unwrap();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn compound_values_render_as_json() {
        let mut ctx = Context::new();
        ctx.set("labs", map([("d_dimer", Value::from(2.1))]));
        let s = render("Labs: {{labs}}", &BTreeMap::new(), &ctx).unwrap();
        assert!(s.contains("d_dimer"));
    }

    #[test]
    fn whitespace_inside_braces_is_tolerated() {
        let p = params(&[("x", Value::from(1))]);
        assert_eq!(
            render("{{ x }} and {{ param:x }}", &p, &Context::new()).unwrap(),
            "1 and 1"
        );
    }

    #[test]
    fn multibyte_template_truncation_is_safe() {
        let long = "é".repeat(200);
        let err = render(&format!("{long}{{{{x"), &BTreeMap::new(), &Context::new());
        assert!(err.is_err()); // must not panic on char boundaries
    }
}
