//! Prompt-text templating.
//!
//! Prompt fragments in P are "possibly parameterized with variables from
//! context C" (paper §3.1). Templates use `{{name}}` placeholders that
//! resolve, in order, against (1) the entry's own parameters, (2) the
//! runtime context, with the explicit forms `{{param:name}}` and
//! `{{ctx:name}}` pinning one source. The `{{view:name}}` form is resolved
//! earlier, at view-instantiation time (see [`crate::view`]); encountering it
//! here is an error, which catches views that were never instantiated.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use spear_kv::shard::fnv1a;

use crate::context::Context;
use crate::error::{Result, SpearError};
use crate::segment::{SegmentedText, TextSegment};
use crate::value::Value;

/// One parsed segment of a template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Segment {
    /// Literal text.
    Text(String),
    /// A `{{...}}` placeholder, with its optional `source:` prefix split off.
    Placeholder {
        /// `None` for plain `{{name}}`; `Some("ctx")`, `Some("param")`, or
        /// `Some("view")` for the prefixed forms.
        source: Option<String>,
        /// The placeholder name.
        name: String,
    },
}

/// Split a template into literal and placeholder segments.
///
/// # Errors
///
/// Returns [`SpearError::MalformedTemplate`] on an unclosed `{{`.
pub fn parse(template: &str) -> Result<Vec<Segment>> {
    let mut segments = Vec::new();
    let mut rest = template;
    while let Some(start) = rest.find("{{") {
        if !rest[..start].is_empty() {
            segments.push(Segment::Text(rest[..start].to_string()));
        }
        let after = &rest[start + 2..];
        let Some(end) = after.find("}}") else {
            return Err(SpearError::MalformedTemplate(truncate(template)));
        };
        let inner = after[..end].trim();
        if inner.is_empty() {
            return Err(SpearError::MalformedTemplate(truncate(template)));
        }
        let (source, name) = match inner.split_once(':') {
            Some((src, n)) => (Some(src.trim().to_string()), n.trim().to_string()),
            None => (None, inner.to_string()),
        };
        segments.push(Segment::Placeholder { source, name });
        rest = &after[end + 2..];
    }
    if !rest.is_empty() {
        segments.push(Segment::Text(rest.to_string()));
    }
    Ok(segments)
}

/// Names of all placeholders in `template`, in order of first appearance
/// (view references excluded — those are resolved at instantiation time).
///
/// # Errors
///
/// Propagates parse errors.
pub fn placeholders(template: &str) -> Result<Vec<String>> {
    let mut names = Vec::new();
    for seg in parse(template)? {
        if let Segment::Placeholder { source, name } = seg {
            if source.as_deref() != Some("view") && !names.contains(&name) {
                names.push(name);
            }
        }
    }
    Ok(names)
}

/// One segment of a cached parse: literals are shared, pre-hashed `Arc`s,
/// so a view prefix rendered on every request of a family is allocated and
/// hashed once per distinct template, not once per render.
#[derive(Debug)]
pub(crate) enum ParsedSegment {
    Literal {
        text: Arc<str>,
        hash: u64,
    },
    Placeholder {
        source: Option<String>,
        name: String,
    },
}

/// A template's cached parse. Shared process-wide through the parse cache
/// and pinned into compiled-program constant pools (see [`crate::vm`]).
#[derive(Debug)]
pub(crate) struct ParsedTemplate {
    segments: Vec<ParsedSegment>,
}

impl ParsedTemplate {
    /// The leading literal segment — the template's constant prefix — as
    /// the shared `Arc` and pre-computed hash [`render_segmented`] will
    /// emit for it on every render. `None` when the template opens with a
    /// placeholder (nothing constant to fold).
    pub(crate) fn leading_literal(&self) -> Option<(Arc<str>, u64)> {
        match self.segments.first() {
            Some(ParsedSegment::Literal { text, hash }) => Some((Arc::clone(text), *hash)),
            _ => None,
        }
    }
}

/// Distinct templates cached before the parse cache resets. Templates are
/// a small static population (views, store entries); the bound only guards
/// against a pathological stream of generated templates.
const PARSE_CACHE_CAPACITY: usize = 1024;

/// Parse `template`, memoized process-wide. Keyed by the full template
/// string (exact, no hash-collision exposure); parse errors are not cached.
pub(crate) fn parse_shared(template: &str) -> Result<Arc<ParsedTemplate>> {
    static CACHE: OnceLock<Mutex<HashMap<String, Arc<ParsedTemplate>>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    if let Some(parsed) = cache.lock().get(template) {
        return Ok(Arc::clone(parsed));
    }
    let segments = parse(template)?
        .into_iter()
        .map(|seg| match seg {
            Segment::Text(t) => {
                let text: Arc<str> = t.into();
                ParsedSegment::Literal {
                    hash: fnv1a(text.as_bytes()),
                    text,
                }
            }
            Segment::Placeholder { source, name } => ParsedSegment::Placeholder { source, name },
        })
        .collect();
    let parsed = Arc::new(ParsedTemplate { segments });
    let mut map = cache.lock();
    if map.len() >= PARSE_CACHE_CAPACITY {
        map.clear();
    }
    Ok(Arc::clone(
        map.entry(template.to_string()).or_insert(parsed),
    ))
}

/// Resolve one placeholder against `params` then `context`, with the same
/// error behaviour [`render`] has always had.
fn resolve_placeholder(
    template: &str,
    source: Option<&str>,
    name: &str,
    params: &BTreeMap<String, Value>,
    context: &Context,
) -> Result<Value> {
    let resolved: Option<Value> = match source {
        None => params.get(name).cloned().or_else(|| context.get(name)),
        Some("param") => params.get(name).cloned(),
        Some("ctx") => context.get(name),
        Some("view") => {
            return Err(SpearError::InvalidPipeline(format!(
                "template still contains uninstantiated view reference \
                 {{{{view:{name}}}}}; instantiate it through the ViewCatalog"
            )));
        }
        Some(other) => {
            return Err(SpearError::MalformedTemplate(format!(
                "unknown placeholder source {other:?} in {}",
                truncate(template)
            )));
        }
    };
    resolved.ok_or_else(|| SpearError::UnboundPlaceholder {
        placeholder: name.to_string(),
        template: truncate(template),
    })
}

/// Render `template`, resolving placeholders from `params` then `context`.
///
/// # Errors
///
/// Returns [`SpearError::UnboundPlaceholder`] if a placeholder resolves
/// nowhere, and [`SpearError::MalformedTemplate`] on syntax errors.
pub fn render(
    template: &str,
    params: &BTreeMap<String, Value>,
    context: &Context,
) -> Result<String> {
    let parsed = parse_shared(template)?;
    let mut out = String::with_capacity(template.len());
    for seg in &parsed.segments {
        match seg {
            ParsedSegment::Literal { text, .. } => out.push_str(text),
            ParsedSegment::Placeholder { source, name } => {
                let v = resolve_placeholder(template, source.as_deref(), name, params, context)?;
                out.push_str(&v.render());
            }
        }
    }
    Ok(out)
}

/// Render `template` as a [`SegmentedText`]: one shared, pre-hashed segment
/// per literal and one owned segment per resolved placeholder value. The
/// joined segments are byte-identical to [`render`]'s output; the segment
/// boundaries are what lets the engine recognize and memoize the shared
/// prefix (see the `spear-llm` token interner).
///
/// # Errors
///
/// Same contract as [`render`].
pub fn render_segmented(
    template: &str,
    params: &BTreeMap<String, Value>,
    context: &Context,
) -> Result<SegmentedText> {
    render_segmented_parsed(&*parse_shared(template)?, template, params, context)
}

/// [`render_segmented`] over an already-parsed template — the compiled-VM
/// fast path, which pins the `Arc<ParsedTemplate>` in its constant pool
/// and skips the parse-cache lookup per render. `template` is the source
/// text, used only for error messages.
///
/// # Errors
///
/// Same contract as [`render`].
pub(crate) fn render_segmented_parsed(
    parsed: &ParsedTemplate,
    template: &str,
    params: &BTreeMap<String, Value>,
    context: &Context,
) -> Result<SegmentedText> {
    let mut out = SegmentedText::new();
    for seg in &parsed.segments {
        match seg {
            ParsedSegment::Literal { text, hash } => {
                out.push_segment(TextSegment::from_shared(Arc::clone(text), *hash));
            }
            ParsedSegment::Placeholder { source, name } => {
                let v = resolve_placeholder(template, source.as_deref(), name, params, context)?;
                out.push(v.render());
            }
        }
    }
    Ok(out)
}

fn truncate(template: &str) -> String {
    const HEAD: usize = 80;
    if template.len() <= HEAD {
        template.to_string()
    } else {
        let mut end = HEAD;
        while !template.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &template[..end])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::map;

    fn params(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect()
    }

    #[test]
    fn literal_passthrough() {
        let ctx = Context::new();
        assert_eq!(
            render("no placeholders here", &BTreeMap::new(), &ctx).unwrap(),
            "no placeholders here"
        );
    }

    #[test]
    fn params_take_precedence_over_context() {
        let mut ctx = Context::new();
        ctx.set("drug", Value::from("Heparin"));
        let p = params(&[("drug", Value::from("Enoxaparin"))]);
        assert_eq!(
            render("Use of {{drug}}.", &p, &ctx).unwrap(),
            "Use of Enoxaparin."
        );
        // Explicit sources override the search order.
        assert_eq!(
            render("{{ctx:drug}} vs {{param:drug}}", &p, &ctx).unwrap(),
            "Heparin vs Enoxaparin"
        );
    }

    #[test]
    fn context_fallback() {
        let mut ctx = Context::new();
        ctx.set("notes", Value::from("patient stable"));
        assert_eq!(
            render("Notes: {{notes}}", &BTreeMap::new(), &ctx).unwrap(),
            "Notes: patient stable"
        );
    }

    #[test]
    fn unbound_placeholder_is_an_error() {
        let err = render("{{missing}}", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::UnboundPlaceholder { .. }));
    }

    #[test]
    fn unclosed_brace_is_malformed() {
        let err = render("bad {{oops", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::MalformedTemplate(_)));
    }

    #[test]
    fn empty_placeholder_is_malformed() {
        assert!(matches!(
            parse("{{ }}"),
            Err(SpearError::MalformedTemplate(_))
        ));
    }

    #[test]
    fn uninstantiated_view_reference_is_caught() {
        let err = render("{{view:base}}", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::InvalidPipeline(_)));
    }

    #[test]
    fn unknown_source_prefix_is_malformed() {
        let err = render("{{env:HOME}}", &BTreeMap::new(), &Context::new()).unwrap_err();
        assert!(matches!(err, SpearError::MalformedTemplate(_)));
    }

    #[test]
    fn placeholders_lists_unique_names_in_order() {
        let names = placeholders("{{a}} {{b}} {{a}} {{ctx:c}} {{view:ignored}}").unwrap();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn compound_values_render_as_json() {
        let mut ctx = Context::new();
        ctx.set("labs", map([("d_dimer", Value::from(2.1))]));
        let s = render("Labs: {{labs}}", &BTreeMap::new(), &ctx).unwrap();
        assert!(s.contains("d_dimer"));
    }

    #[test]
    fn whitespace_inside_braces_is_tolerated() {
        let p = params(&[("x", Value::from(1))]);
        assert_eq!(
            render("{{ x }} and {{ param:x }}", &p, &Context::new()).unwrap(),
            "1 and 1"
        );
    }

    #[test]
    fn segmented_render_joins_to_flat_render() {
        let mut ctx = Context::new();
        ctx.set("item", Value::from("case 7: ledger gasket"));
        let p = params(&[("limit", Value::from(50))]);
        let template = "Guidelines apply.\nItem: {{ctx:item}}\nWord limit {{param:limit}}.";
        let flat = render(template, &p, &ctx).unwrap();
        let segmented = render_segmented(template, &p, &ctx).unwrap();
        assert_eq!(segmented.join(), flat);
        assert!(segmented.len() >= 4, "literals and values alternate");
    }

    #[test]
    fn segmented_render_shares_literals_across_renders() {
        let mut ctx = Context::new();
        ctx.set("x", Value::from("a"));
        let template = "prefix that is shared {{ctx:x}} suffix";
        let a = render_segmented(template, &BTreeMap::new(), &ctx).unwrap();
        let b = render_segmented(template, &BTreeMap::new(), &ctx).unwrap();
        assert_eq!(a, b);
        assert!(
            std::ptr::eq(
                a.segments()[0].text().as_ptr(),
                b.segments()[0].text().as_ptr()
            ),
            "the literal prefix must come from the shared parse cache"
        );
    }

    #[test]
    fn segmented_render_propagates_errors_like_flat_render() {
        let ctx = Context::new();
        assert!(matches!(
            render_segmented("{{missing}}", &BTreeMap::new(), &ctx),
            Err(SpearError::UnboundPlaceholder { .. })
        ));
        assert!(matches!(
            render_segmented("bad {{oops", &BTreeMap::new(), &ctx),
            Err(SpearError::MalformedTemplate(_))
        ));
        assert!(matches!(
            render_segmented("{{view:base}}", &BTreeMap::new(), &ctx),
            Err(SpearError::InvalidPipeline(_))
        ));
    }

    #[test]
    fn multibyte_template_truncation_is_safe() {
        let long = "é".repeat(200);
        let err = render(&format!("{long}{{{{x"), &BTreeMap::new(), &Context::new());
        assert!(err.is_err()); // must not panic on char boundaries
    }
}
