//! Dynamic values shared by the execution-state triple (P, C, M).
//!
//! Prompt parameters, context entries, metadata signals, trace payloads, and
//! agent payloads are all [`Value`]s. The type is deliberately JSON-shaped so
//! structured logging and replay (paper §4.3, §6) serialize losslessly.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A dynamically typed value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
#[serde(untagged)]
pub enum Value {
    /// Absent / null.
    #[default]
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Double-precision float.
    Float(f64),
    /// UTF-8 string.
    Str(String),
    /// Ordered list.
    List(Vec<Value>),
    /// String-keyed map (ordered for deterministic serialization).
    Map(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow as `&str` if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric view: ints widen to floats.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Integer view (floats are NOT truncated; only `Int` matches).
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Boolean view.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// List view.
    #[must_use]
    pub fn as_list(&self) -> Option<&[Value]> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Map view.
    #[must_use]
    pub fn as_map(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Truthiness used by CHECK conditions: `Null` and `false` are falsy;
    /// zero numbers, empty strings/lists/maps are falsy; everything else is
    /// truthy.
    #[must_use]
    pub fn is_truthy(&self) -> bool {
        match self {
            Value::Null => false,
            Value::Bool(b) => *b,
            Value::Int(i) => *i != 0,
            Value::Float(f) => *f != 0.0,
            Value::Str(s) => !s.is_empty(),
            Value::List(l) => !l.is_empty(),
            Value::Map(m) => !m.is_empty(),
        }
    }

    /// Look up a dotted path (`"usage.tokens"`) through nested maps.
    #[must_use]
    pub fn path(&self, dotted: &str) -> Option<&Value> {
        let mut cur = self;
        for seg in dotted.split('.') {
            cur = cur.as_map()?.get(seg)?;
        }
        Some(cur)
    }

    /// Compare two values numerically or lexicographically where sensible.
    /// Cross-type numeric comparison (Int vs Float) widens to float. Returns
    /// `None` for incomparable types.
    #[must_use]
    pub fn partial_cmp_value(&self, other: &Value) -> Option<std::cmp::Ordering> {
        use Value::{Bool, Float, Int, Str};
        match (self, other) {
            (Int(a), Int(b)) => Some(a.cmp(b)),
            (Float(_) | Int(_), Float(_) | Int(_)) => self.as_f64()?.partial_cmp(&other.as_f64()?),
            (Str(a), Str(b)) => Some(a.cmp(b)),
            (Bool(a), Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }

    /// Render for interpolation into prompt text. Strings render bare (no
    /// quotes); compound values render as JSON.
    #[must_use]
    pub fn render(&self) -> String {
        match self {
            Value::Str(s) => s.clone(),
            other => other.to_string(),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::List(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Value::Map(m) => {
                f.write_str("{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{k:?}: {v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i64::from(i))
    }
}
impl From<u64> for Value {
    fn from(i: u64) -> Self {
        // Saturate rather than wrap; metadata counters never approach i64::MAX.
        Value::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<usize> for Value {
    fn from(i: usize) -> Self {
        Value::Int(i64::try_from(i).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}
impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::List(v.into_iter().map(Into::into).collect())
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        v.map_or(Value::Null, Into::into)
    }
}

/// Build a [`Value::Map`] from `(key, value)` pairs.
///
/// ```
/// use spear_core::value::{map, Value};
/// let m = map([("dose", Value::from("40 mg")), ("hours", Value::from(48))]);
/// assert_eq!(m.path("dose").unwrap().as_str(), Some("40 mg"));
/// ```
pub fn map<K: Into<String>, const N: usize>(pairs: [(K, Value); N]) -> Value {
    Value::Map(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(Value::from("x").as_str(), Some("x"));
        assert_eq!(Value::from(3).as_i64(), Some(3));
        assert_eq!(Value::from(3).as_f64(), Some(3.0));
        assert_eq!(Value::from(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::from(2.5).as_i64(), None);
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert!(Value::Null.is_null());
    }

    #[test]
    fn truthiness() {
        assert!(!Value::Null.is_truthy());
        assert!(!Value::from(false).is_truthy());
        assert!(!Value::from(0).is_truthy());
        assert!(!Value::from("").is_truthy());
        assert!(!Value::List(vec![]).is_truthy());
        assert!(Value::from(1).is_truthy());
        assert!(Value::from("x").is_truthy());
    }

    #[test]
    fn dotted_path_traverses_maps() {
        let v = map([(
            "usage",
            map([("tokens", Value::from(42)), ("cached", Value::from(7))]),
        )]);
        assert_eq!(v.path("usage.tokens").unwrap().as_i64(), Some(42));
        assert_eq!(v.path("usage.missing"), None);
        assert_eq!(v.path("nope"), None);
    }

    #[test]
    fn cross_type_numeric_comparison() {
        use std::cmp::Ordering;
        assert_eq!(
            Value::from(1).partial_cmp_value(&Value::from(1.5)),
            Some(Ordering::Less)
        );
        assert_eq!(
            Value::from(2.0).partial_cmp_value(&Value::from(2)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::from("b").partial_cmp_value(&Value::from("a")),
            Some(Ordering::Greater)
        );
        assert_eq!(Value::from("x").partial_cmp_value(&Value::from(1)), None);
    }

    #[test]
    fn render_strings_bare_but_display_quoted() {
        assert_eq!(Value::from("hi").render(), "hi");
        assert_eq!(Value::from("hi").to_string(), "\"hi\"");
        assert_eq!(Value::from(3).render(), "3");
    }

    #[test]
    fn serde_roundtrip() {
        let v = map([
            ("s", Value::from("text")),
            ("n", Value::from(1)),
            ("f", Value::from(0.5)),
            ("l", Value::from(vec![1i64, 2, 3])),
            ("nil", Value::Null),
        ]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn u64_overflow_saturates() {
        assert_eq!(Value::from(u64::MAX).as_i64(), Some(i64::MAX));
    }
}
