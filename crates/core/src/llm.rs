//! The LLM client boundary used by GEN and assisted refinement.
//!
//! `spear-core` defines the interface; `spear-llm` provides the simulated
//! inference engine with prefix caching; downstream users can plug real
//! backends. The interface's key design point is [`PromptIdentity`]: GEN
//! requests carry the *structured identity* of the prompt (view name,
//! version, parameter hash) when one exists. Backends use it to decide
//! prefix-cache registration — an opaque string has no stable identity, so
//! its prefix cannot safely be indexed and reused, which is exactly the
//! paper's argument for making prompts structured data.

use std::fmt;
use std::sync::Mutex;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::error::{Result, SpearError};
use crate::metadata::TokenUsage;

/// Identity of the prompt behind a generation request.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PromptIdentity {
    /// Ad-hoc string; not cacheable.
    #[default]
    Opaque,
    /// Structured prompt with a stable identity (see
    /// [`crate::prompt::PromptEntry::cache_identity`]).
    Structured {
        /// The identity token, e.g. `view:med_summary@2#1a2b/v3`.
        id: String,
    },
}

/// Generation options.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenOptions {
    /// Maximum tokens to decode.
    pub max_tokens: u32,
    /// Sampling temperature (the simulator treats 0.0 as fully greedy).
    pub temperature: f64,
    /// Optional task hint, e.g. `"classify"` — backends may use it to route
    /// behavioural task models; real backends ignore it.
    pub task: Option<String>,
}

impl Default for GenOptions {
    fn default() -> Self {
        Self {
            max_tokens: 256,
            temperature: 0.0,
            task: None,
        }
    }
}

/// A generation request.
#[derive(Debug, Clone, PartialEq)]
pub struct GenRequest {
    /// Fully rendered prompt text.
    pub text: String,
    /// Identity used for prefix-cache decisions.
    pub identity: PromptIdentity,
    /// Options.
    pub options: GenOptions,
    /// Optional segmented form of `text` (literal template fragments vs
    /// per-request values, each content-hashed). When present, `join()`ing
    /// the segments MUST equal `text` byte-for-byte — the renderer
    /// guarantees this. Backends may use the segment identities to memoize
    /// tokenization of shared prefixes; ignoring the field is always
    /// correct. A pure performance annotation, kept off the wire by the
    /// hand-written serde impls below.
    pub segments: Option<crate::segment::SegmentedText>,
}

impl GenRequest {
    /// An opaque request with default options.
    #[must_use]
    pub fn opaque(text: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            identity: PromptIdentity::Opaque,
            options: GenOptions::default(),
            segments: None,
        }
    }

    /// A structured request with default options.
    #[must_use]
    pub fn structured(text: impl Into<String>, id: impl Into<String>) -> Self {
        Self {
            text: text.into(),
            identity: PromptIdentity::Structured { id: id.into() },
            options: GenOptions::default(),
            segments: None,
        }
    }

    /// Attach the segmented rendering of `text` (see
    /// [`GenRequest::segments`]).
    #[must_use]
    pub fn with_segments(mut self, segments: crate::segment::SegmentedText) -> Self {
        debug_assert_eq!(segments.join(), self.text, "segments must join to text");
        self.segments = Some(segments);
        self
    }
}

// Hand-written rather than derived: `segments` is a process-local
// performance annotation and must stay off the wire — the serialized form
// is exactly the pre-segments `{text, identity, options}` shape.
impl Serialize for GenRequest {
    fn serialize_content(&self) -> serde::Content {
        serde::Content::Map(vec![
            ("text".to_string(), self.text.serialize_content()),
            ("identity".to_string(), self.identity.serialize_content()),
            ("options".to_string(), self.options.serialize_content()),
        ])
    }
}

impl Deserialize for GenRequest {
    fn deserialize_content(content: &serde::Content) -> std::result::Result<Self, serde::DeError> {
        let m = content.as_map_for("GenRequest")?;
        Ok(Self {
            text: serde::__field(m, "text")?,
            identity: serde::__field(m, "identity")?,
            options: serde::__field(m, "options")?,
            segments: None,
        })
    }
}

/// Whole-call generation-reuse policy carried by the execution state and
/// consulted by backends that implement
/// [`LlmClient::generate_with_reuse`].
///
/// Reuse is sound precisely because prompts are first-class data: two
/// requests whose rendered text, identity class, model, and decode
/// parameters are identical must produce identical [`GenResponse`]s, so
/// the backend may answer the second from a memo of the first. The policy
/// defaults to `Off` at the core layer — standalone pipeline runs keep
/// their exact historical behaviour — and the serving layer opts in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum ReusePolicy {
    /// Never consult the memo; every GEN executes end-to-end.
    #[default]
    Off,
    /// Exact-match reuse: identical (rendered prompt ⊕ identity class ⊕
    /// model ⊕ decode params) requests share one execution.
    Exact,
}

/// How a generation call interacted with the backend's reuse memo.
/// Returned by [`LlmClient::generate_with_reuse`] alongside the response
/// so callers can account for saved work without touching the response
/// itself (which stays byte-identical either way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GenReuse {
    /// The memo key derived from the request's reuse identity.
    pub key: u64,
    /// `true` when the response was adopted from a completed prior
    /// execution (memo hit or coalesced single-flight follower); `false`
    /// when this call executed the generation and seeded the memo.
    pub reused: bool,
}

/// Why decoding stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FinishReason {
    /// Natural end of generation.
    Stop,
    /// Hit `max_tokens`.
    Length,
}

/// A generation response.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenResponse {
    /// Generated text.
    pub text: String,
    /// Model self-reported confidence in `[0, 1]` (the simulator derives it
    /// from its task model; real backends may use logprobs).
    pub confidence: f64,
    /// Token accounting, including cached prefill tokens.
    pub usage: TokenUsage,
    /// (Possibly virtual) latency of the call.
    pub latency: Duration,
    /// Which model produced the response.
    pub model: String,
    /// Why decoding stopped.
    pub finish: FinishReason,
}

/// An LLM backend.
pub trait LlmClient: Send + Sync {
    /// Run one generation.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::Llm`] on backend failure.
    fn generate(&self, request: &GenRequest) -> Result<GenResponse>;

    /// Run one generation under a reuse policy.
    ///
    /// Backends with a generation memo (e.g. `spear-llm`'s `GenMemo`)
    /// override this to satisfy exact-match duplicates from one shared
    /// execution. The contract is strict: the returned response must be
    /// byte-identical to what [`LlmClient::generate`] would have produced
    /// for the same request in the same backend state — reuse may only
    /// change *host* cost, never anything observable. The default
    /// implementation ignores the policy and reports no reuse.
    ///
    /// # Errors
    ///
    /// Same contract as [`LlmClient::generate`]. Errors are never
    /// memoized.
    fn generate_with_reuse(
        &self,
        request: &GenRequest,
        policy: ReusePolicy,
    ) -> Result<(GenResponse, Option<GenReuse>)> {
        let _ = policy;
        self.generate(request).map(|response| (response, None))
    }

    /// Stable model name (used in traces and benchmark labels).
    fn model_name(&self) -> &str;
}

impl fmt::Debug for dyn LlmClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LlmClient({})", self.model_name())
    }
}

/// Trivial deterministic backend for tests and examples: echoes a digest of
/// the prompt. Confidence starts at `base_confidence` and rises by
/// `hint_bonus` when the prompt contains a reasoning hint ("step by step" or
/// "rationale"), mimicking the effect the paper's refinements target.
pub struct EchoLlm {
    /// Confidence for unrefined prompts.
    pub base_confidence: f64,
    /// Added when the prompt carries a reasoning hint.
    pub hint_bonus: f64,
}

impl Default for EchoLlm {
    fn default() -> Self {
        Self {
            base_confidence: 0.6,
            hint_bonus: 0.25,
        }
    }
}

impl LlmClient for EchoLlm {
    fn generate(&self, request: &GenRequest) -> Result<GenResponse> {
        let lower = request.text.to_lowercase();
        let hinted = lower.contains("step by step") || lower.contains("rationale");
        let confidence =
            (self.base_confidence + if hinted { self.hint_bonus } else { 0.0 }).min(1.0);
        let words: Vec<&str> = request.text.split_whitespace().collect();
        let tail: String = words
            .iter()
            .rev()
            .take(8)
            .rev()
            .copied()
            .collect::<Vec<_>>()
            .join(" ");
        let prompt_tokens = words.len() as u64;
        let text = format!("[echo:{}w] {tail}", words.len());
        Ok(GenResponse {
            confidence,
            usage: TokenUsage {
                prompt_tokens,
                cached_tokens: 0,
                completion_tokens: text.split_whitespace().count() as u64,
            },
            latency: Duration::from_micros(100 + 10 * prompt_tokens),
            model: "echo".to_string(),
            finish: FinishReason::Stop,
            text,
        })
    }

    fn model_name(&self) -> &str {
        "echo"
    }
}

/// Test backend that returns scripted responses in order, then errors.
pub struct ScriptedLlm {
    responses: Mutex<std::collections::VecDeque<GenResponse>>,
}

impl ScriptedLlm {
    /// Queue up `responses` to be returned in order.
    #[must_use]
    pub fn new(responses: Vec<GenResponse>) -> Self {
        Self {
            responses: Mutex::new(responses.into()),
        }
    }

    /// Build a minimal response with given text and confidence.
    #[must_use]
    pub fn response(text: &str, confidence: f64) -> GenResponse {
        GenResponse {
            text: text.to_string(),
            confidence,
            usage: TokenUsage {
                prompt_tokens: 10,
                cached_tokens: 0,
                completion_tokens: text.split_whitespace().count() as u64,
            },
            latency: Duration::from_millis(1),
            model: "scripted".to_string(),
            finish: FinishReason::Stop,
        }
    }
}

impl LlmClient for ScriptedLlm {
    fn generate(&self, _request: &GenRequest) -> Result<GenResponse> {
        self.responses
            .lock()
            .expect("scripted llm mutex poisoned")
            .pop_front()
            .ok_or_else(|| SpearError::Llm("scripted llm exhausted".to_string()))
    }

    fn model_name(&self) -> &str {
        "scripted"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn echo_is_deterministic() {
        let llm = EchoLlm::default();
        let a = llm
            .generate(&GenRequest::opaque("summarize the notes"))
            .unwrap();
        let b = llm
            .generate(&GenRequest::opaque("summarize the notes"))
            .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.usage.prompt_tokens, 3);
    }

    #[test]
    fn echo_confidence_responds_to_hints() {
        let llm = EchoLlm::default();
        let plain = llm.generate(&GenRequest::opaque("classify this")).unwrap();
        let hinted = llm
            .generate(&GenRequest::opaque("classify this. Think step by step."))
            .unwrap();
        assert!(hinted.confidence > plain.confidence);
    }

    #[test]
    fn scripted_plays_in_order_then_errors() {
        let llm = ScriptedLlm::new(vec![
            ScriptedLlm::response("first", 0.4),
            ScriptedLlm::response("second", 0.9),
        ]);
        let req = GenRequest::opaque("x");
        assert_eq!(llm.generate(&req).unwrap().text, "first");
        assert_eq!(llm.generate(&req).unwrap().text, "second");
        assert!(llm.generate(&req).is_err());
    }

    #[test]
    fn segments_stay_off_the_wire() {
        let req = GenRequest::structured("prefix payload", "view:v@1#0/v1")
            .with_segments(crate::segment::SegmentedText::from_text("prefix payload"));
        let json = serde_json::to_string(&req).unwrap();
        assert!(
            !json.contains("segments"),
            "serialized form must keep the pre-segments shape: {json}"
        );
        let back: GenRequest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.text, req.text);
        assert_eq!(back.identity, req.identity);
        assert_eq!(back.options, req.options);
        assert!(back.segments.is_none(), "segments are process-local");
    }

    #[test]
    fn request_constructors_set_identity() {
        assert_eq!(GenRequest::opaque("t").identity, PromptIdentity::Opaque);
        assert_eq!(
            GenRequest::structured("t", "view:v@1#0/v1").identity,
            PromptIdentity::Structured {
                id: "view:v@1#0/v1".into()
            }
        );
    }
}
