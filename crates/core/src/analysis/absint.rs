//! Abstract interpretation over compiled bytecode: sound cost envelopes.
//!
//! The IR-level [`super::passes::ResourcePass`] walks the *source* plan
//! with worst-case constants. This module re-derives the same facts — and
//! tighter ones — **below** the compiler, over the [`VmOp`] stream the VM
//! actually executes, so fusion, target patching, and (via
//! [`static_cond`]) statically-decided CHECK branches are all accounted
//! for. [`analyze`] runs a worklist fixpoint over the bytecode CFG in an
//! interval domain and returns a [`ProgramBounds`]:
//!
//! - completion-token cost `[lo, hi]` (per program and per instruction);
//! - worst-case LLM-call count `[lo, hi]`;
//! - a lower latency bound (there is no sound static *upper* bound —
//!   prompt length is request data);
//! - the KV block footprint as a function of prompt length
//!   ([`ProgramBounds::kv_blocks`]);
//! - the maximum error-unwind depth any single failure can produce.
//!
//! Soundness contract: for every execution of the program under a backend
//! respecting the [`ResourceModel`] minimums and each GEN's
//! `options.max_tokens` cap (both simulated backends do), measured usage
//! never exceeds the `hi` bounds, and a run that reaches the exit spends
//! at least the `lo` bounds. Cyclic bytecode (only reachable through
//! `compile_assuming_verified` of an unverified plan) falls back to the
//! top element `[0, ∞)` instead of iterating forever: the widening step
//! jumps straight to top once a join count exceeds the block count.
//!
//! [`BytecodePass`] packages the reachability half as an opt-in lint pass
//! emitting `SPEAR-W004` (bytecode unreachable after fusion /
//! specialization) and `SPEAR-W005` (statically-dead CHECK branch); it is
//! not in the default verifier stack, so default verification output is
//! unchanged — `explain_lowered_with_lints`, the `analyze` tool, and the
//! goldens register it explicitly.

use std::collections::VecDeque;
use std::fmt;

use crate::condition::Cond;
use crate::ops::Op;
use crate::vm::{self, ConstPool, Program, VmOp};

use super::lints::{Diagnostic, DEAD_CHECK_BRANCH, VM_UNREACHABLE};
use super::passes::{LintPass, PassContext, ResourceModel};
use super::tv;

/// A closed interval `[lo, hi]` over `u64`; `hi == u64::MAX` means
/// "unbounded" and renders as `inf`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    /// Inclusive lower bound.
    pub lo: u64,
    /// Inclusive upper bound (`u64::MAX` = unbounded).
    pub hi: u64,
}

impl Interval {
    /// The single point `[v, v]`.
    #[must_use]
    pub fn exact(v: u64) -> Self {
        Self { lo: v, hi: v }
    }

    /// The top element `[0, ∞)`.
    #[must_use]
    pub fn top() -> Self {
        Self {
            lo: 0,
            hi: u64::MAX,
        }
    }

    /// Whether `v` lies inside the interval.
    #[must_use]
    pub fn contains(&self, v: u64) -> bool {
        self.lo <= v && v <= self.hi
    }

    /// Pointwise sum (path concatenation), saturating at unbounded.
    #[must_use]
    pub fn add(&self, other: &Self) -> Self {
        Self {
            lo: self.lo.saturating_add(other.lo),
            hi: self.hi.saturating_add(other.hi),
        }
    }

    /// Least upper bound (join at a CFG merge point). Returns `true` when
    /// `self` changed.
    pub fn join(&mut self, other: &Self) -> bool {
        let before = *self;
        self.lo = self.lo.min(other.lo);
        self.hi = self.hi.max(other.hi);
        *self != before
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.hi == u64::MAX {
            write!(f, "[{}, inf]", self.lo)
        } else {
            write!(f, "[{}, {}]", self.lo, self.hi)
        }
    }
}

/// The abstract effect of one bytecode instruction (for fused
/// superinstructions, the sum of both halves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotBounds {
    /// Completion tokens this instruction generates.
    pub tokens: Interval,
    /// LLM calls this instruction performs.
    pub llm_calls: Interval,
    /// Minimum virtual latency this instruction contributes, µs.
    pub latency_lo_us: u64,
}

impl SlotBounds {
    fn zero() -> Self {
        Self {
            tokens: Interval::exact(0),
            llm_calls: Interval::exact(0),
            latency_lo_us: 0,
        }
    }

    fn add(&self, other: &Self) -> Self {
        Self {
            tokens: self.tokens.add(&other.tokens),
            llm_calls: self.llm_calls.add(&other.llm_calls),
            latency_lo_us: self.latency_lo_us.saturating_add(other.latency_lo_us),
        }
    }

    fn join(&mut self, other: &Self) -> bool {
        let t = self.tokens.join(&other.tokens);
        let c = self.llm_calls.join(&other.llm_calls);
        let before = self.latency_lo_us;
        self.latency_lo_us = self.latency_lo_us.min(other.latency_lo_us);
        t || c || before != self.latency_lo_us
    }

    fn top() -> Self {
        Self {
            tokens: Interval::top(),
            llm_calls: Interval::top(),
            latency_lo_us: 0,
        }
    }
}

/// Statically derived cost envelope of a compiled program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramBounds {
    /// Completion tokens over any complete execution.
    pub tokens: Interval,
    /// LLM calls over any complete execution.
    pub llm_calls: Interval,
    /// Minimum virtual latency of any complete execution, µs. (No sound
    /// static upper bound exists: prompt length is request data.)
    pub latency_lo_us: u64,
    /// Maximum number of `Error` trace events a single failure can emit
    /// (the failing step's own line plus one per enclosing CHECK frame).
    pub unwind_depth: u64,
    /// Whether every execution provably reaches the exit (the bytecode
    /// CFG, refined by statically-decided conditions, is acyclic).
    pub terminates: bool,
    /// Per-instruction effect bounds, indexed by code pc; `None` marks an
    /// instruction no execution can reach.
    pub per_op: Vec<Option<SlotBounds>>,
}

impl ProgramBounds {
    /// Worst-case KV block footprint of one request whose rendered context
    /// occupies `prompt_tokens` tokens, under `block_size` tokens per
    /// block: the prompt plus every token the program can decode, rounded
    /// up to whole blocks. Saturates at `u64::MAX` when decoding is
    /// statically unbounded.
    #[must_use]
    pub fn kv_blocks(&self, prompt_tokens: u64, block_size: u64) -> u64 {
        if self.tokens.hi == u64::MAX {
            return u64::MAX;
        }
        prompt_tokens
            .saturating_add(self.tokens.hi)
            .div_ceil(block_size.max(1))
    }
}

/// Statically decide a condition, `None` when it depends on `(C, M)`.
///
/// Mirrors [`Cond::eval`]'s short-circuit order exactly: `All`/`Any` are
/// decided only up to the first element that cannot be decided, so a
/// `Some(_)` verdict also implies evaluation cannot error at runtime.
#[must_use]
pub fn static_cond(cond: &Cond) -> Option<bool> {
    match cond {
        Cond::Always => Some(true),
        Cond::Never => Some(false),
        Cond::Not(inner) => static_cond(inner).map(|b| !b),
        Cond::All(parts) => {
            for p in parts {
                if !static_cond(p)? {
                    return Some(false);
                }
            }
            Some(true)
        }
        Cond::Any(parts) => {
            for p in parts {
                if static_cond(p)? {
                    return Some(true);
                }
            }
            Some(false)
        }
        Cond::Cmp { .. }
        | Cond::InContext(_)
        | Cond::NotInContext(_)
        | Cond::HasSignal(_)
        | Cond::Truthy(_) => None,
    }
}

/// Successor code indices of the instruction at `pc`, refined by
/// statically-decided conditions (a decided CHECK contributes only its
/// live edge). Indices are clamped to `code.len()` = exit.
#[must_use]
pub fn successors(code: &[VmOp], pool: &ConstPool, pc: usize) -> Vec<usize> {
    let len = code.len();
    let clamp = |t: usize| t.min(len);
    let Some(op) = code.get(pc) else {
        return Vec::new();
    };
    match *op {
        VmOp::Leaf { .. } | VmOp::RetMerge { .. } => vec![clamp(pc + 1)],
        VmOp::Jump { target } | VmOp::DelegateJump { target, .. } => vec![clamp(target as usize)],
        VmOp::Check { check, on_false }
        | VmOp::GenCheck {
            check, on_false, ..
        } => {
            let cond = pool
                .checks()
                .get(check as usize)
                .map(vm::CheckSpec::cond)
                .and_then(static_cond);
            match cond {
                Some(true) => vec![clamp(pc + 1)],
                Some(false) => vec![clamp(on_false as usize)],
                None => {
                    let a = clamp(pc + 1);
                    let b = clamp(on_false as usize);
                    if a == b {
                        vec![a]
                    } else {
                        vec![a, b]
                    }
                }
            }
        }
    }
}

/// Reachability over the refined bytecode CFG: `flags[pc]` for every
/// instruction some execution can reach (index `code.len()` is the exit).
#[must_use]
pub fn reachable(code: &[VmOp], pool: &ConstPool) -> Vec<bool> {
    let len = code.len();
    let mut seen = vec![false; len + 1];
    let mut stack = vec![0];
    while let Some(pc) = stack.pop() {
        if seen[pc] {
            continue;
        }
        seen[pc] = true;
        if pc < len {
            for succ in successors(code, pool, pc) {
                if !seen[succ] {
                    stack.push(succ);
                }
            }
        }
    }
    seen
}

/// The abstract effect of the leaf `spec` under `model`.
fn leaf_effect(spec: &vm::LeafSpec, model: &ResourceModel) -> SlotBounds {
    match spec.op() {
        Op::Gen { options, .. } => SlotBounds {
            tokens: Interval {
                lo: model.min_gen_tokens,
                hi: u64::from(options.max_tokens).max(model.min_gen_tokens),
            },
            llm_calls: Interval::exact(1),
            latency_lo_us: model.min_gen_latency_us,
        },
        _ => SlotBounds::zero(),
    }
}

/// The abstract effect of the instruction at `pc` (both halves of a fused
/// pair). Out-of-pool indices contribute nothing — the VM would panic
/// before they matter, and translation validation rejects such programs.
fn op_effect(op: VmOp, pool: &ConstPool, model: &ResourceModel) -> SlotBounds {
    let leaf = |id: u32| {
        pool.leaves()
            .get(id as usize)
            .map_or_else(SlotBounds::zero, |spec| leaf_effect(spec, model))
    };
    match op {
        VmOp::Leaf { leaf: id }
        | VmOp::GenCheck { leaf: id, .. }
        | VmOp::DelegateJump { leaf: id, .. } => leaf(id),
        VmOp::RetMerge { first, second } => leaf(first).add(&leaf(second)),
        VmOp::Check { .. } | VmOp::Jump { .. } => SlotBounds::zero(),
    }
}

/// Derive the static cost envelope of `program` under `model` by a
/// worklist fixpoint over the refined bytecode CFG, in the interval
/// domain with widening-to-top on cycles.
#[must_use]
pub fn analyze(program: &Program, model: &ResourceModel) -> ProgramBounds {
    let code = program.code();
    let pool = program.pool();
    let len = code.len();

    // Path-sum facts *before* each instruction; index `len` is the exit.
    let mut facts: Vec<Option<SlotBounds>> = vec![None; len + 1];
    facts[0] = Some(SlotBounds::zero());
    let mut joins = vec![0usize; len + 1];
    let widen_at = len + 2;
    let mut worklist: VecDeque<usize> = VecDeque::from([0]);

    while let Some(pc) = worklist.pop_front() {
        if pc >= len {
            continue;
        }
        let Some(fact) = facts[pc] else { continue };
        let out = fact.add(&op_effect(code[pc], pool, model));
        for succ in successors(code, pool, pc) {
            let changed = match &mut facts[succ] {
                Some(existing) => existing.join(&out),
                slot @ None => {
                    *slot = Some(out);
                    true
                }
            };
            if changed {
                joins[succ] += 1;
                if joins[succ] > widen_at {
                    // A join count past the block count means a cycle is
                    // feeding the fact: jump straight to top so the
                    // fixpoint terminates with sound (if loose) bounds.
                    facts[succ] = Some(SlotBounds::top());
                }
                worklist.push_back(succ);
            }
        }
    }

    let mut per_op = Vec::with_capacity(len);
    let mut unwind_depth = 0u64;
    for (pc, &op) in code.iter().enumerate() {
        if facts[pc].is_some() {
            per_op.push(Some(op_effect(op, pool, model)));
            unwind_depth = unwind_depth.max(op_unwind_depth(op, pool));
        } else {
            per_op.push(None);
        }
    }

    let (exit, terminates) = match facts[len] {
        Some(exit) => (exit, !has_reachable_cycle(code, pool, &facts)),
        None => (SlotBounds::top(), false),
    };
    ProgramBounds {
        tokens: exit.tokens,
        llm_calls: exit.llm_calls,
        latency_lo_us: if terminates { exit.latency_lo_us } else { 0 },
        unwind_depth,
        terminates,
        per_op,
    }
}

/// Deepest error unwind the instruction can emit: the failing half's own
/// trace line plus one line per enclosing CHECK frame.
fn op_unwind_depth(op: VmOp, pool: &ConstPool) -> u64 {
    let leaf = |id: u32| {
        pool.leaves()
            .get(id as usize)
            .map_or(0, |s| s.frame_ids().len() as u64 + 1)
    };
    let check = |id: u32| {
        pool.checks()
            .get(id as usize)
            .map_or(0, |s| s.frame_ids().len() as u64 + 1)
    };
    match op {
        VmOp::Leaf { leaf: id } | VmOp::DelegateJump { leaf: id, .. } => leaf(id),
        VmOp::Check { check: id, .. } => check(id),
        VmOp::GenCheck {
            leaf: l, check: c, ..
        } => leaf(l).max(check(c)),
        VmOp::RetMerge { first, second } => leaf(first).max(leaf(second)),
        VmOp::Jump { .. } => 0,
    }
}

/// DFS back-edge scan restricted to instructions the fixpoint reached.
fn has_reachable_cycle(code: &[VmOp], pool: &ConstPool, facts: &[Option<SlotBounds>]) -> bool {
    let len = code.len();
    // 0 = white, 1 = on stack, 2 = done.
    let mut color = vec![0u8; len + 1];
    // Iterative DFS with an explicit stack of (node, next-successor-index).
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for root in 0..len {
        if color[root] != 0 || facts[root].is_none() {
            continue;
        }
        stack.push((root, 0));
        color[root] = 1;
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let succs = if node < len {
                successors(code, pool, node)
            } else {
                Vec::new()
            };
            if *idx < succs.len() {
                let next = succs[*idx];
                *idx += 1;
                match color[next] {
                    1 => return true,
                    0 => {
                        color[next] = 1;
                        stack.push((next, 0));
                    }
                    _ => {}
                }
            } else {
                color[node] = 2;
                stack.pop();
            }
        }
    }
    false
}

/// Opt-in lint pass over the *compiled* plan: recompiles the source,
/// validates the translation ([`super::tv::validate_compile`] — fail
/// closed: no diagnostics from an unvalidated mapping), then reports
///
/// - `SPEAR-W004` for every source slot whose bytecode is unreachable in
///   the refined bytecode CFG even though the IR CFG considers it live
///   (dead branches under statically-decided CHECKs);
/// - `SPEAR-W005` for every reachable CHECK whose condition is statically
///   decided, i.e. one branch can never be taken.
///
/// Not part of the default verifier stack: register it with
/// [`super::Verifier::register_pass`].
pub struct BytecodePass;

impl LintPass for BytecodePass {
    fn name(&self) -> &'static str {
        "bytecode-reachability"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let Ok(program) = vm::compile_assuming_verified(cx.plan) else {
            return Vec::new();
        };
        let Ok(map) = tv::validate_compile(cx.plan, &program) else {
            return Vec::new();
        };
        let code = program.code();
        let pool = program.pool();
        let live = reachable(code, pool);
        let mut diags = Vec::new();

        for (slot, op) in cx.plan.ops.iter().enumerate() {
            let pc = map[slot] as usize;
            if pc < code.len() && !live[pc] && cx.cfg.is_reachable(slot) {
                diags.push(Diagnostic::at(
                    &VM_UNREACHABLE,
                    slot,
                    op.describe(),
                    format!(
                        "slot {slot:04} compiles to bytecode pc {pc:04}, which no execution \
                         can reach once statically-decided CHECKs are folded"
                    ),
                ));
            }
        }

        for (slot, op) in cx.plan.ops.iter().enumerate() {
            let crate::plan::LoweredOp::Check { cond, .. } = op else {
                continue;
            };
            let pc = map[slot] as usize;
            if pc >= code.len() || !live[pc] {
                continue;
            }
            if let Some(value) = static_cond(cond) {
                let (verdict, dead) = if value {
                    ("always holds", "else")
                } else {
                    ("never holds", "then")
                };
                diags.push(Diagnostic::at(
                    &DEAD_CHECK_BRANCH,
                    slot,
                    op.describe(),
                    format!("condition `{cond}` {verdict}: the {dead} branch can never be taken"),
                ));
            }
        }

        diags.sort_by_key(|d| (d.slot, d.code));
        diags
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::history::RefinementMode;
    use crate::pipeline::Pipeline;
    use crate::plan::{lower, LoweredOp, LoweredPlan};

    fn compiled(build: impl FnOnce(crate::pipeline::PipelineBuilder) -> Pipeline) -> Program {
        let p = build(Pipeline::builder("absint"));
        vm::compile(&lower(&p).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_gens_sum_exactly() {
        let prog = compiled(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .gen("a", "p")
                .gen("b", "p")
                .build()
        });
        let bounds = analyze(&prog, &ResourceModel::default());
        assert_eq!(bounds.llm_calls, Interval::exact(2));
        assert_eq!(bounds.tokens, Interval { lo: 2, hi: 512 });
        assert_eq!(bounds.latency_lo_us, 200);
        assert!(bounds.terminates);
        assert_eq!(bounds.kv_blocks(100, 16), (100u64 + 512).div_ceil(16));
    }

    #[test]
    fn branches_join_to_min_max() {
        // The conditional gen may or may not run: calls [1, 2].
        let prog = compiled(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .gen("a", "p")
                .check(Cond::low_confidence(0.5), |t| t.gen("b", "p"))
                .build()
        });
        let bounds = analyze(&prog, &ResourceModel::default());
        assert_eq!(bounds.llm_calls, Interval { lo: 1, hi: 2 });
        assert_eq!(bounds.tokens, Interval { lo: 1, hi: 512 });
        assert_eq!(bounds.latency_lo_us, 100);
    }

    #[test]
    fn static_conditions_refine_the_walk() {
        // Under `Never`, the then-gen is statically dead: exact [1, 256].
        let prog = compiled(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .gen("a", "p")
                .check(Cond::Never, |t| t.gen("dead", "p"))
                .build()
        });
        let bounds = analyze(&prog, &ResourceModel::default());
        assert_eq!(bounds.llm_calls, Interval::exact(1));
        assert_eq!(bounds.tokens, Interval { lo: 1, hi: 256 });
        // The dead gen's pc carries no fact.
        assert!(bounds.per_op.iter().any(Option::is_none));
    }

    #[test]
    fn cyclic_bytecode_falls_back_to_top() {
        let plan = LoweredPlan {
            name: "loop".into(),
            source_size: 1,
            ops: vec![LoweredOp::Jump { target: 0 }],
        };
        let prog = vm::compile_assuming_verified(&plan).unwrap();
        let bounds = analyze(&prog, &ResourceModel::default());
        assert!(!bounds.terminates);
        assert_eq!(bounds.tokens, Interval::top());
        assert_eq!(bounds.kv_blocks(10, 16), u64::MAX);
    }

    #[test]
    fn static_cond_matches_short_circuit_eval() {
        let dynamic = Cond::low_confidence(0.5);
        assert_eq!(static_cond(&Cond::Always), Some(true));
        assert_eq!(static_cond(&Cond::Never), Some(false));
        assert_eq!(static_cond(&Cond::Not(Box::new(Cond::Never))), Some(true));
        assert_eq!(static_cond(&Cond::All(vec![])), Some(true));
        assert_eq!(static_cond(&Cond::Any(vec![])), Some(false));
        // Short-circuit: a static decision *before* the dynamic part decides.
        assert_eq!(
            static_cond(&Cond::All(vec![Cond::Never, dynamic.clone()])),
            Some(false)
        );
        assert_eq!(
            static_cond(&Cond::Any(vec![Cond::Always, dynamic.clone()])),
            Some(true)
        );
        // But a dynamic prefix blocks the decision (it might error).
        assert_eq!(
            static_cond(&Cond::All(vec![dynamic.clone(), Cond::Never])),
            None
        );
        assert_eq!(static_cond(&Cond::Any(vec![dynamic, Cond::Always])), None);
    }

    #[test]
    fn unwind_depth_counts_nested_frames() {
        let prog = compiled(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .check(Cond::low_confidence(0.9), |t| {
                    t.check(Cond::low_confidence(0.8), |t2| t2.gen("g", "p"))
                })
                .build()
        });
        let bounds = analyze(&prog, &ResourceModel::default());
        // The inner gen fails under two CHECK frames: own line + 2 frames.
        assert_eq!(bounds.unwind_depth, 3);
    }

    #[test]
    fn interval_display_is_ascii() {
        assert_eq!(Interval { lo: 1, hi: 256 }.to_string(), "[1, 256]");
        assert_eq!(Interval::top().to_string(), "[0, inf]");
    }
}
