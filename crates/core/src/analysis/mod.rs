//! Static analysis over the lowered plan IR.
//!
//! Pipelines are data, so plans can be checked like query plans before a
//! single token is spent. This module is the IR-level counterpart of the
//! tree checker in [`crate::validate`] — and since PR 2 unified execution
//! behind [`crate::plan::LoweredPlan`], it is the checker that sees what
//! actually runs: optimizer-lowered physical plans with free `Jump`s,
//! DELEGATE-based filters, and fused GEN stages included.
//!
//! The pieces:
//!
//! - [`cfg`] builds an explicit control-flow graph from the slot program,
//!   rejecting malformed targets (out-of-bounds, the `usize::MAX`
//!   lowering placeholder) before anything else runs;
//! - [`dataflow`] is a small worklist fixpoint engine over that CFG;
//! - [`passes`] holds the built-in analyses — reachability/termination,
//!   prompt-key def-use (the [`crate::validate::Validator`] semantics,
//!   optimistic across CHECK branches), resource feasibility against a
//!   deadline/token budget, and affinity-key consistency across fused
//!   stages — plus the [`LintPass`] trait future passes implement;
//! - [`lints`] is the registry of stable diagnostic codes
//!   (`SPEAR-E001`…) every pass draws from;
//! - [`absint`] re-runs the analysis below the compiler: an abstract
//!   interpreter over compiled [`crate::vm::Program`] bytecode deriving
//!   sound interval bounds (tokens, LLM calls, latency floor, unwind
//!   depth, KV footprint), plus the opt-in [`BytecodePass`] surfacing
//!   `SPEAR-W004`/`SPEAR-W005`;
//! - [`tv`] is translation validation: symbolic equivalence checks of
//!   `vm::compile` output against its source plan, and of optimized
//!   bytecode against the original — the proof obligation gating
//!   [`crate::vm::optimize`].
//!
//! [`Verifier`] ties them together; [`crate::runtime::Runtime::execute`]
//! and spear-serve admission run it as a default-on gate that rejects
//! with [`crate::error::SpearError::InvalidPlan`].

pub mod absint;
pub mod cfg;
pub mod dataflow;
pub mod lints;
pub mod passes;
pub mod tv;

use std::collections::BTreeSet;

use crate::plan::LoweredPlan;
use crate::runtime::Runtime;

pub use absint::{analyze, static_cond, BytecodePass, Interval, ProgramBounds, SlotBounds};
pub use cfg::Cfg;
pub use dataflow::{fixpoint, Analysis};
pub use lints::{lint, Diagnostic, Lint, Severity, REGISTRY};
pub use passes::{
    AffinityPass, DefUsePass, LintPass, PassContext, ReachabilityPass, ResourceModel, ResourcePass,
};
pub use tv::{validate_compile, validate_optimized, TvFailure};

/// The structural checks that make a slot program safe to hand to the
/// interpreter at all: every target in bounds, no lowering placeholders,
/// no backward jumps (the termination argument). This is the subset
/// [`crate::runtime::Runtime::execute_lowered`]'s default-on gate
/// enforces — cheap, runtime-independent, and never triggered by plans
/// produced by [`crate::plan::lower`].
#[must_use]
pub fn verify_structural(plan: &LoweredPlan) -> Vec<Diagnostic> {
    match Cfg::build(plan) {
        Err(diags) => diags,
        Ok(cfg) => cfg::termination_diagnostics(plan, &cfg),
    }
}

/// The static verifier: CFG construction plus a configurable stack of
/// lint passes over it.
///
/// ```
/// use spear_core::analysis::Verifier;
/// use spear_core::pipeline::Pipeline;
/// use spear_core::plan::lower;
///
/// let plan = lower(
///     &Pipeline::builder("p")
///         .create_text("p", "base", spear_core::history::RefinementMode::Manual)
///         .gen("a", "p")
///         .build(),
/// )
/// .unwrap();
/// assert!(Verifier::new().verify(&plan).is_empty());
/// ```
pub struct Verifier<'rt> {
    runtime: Option<&'rt Runtime>,
    assumed: BTreeSet<String>,
    deadline_us: Option<u64>,
    max_tokens: Option<u64>,
    model: ResourceModel,
    extra_passes: Vec<Box<dyn LintPass>>,
}

impl Default for Verifier<'_> {
    fn default() -> Self {
        Self::new()
    }
}

impl<'rt> Verifier<'rt> {
    /// A runtime-independent verifier: structure, termination, def-use,
    /// and (when budgets are set) feasibility — but no registry checks.
    #[must_use]
    pub fn new() -> Self {
        Self {
            runtime: None,
            assumed: BTreeSet::new(),
            deadline_us: None,
            max_tokens: None,
            model: ResourceModel::default(),
            extra_passes: Vec::new(),
        }
    }

    /// Verify against `runtime`'s registries too (views, refiners,
    /// retrievers, agents, LLM availability).
    #[must_use]
    pub fn with_runtime(runtime: &'rt Runtime) -> Self {
        Self {
            runtime: Some(runtime),
            ..Self::new()
        }
    }

    /// Declare a prompt key that exists in the starting state (the IR
    /// analogue of [`crate::validate::Validator::assume_prompt`]).
    #[must_use]
    pub fn assume_prompt(mut self, key: impl Into<String>) -> Self {
        self.assumed.insert(key.into());
        self
    }

    /// Require the plan to fit a virtual deadline (µs); see
    /// [`ResourcePass`] for the cost model.
    #[must_use]
    pub fn deadline_us(mut self, deadline_us: u64) -> Self {
        self.deadline_us = Some(deadline_us);
        self
    }

    /// Require the plan to fit a completion-token budget.
    #[must_use]
    pub fn max_tokens(mut self, max_tokens: u64) -> Self {
        self.max_tokens = Some(max_tokens);
        self
    }

    /// Override the worst-case cost assumptions.
    #[must_use]
    pub fn resource_model(mut self, model: ResourceModel) -> Self {
        self.model = model;
        self
    }

    /// Register an additional lint pass, run after the built-in ones.
    #[must_use]
    pub fn register_pass(mut self, pass: Box<dyn LintPass>) -> Self {
        self.extra_passes.push(pass);
        self
    }

    /// Run every pass over `plan`. An empty result means the plan is
    /// statically sound under this verifier's configuration; any
    /// [`Diagnostic::is_error`] finding means it must not execute.
    ///
    /// Structural defects short-circuit: a plan whose targets are
    /// malformed has no meaningful CFG, so only those diagnostics are
    /// returned. Dataflow passes additionally require termination (a
    /// DAG); when backward jumps exist they are skipped — the E006
    /// errors already reject the plan.
    #[must_use]
    pub fn verify(&self, plan: &LoweredPlan) -> Vec<Diagnostic> {
        let cfg = match Cfg::build(plan) {
            Ok(cfg) => cfg,
            Err(diags) => return diags,
        };
        let cx = PassContext {
            plan,
            cfg: &cfg,
            runtime: self.runtime,
            assumed: &self.assumed,
            deadline_us: self.deadline_us,
            max_tokens: self.max_tokens,
            model: self.model,
        };
        let mut diags = ReachabilityPass.run(&cx);
        if cfg.terminates() {
            diags.extend(DefUsePass.run(&cx));
            diags.extend(ResourcePass.run(&cx));
            diags.extend(AffinityPass.run(&cx));
            for pass in &self.extra_passes {
                diags.extend(pass.run(&cx));
            }
        }
        diags
    }
}

/// Render diagnostics anchored to their plan slots, reusing the
/// `explain_lowered` instruction formatting (`  NNNN  <op>`) so verifier
/// output and plan explanations line up visually:
///
/// ```text
/// error[SPEAR-E004] in plan "bad": P["ghost"] is never created before this GEN
///   0000  GEN["answer"] using P["ghost"]
/// ```
#[must_use]
pub fn render_diagnostics(plan: &LoweredPlan, diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&format!(
            "{}[{}] in plan {:?}: {}\n",
            d.severity, d.code, plan.name, d.message
        ));
        if let Some(slot) = d.slot {
            let rendered = plan
                .ops
                .get(slot)
                .map_or_else(|| d.op.clone(), crate::plan::LoweredOp::describe);
            out.push_str(&format!("  {slot:04}  {rendered}\n"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Cond;
    use crate::history::RefinementMode;
    use crate::pipeline::Pipeline;
    use crate::plan::{lower, LoweredOp};

    fn lowered(p: &Pipeline) -> LoweredPlan {
        lower(p).expect("test pipelines lower")
    }

    #[test]
    fn sound_plans_verify_clean_without_a_runtime() {
        let p = Pipeline::builder("ok")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(
                Cond::Always,
                |b| b.expand("p", "then"),
                |b| b.expand("p", "else"),
            )
            .gen("a", "p")
            .build();
        assert_eq!(Verifier::new().verify(&lowered(&p)), vec![]);
    }

    #[test]
    fn undefined_keys_surface_as_e004_in_program_order() {
        let p = Pipeline::builder("bad")
            .gen("answer", "ghost_prompt")
            .expand("other_ghost", "text")
            .build();
        let diags = Verifier::new().verify(&lowered(&p));
        assert_eq!(diags.len(), 2);
        assert!(diags.iter().all(|d| d.code == "SPEAR-E004"));
        assert!(diags[0].message.contains("never created"));
        assert!(diags[1].message.contains("before any CREATE"));
        assert_eq!(diags[0].slot, Some(0));
        assert_eq!(diags[1].slot, Some(1));
    }

    #[test]
    fn branch_definitions_are_optimistic_on_the_ir_too() {
        let p = Pipeline::builder("branchy")
            .check_else(
                Cond::Always,
                |b| b.create_text("p", "then text", RefinementMode::Manual),
                |b| b.create_text("p", "else text", RefinementMode::Manual),
            )
            .gen("answer", "p")
            .build();
        assert_eq!(Verifier::new().verify(&lowered(&p)), vec![]);
    }

    #[test]
    fn assumed_prompts_seed_the_entry_fact() {
        let p = Pipeline::builder("pre")
            .gen("answer", "preexisting")
            .build();
        assert_eq!(Verifier::new().verify(&lowered(&p)).len(), 1);
        let diags = Verifier::new()
            .assume_prompt("preexisting")
            .verify(&lowered(&p));
        assert_eq!(diags, vec![]);
    }

    #[test]
    fn infeasible_deadlines_are_errors_and_risky_ones_warnings() {
        let must = Pipeline::builder("must")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .gen("b", "p")
            .build();
        // Two unconditional GENs at >= 100 µs each can't fit 150 µs.
        let diags = Verifier::new().deadline_us(150).verify(&lowered(&must));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SPEAR-E005");

        // A conditional second GEN *may* fit: warning, not error.
        let maybe = Pipeline::builder("maybe")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .check(Cond::low_confidence(0.5), |b| b.gen("b", "p"))
            .build();
        let diags = Verifier::new().deadline_us(150).verify(&lowered(&maybe));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SPEAR-W003");

        // A roomy deadline is clean.
        assert_eq!(
            Verifier::new().deadline_us(10_000).verify(&lowered(&must)),
            vec![]
        );
    }

    #[test]
    fn token_budgets_walk_the_same_dag() {
        let p = Pipeline::builder("tok")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .gen("b", "p")
            .build();
        let diags = Verifier::new().max_tokens(1).verify(&lowered(&p));
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SPEAR-E005");
        assert!(diags[0].message.contains("token"));
    }

    #[test]
    fn structural_defects_short_circuit() {
        let plan = LoweredPlan {
            name: "broken".into(),
            source_size: 1,
            ops: vec![LoweredOp::Jump { target: usize::MAX }],
        };
        let diags = Verifier::new().deadline_us(1).verify(&plan);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SPEAR-E003");
    }

    #[test]
    fn extra_passes_plug_in() {
        struct AlwaysWarn;
        impl LintPass for AlwaysWarn {
            fn name(&self) -> &'static str {
                "always-warn"
            }
            fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
                vec![Diagnostic::plan_level(
                    &lints::BUDGET_AT_RISK,
                    format!("custom pass saw {} slot(s)", cx.plan.ops.len()),
                )]
            }
        }
        let p = Pipeline::builder("x")
            .create_text("p", "t", RefinementMode::Manual)
            .build();
        let diags = Verifier::new()
            .register_pass(Box::new(AlwaysWarn))
            .verify(&lowered(&p));
        assert_eq!(diags.len(), 1);
        assert!(diags[0].message.contains("1 slot(s)"));
    }

    #[test]
    fn rendering_anchors_diagnostics_to_slots() {
        let p = Pipeline::builder("bad").gen("answer", "ghost").build();
        let plan = lowered(&p);
        let diags = Verifier::new().verify(&plan);
        let rendered = render_diagnostics(&plan, &diags);
        assert!(rendered.contains("error[SPEAR-E004] in plan \"bad\""));
        assert!(rendered.contains("\n  0000  GEN"));
    }
}
