//! A small forward-dataflow fixpoint engine over the plan CFG.
//!
//! Analyses describe a join-semilattice of facts: an entry fact, a
//! per-instruction transfer function, and a join that unions information
//! flowing in along multiple edges. The engine runs the classic worklist
//! iteration until the facts stop changing; analyses whose join only ever
//! grows facts drawn from a finite universe (e.g. the set of prompt keys
//! appearing in the plan) are guaranteed to converge even on cyclic
//! graphs. On the strictly-forward CFGs [`crate::plan::lower`] produces,
//! the worklist degenerates into a single in-order sweep.

use crate::plan::{LoweredOp, LoweredPlan};

use super::cfg::Cfg;

/// A forward dataflow analysis over lowered plans.
pub trait Analysis {
    /// The lattice element tracked per program point.
    type Fact: Clone;

    /// The fact holding at the plan's entry (slot 0).
    fn entry_fact(&self) -> Self::Fact;

    /// The fact after executing `op`, given the fact before it.
    fn transfer(&self, slot: usize, op: &LoweredOp, before: &Self::Fact) -> Self::Fact;

    /// Merge `from` into `into` (join). Returns whether `into` changed;
    /// the fixpoint loop re-queues a slot only when its input grew.
    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool;
}

/// Run `analysis` to fixpoint and return the fact holding *before* each
/// slot. Unreachable slots get `None` — no fact ever flows into them.
pub fn fixpoint<A: Analysis>(plan: &LoweredPlan, cfg: &Cfg, analysis: &A) -> Vec<Option<A::Fact>> {
    let len = plan.ops.len();
    let mut facts: Vec<Option<A::Fact>> = vec![None; len];
    if len == 0 {
        return facts;
    }
    facts[0] = Some(analysis.entry_fact());
    let mut worklist = vec![0usize];
    while let Some(slot) = worklist.pop() {
        let before = match &facts[slot] {
            Some(f) => f.clone(),
            None => continue,
        };
        let after = analysis.transfer(slot, &plan.ops[slot], &before);
        for &succ in cfg.succs(slot) {
            if succ >= len {
                continue; // the exit node holds no fact
            }
            let changed = match &mut facts[succ] {
                Some(existing) => analysis.join(existing, &after),
                empty @ None => {
                    *empty = Some(after.clone());
                    true
                }
            };
            if changed {
                worklist.push(succ);
            }
        }
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    /// Toy analysis: which prompt keys REF-style leaves have defined.
    /// Mirrors the shape of the real def-use pass with a trivial lattice.
    struct Defined;

    impl Analysis for Defined {
        type Fact = BTreeSet<usize>;

        fn entry_fact(&self) -> Self::Fact {
            BTreeSet::new()
        }

        fn transfer(&self, slot: usize, _op: &LoweredOp, before: &Self::Fact) -> Self::Fact {
            let mut out = before.clone();
            out.insert(slot);
            out
        }

        fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
            let before = into.len();
            into.extend(from.iter().copied());
            into.len() != before
        }
    }

    #[test]
    fn facts_union_at_join_points() {
        use crate::condition::Cond;
        use crate::history::RefinementMode;
        use crate::pipeline::Pipeline;
        use crate::plan::lower;

        // create, check, then-expand, jump, else-expand, gen
        let p = Pipeline::builder("j")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(
                Cond::Always,
                |b| b.expand("p", "then"),
                |b| b.expand("p", "else"),
            )
            .gen("a", "p")
            .build();
        let plan = lower(&p).expect("lowers");
        let cfg = Cfg::build(&plan).expect("valid");
        let facts = fixpoint(&plan, &cfg, &Defined);

        // The trailing gen (slot 5) is reached from both branches, so its
        // input fact contains the then-slot (2) and the else-slot (4).
        let at_gen = facts[5].as_ref().expect("reachable");
        assert!(at_gen.contains(&2) && at_gen.contains(&4));
        // The else branch's input does NOT contain the then slot.
        let at_else = facts[4].as_ref().expect("reachable");
        assert!(!at_else.contains(&2));
    }

    #[test]
    fn unreachable_slots_have_no_fact() {
        use crate::plan::{LoweredOp, LoweredPlan};
        let plan = LoweredPlan {
            name: "dead".into(),
            source_size: 0,
            ops: vec![
                LoweredOp::Jump { target: 2 },
                LoweredOp::Jump { target: 2 },
                LoweredOp::Jump { target: 3 },
            ],
        };
        let cfg = Cfg::build(&plan).expect("valid");
        let facts = fixpoint(&plan, &cfg, &Defined);
        assert!(facts[0].is_some());
        assert!(facts[1].is_none());
        assert!(facts[2].is_some());
    }
}
