//! Translation validation: symbolic equivalence of compiled bytecode.
//!
//! `vm::compile` is trusted nowhere else in the stack — this module checks
//! each compilation *output* against its *input* instead of trusting the
//! compiler's implementation:
//!
//! - [`validate_compile`] re-walks the source [`LoweredPlan`] in lockstep
//!   with the emitted [`VmOp`] stream and proves op-for-op effect
//!   equivalence: every leaf/check spec must carry exactly the operator,
//!   describe string, `CHECK[...]` label, trigger, and unwind frames the
//!   interpreter would derive from the source slot; every fused
//!   superinstruction must cover an adjacent pair whose second half is not
//!   a branch target (fusing a landing pad would skip the first half); and
//!   every patched target must land on the code index of its source
//!   target. On success it returns the source-slot → code-pc map the
//!   bytecode lints and the disassembler annotations key off.
//! - [`validate_optimized`] proves an optimized program equivalent to the
//!   original by a product walk over jump-resolved positions: free `Jump`s
//!   are invisible to traces and budgets, so two programs are equivalent
//!   iff the observable instruction at every co-reachable position pair
//!   matches content-wise and their successors stay paired — refined by
//!   [`super::absint::static_cond`], which is what licenses dead-branch
//!   elimination under statically-decided CHECKs.
//!
//! Both validators are fail-closed like `verify_structural`: any
//! obligation that cannot be discharged is a [`TvFailure`], and callers
//! (the optimizer, the `analyze` tool) treat failure as "keep the
//! unoptimized artifact", never "assume it is fine".

use std::collections::HashSet;
use std::fmt;

use crate::condition::Cond;
use crate::plan::{LoweredOp, LoweredPlan};
use crate::vm::{CheckSpec, ConstPool, LeafSpec, Program, VmOp};

use super::absint::static_cond;

/// One undischarged proof obligation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TvFailure {
    /// Source slot the obligation anchors to, when known.
    pub src_slot: Option<usize>,
    /// Code pc the obligation anchors to, when known.
    pub code_pc: Option<usize>,
    /// What could not be proven.
    pub message: String,
}

impl TvFailure {
    fn at(src_slot: Option<usize>, code_pc: Option<usize>, message: impl Into<String>) -> Self {
        Self {
            src_slot,
            code_pc,
            message: message.into(),
        }
    }
}

impl fmt::Display for TvFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "translation validation failed")?;
        if let Some(slot) = self.src_slot {
            write!(f, " at source slot {slot:04}")?;
        }
        if let Some(pc) = self.code_pc {
            write!(f, " (code pc {pc:04})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// Compare a compiled leaf spec against the source leaf it claims to
/// implement, content-wise (pool indices are an implementation detail).
fn leaf_matches(
    pool: &ConstPool,
    spec: &LeafSpec,
    op: &crate::ops::Op,
    trigger: Option<&str>,
    frames: &[String],
) -> Result<(), String> {
    if spec.op() != op {
        return Err(format!(
            "compiled operator {:?} differs from source operator {:?}",
            spec.op().describe(),
            op.describe()
        ));
    }
    if pool.str(spec.describe_id()) != op.describe() {
        return Err("pooled describe string differs from the operator's describe()".into());
    }
    let spec_trigger = spec.trigger_id().map(|id| pool.str(id));
    if spec_trigger != trigger {
        return Err(format!(
            "pooled trigger {spec_trigger:?} differs from source trigger {trigger:?}"
        ));
    }
    let spec_frames: Vec<&str> = spec.frame_ids().iter().map(|&id| pool.str(id)).collect();
    if spec_frames.len() != frames.len() || spec_frames.iter().zip(frames).any(|(a, b)| a != b) {
        return Err(format!(
            "pooled unwind frames {spec_frames:?} differ from source frames {frames:?}"
        ));
    }
    Ok(())
}

/// Compare a compiled check spec against its source condition.
fn check_matches(
    pool: &ConstPool,
    spec: &CheckSpec,
    cond: &Cond,
    frames: &[String],
) -> Result<(), String> {
    if spec.cond() != cond {
        return Err(format!(
            "compiled condition `{}` differs from source condition `{cond}`",
            spec.cond()
        ));
    }
    let label = format!("CHECK[{cond}]");
    if pool.str(spec.label_id()) != label {
        return Err(format!(
            "pooled label {:?} differs from {label:?}",
            pool.str(spec.label_id())
        ));
    }
    let spec_frames: Vec<&str> = spec.frame_ids().iter().map(|&id| pool.str(id)).collect();
    if spec_frames.len() != frames.len() || spec_frames.iter().zip(frames).any(|(a, b)| a != b) {
        return Err(format!(
            "pooled unwind frames {spec_frames:?} differ from source frames {frames:?}"
        ));
    }
    Ok(())
}

fn leaf_spec(pool: &ConstPool, id: u32, pc: usize) -> Result<&LeafSpec, TvFailure> {
    pool.leaves()
        .get(id as usize)
        .ok_or_else(|| TvFailure::at(None, Some(pc), format!("leaf index l{id} escapes the pool")))
}

fn check_spec(pool: &ConstPool, id: u32, pc: usize) -> Result<&CheckSpec, TvFailure> {
    pool.checks().get(id as usize).ok_or_else(|| {
        TvFailure::at(
            None,
            Some(pc),
            format!("check index c{id} escapes the pool"),
        )
    })
}

/// Symbolically validate that `program` is an effect-equivalent
/// compilation of `plan`. On success, returns the source-slot → code-pc
/// map (length `plan.ops.len() + 1`; both halves of a fused pair map to
/// the same pc, and index `n` maps to `code.len()` = exit).
///
/// # Errors
///
/// Returns every undischarged obligation. Structural desynchronization
/// (an opcode that cannot cover the source slot at the cursor) aborts the
/// walk, since later comparisons would be meaningless.
pub fn validate_compile(plan: &LoweredPlan, program: &Program) -> Result<Vec<u32>, Vec<TvFailure>> {
    let n = plan.ops.len();
    let code = program.code();
    let pool = program.pool();
    let mut failures = Vec::new();

    if program.name() != plan.name {
        failures.push(TvFailure::at(
            None,
            None,
            format!(
                "program name {:?} differs from plan name {:?}",
                program.name(),
                plan.name
            ),
        ));
    }
    if program.source_size() != plan.source_size {
        failures.push(TvFailure::at(
            None,
            None,
            "program source_size differs from the plan's",
        ));
    }

    // Independent branch-target map: the second half of a fused pair must
    // not be a jump landing pad, or the fused form would skip the first
    // half for executions entering at the second.
    let mut is_target = vec![false; n + 1];
    for op in &plan.ops {
        match op {
            LoweredOp::Check { on_false, .. } => is_target[(*on_false).min(n)] = true,
            LoweredOp::Jump { target } => is_target[(*target).min(n)] = true,
            LoweredOp::Leaf { .. } => {}
        }
    }

    // Lockstep walk. Targets are checked after the full map exists.
    let mut map = vec![0u32; n + 1];
    // (code pc, compiled target, source target) obligations.
    let mut targets: Vec<(usize, u32, usize)> = Vec::new();
    let mut s = 0usize;

    macro_rules! desync {
        ($pc:expr, $($msg:tt)*) => {{
            failures.push(TvFailure::at(Some(s.min(n)), Some($pc), format!($($msg)*)));
            return Err(failures);
        }};
    }

    for (pc, &instr) in code.iter().enumerate() {
        if s >= n {
            desync!(pc, "code continues past the end of the source plan");
        }
        map[s] = pc as u32;
        let fused = match instr {
            VmOp::Leaf { leaf } => {
                let spec = leaf_spec(pool, leaf, pc).map_err(|f| {
                    failures.push(f);
                    std::mem::take(&mut failures)
                })?;
                match &plan.ops[s] {
                    LoweredOp::Leaf {
                        op,
                        trigger,
                        frames,
                    } => {
                        if let Err(msg) = leaf_matches(pool, spec, op, trigger.as_deref(), frames) {
                            failures.push(TvFailure::at(Some(s), Some(pc), msg));
                        }
                    }
                    other => desync!(
                        pc,
                        "LEAF compiled from non-leaf source {:?}",
                        other.describe()
                    ),
                }
                false
            }
            VmOp::Check { check, on_false } => {
                let spec = check_spec(pool, check, pc).map_err(|f| {
                    failures.push(f);
                    std::mem::take(&mut failures)
                })?;
                match &plan.ops[s] {
                    LoweredOp::Check {
                        cond,
                        on_false: src_target,
                        frames,
                    } => {
                        if let Err(msg) = check_matches(pool, spec, cond, frames) {
                            failures.push(TvFailure::at(Some(s), Some(pc), msg));
                        }
                        targets.push((pc, on_false, *src_target));
                    }
                    other => desync!(
                        pc,
                        "CHECK compiled from non-check source {:?}",
                        other.describe()
                    ),
                }
                false
            }
            VmOp::Jump { target } => {
                match &plan.ops[s] {
                    LoweredOp::Jump { target: src_target } => {
                        targets.push((pc, target, *src_target));
                    }
                    other => desync!(
                        pc,
                        "JUMP compiled from non-jump source {:?}",
                        other.describe()
                    ),
                }
                false
            }
            VmOp::GenCheck {
                leaf,
                check,
                on_false,
            } => {
                let lspec = leaf_spec(pool, leaf, pc).map_err(|f| {
                    failures.push(f);
                    std::mem::take(&mut failures)
                })?;
                let cspec = check_spec(pool, check, pc).map_err(|f| {
                    failures.push(f);
                    std::mem::take(&mut failures)
                })?;
                match (plan.ops.get(s), plan.ops.get(s + 1)) {
                    (
                        Some(LoweredOp::Leaf {
                            op: op @ crate::ops::Op::Gen { .. },
                            trigger,
                            frames,
                        }),
                        Some(LoweredOp::Check {
                            cond,
                            on_false: src_target,
                            frames: check_frames,
                        }),
                    ) => {
                        if let Err(msg) = leaf_matches(pool, lspec, op, trigger.as_deref(), frames)
                        {
                            failures.push(TvFailure::at(Some(s), Some(pc), msg));
                        }
                        if let Err(msg) = check_matches(pool, cspec, cond, check_frames) {
                            failures.push(TvFailure::at(Some(s + 1), Some(pc), msg));
                        }
                        targets.push((pc, on_false, *src_target));
                    }
                    _ => desync!(
                        pc,
                        "GEN+CHECK does not cover a GEN leaf followed by a CHECK"
                    ),
                }
                true
            }
            VmOp::DelegateJump { leaf, target } => {
                let spec = leaf_spec(pool, leaf, pc).map_err(|f| {
                    failures.push(f);
                    std::mem::take(&mut failures)
                })?;
                match (plan.ops.get(s), plan.ops.get(s + 1)) {
                    (
                        Some(LoweredOp::Leaf {
                            op: op @ crate::ops::Op::Delegate { .. },
                            trigger,
                            frames,
                        }),
                        Some(LoweredOp::Jump { target: src_target }),
                    ) => {
                        if let Err(msg) = leaf_matches(pool, spec, op, trigger.as_deref(), frames) {
                            failures.push(TvFailure::at(Some(s), Some(pc), msg));
                        }
                        targets.push((pc, target, *src_target));
                    }
                    _ => desync!(
                        pc,
                        "DELEGATE+JUMP does not cover a DELEGATE leaf followed by a JUMP"
                    ),
                }
                true
            }
            VmOp::RetMerge { first, second } => {
                let fspec = leaf_spec(pool, first, pc).map_err(|f| {
                    failures.push(f);
                    std::mem::take(&mut failures)
                })?;
                let sspec = leaf_spec(pool, second, pc).map_err(|f| {
                    failures.push(f);
                    std::mem::take(&mut failures)
                })?;
                match (plan.ops.get(s), plan.ops.get(s + 1)) {
                    (
                        Some(LoweredOp::Leaf {
                            op: ret @ crate::ops::Op::Ret { .. },
                            trigger,
                            frames,
                        }),
                        Some(LoweredOp::Leaf {
                            op: merge @ crate::ops::Op::Merge { .. },
                            trigger: merge_trigger,
                            frames: merge_frames,
                        }),
                    ) => {
                        if let Err(msg) = leaf_matches(pool, fspec, ret, trigger.as_deref(), frames)
                        {
                            failures.push(TvFailure::at(Some(s), Some(pc), msg));
                        }
                        if let Err(msg) =
                            leaf_matches(pool, sspec, merge, merge_trigger.as_deref(), merge_frames)
                        {
                            failures.push(TvFailure::at(Some(s + 1), Some(pc), msg));
                        }
                    }
                    _ => desync!(
                        pc,
                        "RET+MERGE does not cover a RET leaf followed by a MERGE leaf"
                    ),
                }
                true
            }
        };
        if fused {
            if s + 1 >= n || is_target[s + 1] {
                failures.push(TvFailure::at(
                    Some(s),
                    Some(pc),
                    "illegal fusion: the second half is a branch target (landing pad)",
                ));
            }
            if s < n {
                map[s + 1] = pc as u32;
            }
            s += 2;
        } else {
            s += 1;
        }
    }
    if s != n {
        failures.push(TvFailure::at(
            Some(s.min(n)),
            Some(code.len()),
            "source plan continues past the end of the code",
        ));
        return Err(failures);
    }
    map[n] = code.len() as u32;

    for (pc, compiled, src_target) in targets {
        let expected = map[src_target.min(n)];
        if compiled != expected {
            failures.push(TvFailure::at(
                None,
                Some(pc),
                format!(
                    "patched target {compiled:04} does not land on source target {src_target} \
                     (expected code pc {expected:04})"
                ),
            ));
        }
    }

    if failures.is_empty() {
        Ok(map)
    } else {
        Err(failures)
    }
}

/// Resolve `pc` through chains of free `Jump`s to the first observable
/// instruction (or the exit, `code.len()`). `None` on a jump-only cycle.
fn resolve(code: &[VmOp], mut pc: usize) -> Option<usize> {
    let len = code.len();
    let mut hops = 0usize;
    loop {
        pc = pc.min(len);
        match code.get(pc) {
            Some(VmOp::Jump { target }) => {
                pc = *target as usize;
                hops += 1;
                if hops > len {
                    return None;
                }
            }
            _ => return Some(pc),
        }
    }
}

/// Observable equality of the instructions at `(pa, pb)`, content-wise
/// across the two pools. Both indices are jump-resolved and in range.
fn obs_eq(a: &Program, b: &Program, pa: usize, pb: usize) -> Result<(), String> {
    let (pl, ql) = (a.pool(), b.pool());
    let leaf_eq = |ia: u32, ib: u32| -> Result<(), String> {
        let (sa, sb) = match (pl.leaves().get(ia as usize), ql.leaves().get(ib as usize)) {
            (Some(sa), Some(sb)) => (sa, sb),
            _ => return Err("leaf index escapes the pool".into()),
        };
        if sa.op() != sb.op()
            || pl.str(sa.describe_id()) != ql.str(sb.describe_id())
            || sa.trigger_id().map(|id| pl.str(id)) != sb.trigger_id().map(|id| ql.str(id))
            || sa.frame_ids().len() != sb.frame_ids().len()
            || sa
                .frame_ids()
                .iter()
                .zip(sb.frame_ids())
                .any(|(&x, &y)| pl.str(x) != ql.str(y))
        {
            return Err("leaf specs differ".into());
        }
        Ok(())
    };
    let check_eq = |ia: u32, ib: u32| -> Result<(), String> {
        let (sa, sb) = match (pl.checks().get(ia as usize), ql.checks().get(ib as usize)) {
            (Some(sa), Some(sb)) => (sa, sb),
            _ => return Err("check index escapes the pool".into()),
        };
        if sa.cond() != sb.cond()
            || pl.str(sa.label_id()) != ql.str(sb.label_id())
            || sa.frame_ids().len() != sb.frame_ids().len()
            || sa
                .frame_ids()
                .iter()
                .zip(sb.frame_ids())
                .any(|(&x, &y)| pl.str(x) != ql.str(y))
        {
            return Err("check specs differ".into());
        }
        Ok(())
    };
    match (a.code()[pa], b.code()[pb]) {
        (VmOp::Leaf { leaf: la }, VmOp::Leaf { leaf: lb }) => leaf_eq(la, lb),
        (VmOp::Check { check: ca, .. }, VmOp::Check { check: cb, .. }) => check_eq(ca, cb),
        (
            VmOp::GenCheck {
                leaf: la,
                check: ca,
                ..
            },
            VmOp::GenCheck {
                leaf: lb,
                check: cb,
                ..
            },
        ) => leaf_eq(la, lb).and_then(|()| check_eq(ca, cb)),
        (VmOp::DelegateJump { leaf: la, .. }, VmOp::DelegateJump { leaf: lb, .. }) => {
            leaf_eq(la, lb)
        }
        (
            VmOp::RetMerge {
                first: fa,
                second: sa,
            },
            VmOp::RetMerge {
                first: fb,
                second: sb,
            },
        ) => leaf_eq(fa, fb).and_then(|()| leaf_eq(sa, sb)),
        (oa, ob) => Err(format!("instruction shapes differ: {oa:?} vs {ob:?}")),
    }
}

/// Prove `optimized` trace- and budget-equivalent to `original` by a
/// cond-refined product walk over jump-resolved positions.
///
/// # Errors
///
/// Returns the failed obligations; callers must then discard the
/// optimized program.
pub fn validate_optimized(original: &Program, optimized: &Program) -> Result<(), Vec<TvFailure>> {
    let mut failures = Vec::new();
    if original.name() != optimized.name() || original.source_size() != optimized.source_size() {
        failures.push(TvFailure::at(
            None,
            None,
            "optimized program changes the plan's trace identity (name/source size)",
        ));
        return Err(failures);
    }
    let (ca, cb) = (original.code(), optimized.code());
    let (start_a, start_b) = match (resolve(ca, 0), resolve(cb, 0)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            failures.push(TvFailure::at(None, Some(0), "jump-only cycle at entry"));
            return Err(failures);
        }
    };
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    let mut work = vec![(start_a, start_b)];
    while let Some((pa, pb)) = work.pop() {
        if !seen.insert((pa, pb)) {
            continue;
        }
        let (exit_a, exit_b) = (pa >= ca.len(), pb >= cb.len());
        if exit_a || exit_b {
            if exit_a != exit_b {
                failures.push(TvFailure::at(
                    None,
                    Some(if exit_a { pb } else { pa }),
                    "one program halts where the other continues",
                ));
            }
            continue;
        }
        if let Err(msg) = obs_eq(original, optimized, pa, pb) {
            failures.push(TvFailure::at(None, Some(pa), msg));
            continue;
        }
        // Paired successors. `obs_eq` guarantees matching shapes.
        let mut push_pair = |na: usize, nb: usize, failures: &mut Vec<TvFailure>| match (
            resolve(ca, na),
            resolve(cb, nb),
        ) {
            (Some(a), Some(b)) => work.push((a, b)),
            _ => failures.push(TvFailure::at(None, Some(na), "jump-only cycle")),
        };
        match (ca[pa], cb[pb]) {
            (VmOp::Leaf { .. }, _) | (VmOp::RetMerge { .. }, _) => {
                push_pair(pa + 1, pb + 1, &mut failures);
            }
            (VmOp::DelegateJump { target: ta, .. }, VmOp::DelegateJump { target: tb, .. }) => {
                push_pair(ta as usize, tb as usize, &mut failures);
            }
            (
                VmOp::Check {
                    check,
                    on_false: fa,
                },
                VmOp::Check { on_false: fb, .. },
            )
            | (
                VmOp::GenCheck {
                    check,
                    on_false: fa,
                    ..
                },
                VmOp::GenCheck { on_false: fb, .. },
            ) => {
                let decided = original
                    .pool()
                    .checks()
                    .get(check as usize)
                    .map(CheckSpec::cond)
                    .and_then(static_cond);
                match decided {
                    Some(true) => push_pair(pa + 1, pb + 1, &mut failures),
                    Some(false) => push_pair(fa as usize, fb as usize, &mut failures),
                    None => {
                        push_pair(pa + 1, pb + 1, &mut failures);
                        push_pair(fa as usize, fb as usize, &mut failures);
                    }
                }
            }
            // Unreachable: obs_eq rejected mismatched shapes, and resolve
            // never lands on a Jump.
            _ => failures.push(TvFailure::at(
                None,
                Some(pa),
                "unexpected instruction pairing",
            )),
        }
    }
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::condition::Cond;
    use crate::history::RefinementMode;
    use crate::pipeline::Pipeline;
    use crate::plan::lower;
    use crate::vm;

    fn lowered(build: impl FnOnce(crate::pipeline::PipelineBuilder) -> Pipeline) -> LoweredPlan {
        lower(&build(Pipeline::builder("tv"))).unwrap()
    }

    #[test]
    fn compile_outputs_validate_with_a_total_source_map() {
        let plan = lowered(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .gen("warm", "p")
                .check(Cond::low_confidence(0.9), |t| t.expand("p", "retry"))
                .gen("final", "p")
                .build()
        });
        let program = vm::compile(&plan).unwrap();
        let map = validate_compile(&plan, &program).unwrap();
        assert_eq!(map.len(), plan.ops.len() + 1);
        // The fused GEN+CHECK maps both source halves to one pc.
        assert_eq!(map[1], map[2]);
        assert_eq!(*map.last().unwrap() as usize, program.code().len());
    }

    #[test]
    fn a_program_from_a_different_plan_fails_validation() {
        let plan_a = lowered(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .gen("a", "p")
                .build()
        });
        let plan_b = lowered(|b| {
            b.create_text("p", "other text", RefinementMode::Manual)
                .gen("a", "p")
                .build()
        });
        let program_b = vm::compile(&plan_b).unwrap();
        let failures = validate_compile(&plan_a, &program_b).unwrap_err();
        assert!(!failures.is_empty());
        assert!(failures.iter().any(|f| f.message.contains("differs")));
    }

    #[test]
    fn identical_programs_bisimulate() {
        let plan = lowered(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .check_else(Cond::Always, |t| t.gen("a", "p"), |e| e.gen("b", "p"))
                .build()
        });
        let one = vm::compile(&plan).unwrap();
        let two = vm::compile(&plan).unwrap();
        assert!(validate_optimized(&one, &two).is_ok());
    }

    #[test]
    fn programs_of_different_plans_do_not_bisimulate() {
        let one = vm::compile(&lowered(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .gen("a", "p")
                .build()
        }))
        .unwrap();
        let two = vm::compile(&lowered(|b| {
            b.create_text("p", "base", RefinementMode::Manual)
                .gen("a", "p")
                .gen("b", "p")
                .build()
        }))
        .unwrap();
        // Same name, same shape up to the extra gen: the walk must catch
        // the point where one halts and the other generates.
        let failures = validate_optimized(&one, &two).unwrap_err();
        assert!(failures
            .iter()
            .any(|f| f.message.contains("halts") || f.message.contains("source size")));
    }
}
