//! The built-in lint passes and the [`LintPass`] extension point.
//!
//! Each pass reads a [`PassContext`] (the plan, its CFG, and whatever the
//! caller configured — a runtime's registries, assumed prompt keys,
//! budgets) and returns slot-anchored [`Diagnostic`]s. New checks plug in
//! by implementing [`LintPass`] and registering a lint code in
//! [`super::lints::REGISTRY`].

use std::collections::BTreeSet;

use crate::ops::{Op, PayloadSpec, PromptRef};
use crate::plan::{LoweredOp, LoweredPlan};
use crate::runtime::Runtime;

use super::cfg::{termination_diagnostics, Cfg};
use super::dataflow::{fixpoint, Analysis};
use super::lints::{
    Diagnostic, AFFINITY_MISMATCH, BUDGET_AT_RISK, BUDGET_INFEASIBLE, NO_LLM, UNDEFINED_PROMPT_KEY,
    UNKNOWN_AGENT, UNKNOWN_REFINER, UNKNOWN_RETRIEVER, UNKNOWN_VIEW, UNREACHABLE_SLOT,
};

/// Worst-case cost assumptions for the resource-feasibility walk. The
/// defaults match the cheapest generation the simulated backend can
/// produce ([`crate::llm::EchoLlm`] charges `100 + 10·prompt_tokens` µs
/// and at least one completion token), so feasibility errors are
/// conservative: a plan flagged infeasible cannot finish in budget even
/// under the friendliest backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResourceModel {
    /// Minimum virtual latency one GEN contributes, µs.
    pub min_gen_latency_us: u64,
    /// Minimum completion tokens one GEN contributes.
    pub min_gen_tokens: u64,
}

impl Default for ResourceModel {
    fn default() -> Self {
        Self {
            min_gen_latency_us: 100,
            min_gen_tokens: 1,
        }
    }
}

/// Everything a pass may consult.
pub struct PassContext<'a> {
    /// The plan under analysis.
    pub plan: &'a LoweredPlan,
    /// Its control-flow graph (structurally valid by construction).
    pub cfg: &'a Cfg,
    /// Registries to resolve names against; `None` skips registry and
    /// LLM-availability checks (pure dataflow verification).
    pub runtime: Option<&'a Runtime>,
    /// Prompt keys assumed to exist in the starting state.
    pub assumed: &'a BTreeSet<String>,
    /// Virtual deadline the plan must fit in, µs.
    pub deadline_us: Option<u64>,
    /// Token budget the plan must fit in.
    pub max_tokens: Option<u64>,
    /// Cost assumptions for the feasibility walk.
    pub model: ResourceModel,
}

/// An extensible lint pass over a lowered plan.
pub trait LintPass {
    /// Stable pass name (for tooling / debugging).
    fn name(&self) -> &'static str;
    /// Run the pass and return its findings.
    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic>;
}

/// Reachability + guaranteed termination: every slot must be reachable
/// from entry (W001) and no reachable edge may go backwards (E006) —
/// strictly-forward targets are the IR's termination argument.
pub struct ReachabilityPass;

impl LintPass for ReachabilityPass {
    fn name(&self) -> &'static str {
        "reachability"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let mut diags = termination_diagnostics(cx.plan, cx.cfg);
        for (slot, op) in cx.plan.ops.iter().enumerate() {
            if !cx.cfg.is_reachable(slot) {
                diags.push(Diagnostic::at(
                    &UNREACHABLE_SLOT,
                    slot,
                    op.describe(),
                    format!("slot {slot:04} can never be reached from entry"),
                ));
            }
        }
        diags
    }
}

/// The def-use lattice: the set of prompt keys defined on *some* path to
/// a program point. Union join makes the analysis optimistic across CHECK
/// branches — exactly [`crate::validate::Validator`]'s tree semantics —
/// so it flags definite mistakes, not conservative may-issues.
struct DefinedKeys {
    assumed: BTreeSet<String>,
}

impl Analysis for DefinedKeys {
    type Fact = BTreeSet<String>;

    fn entry_fact(&self) -> Self::Fact {
        self.assumed.clone()
    }

    fn transfer(&self, _slot: usize, op: &LoweredOp, before: &Self::Fact) -> Self::Fact {
        let mut out = before.clone();
        if let LoweredOp::Leaf { op, .. } = op {
            match op {
                Op::Ref { target, .. } => {
                    out.insert(target.clone());
                }
                Op::Merge { into, .. } => {
                    out.insert(into.clone());
                }
                _ => {}
            }
        }
        out
    }

    fn join(&self, into: &mut Self::Fact, from: &Self::Fact) -> bool {
        let before = into.len();
        into.extend(from.iter().cloned());
        into.len() != before
    }
}

/// Prompt-key def-use plus registry resolution, ported from
/// [`crate::validate::Validator`]: same checks, same messages, reported
/// in slot order (which is the source pipeline's program order, since
/// lowering emits then-branches before else-branches).
pub struct DefUsePass;

impl DefUsePass {
    fn check_view(rt: &Runtime, slot: usize, op: &Op, name: &str, diags: &mut Vec<Diagnostic>) {
        if !rt.views().contains(name) {
            diags.push(Diagnostic::at(
                &UNKNOWN_VIEW,
                slot,
                op.describe(),
                format!("view {name:?} is not registered"),
            ));
        }
    }
}

impl LintPass for DefUsePass {
    fn name(&self) -> &'static str {
        "def-use"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let analysis = DefinedKeys {
            assumed: cx.assumed.clone(),
        };
        let facts = fixpoint(cx.plan, cx.cfg, &analysis);
        let mut diags = Vec::new();
        for (slot, instr) in cx.plan.ops.iter().enumerate() {
            let LoweredOp::Leaf { op, .. } = instr else {
                continue; // CHECK conditions read (C, M), not prompts
            };
            let Some(defined) = &facts[slot] else {
                continue; // unreachable: ReachabilityPass reports it
            };
            match op {
                Op::Ret { source, prompt, .. } => {
                    if let Some(rt) = cx.runtime {
                        if rt.retriever_sources().binary_search(source).is_err() {
                            diags.push(Diagnostic::at(
                                &UNKNOWN_RETRIEVER,
                                slot,
                                op.describe(),
                                format!("retriever source {source:?} is not registered"),
                            ));
                        }
                    }
                    if let Some(key) = prompt {
                        if !defined.contains(key) {
                            diags.push(Diagnostic::at(
                                &UNDEFINED_PROMPT_KEY,
                                slot,
                                op.describe(),
                                format!(
                                    "retrieval prompt P[{key:?}] is never created before this RET"
                                ),
                            ));
                        }
                    }
                }
                Op::Gen { prompt, .. } => {
                    if let Some(rt) = cx.runtime {
                        if rt.llm().is_none() {
                            diags.push(Diagnostic::at(
                                &NO_LLM,
                                slot,
                                op.describe(),
                                "runtime has no LLM configured",
                            ));
                        }
                    }
                    match prompt {
                        PromptRef::Key(key) => {
                            if !defined.contains(key) {
                                diags.push(Diagnostic::at(
                                    &UNDEFINED_PROMPT_KEY,
                                    slot,
                                    op.describe(),
                                    format!("P[{key:?}] is never created before this GEN"),
                                ));
                            }
                        }
                        PromptRef::View { name, .. } => {
                            if let Some(rt) = cx.runtime {
                                Self::check_view(rt, slot, op, name, &mut diags);
                            }
                        }
                        PromptRef::Inline(_) | PromptRef::Lowered { .. } => {}
                    }
                }
                Op::Ref {
                    target,
                    action,
                    refiner,
                    args,
                    ..
                } => {
                    if let Some(rt) = cx.runtime {
                        if rt.refiner_names().binary_search(refiner).is_err() {
                            diags.push(Diagnostic::at(
                                &UNKNOWN_REFINER,
                                slot,
                                op.describe(),
                                format!("refiner {refiner:?} is not registered"),
                            ));
                        }
                        if refiner == "from_view" {
                            if let Some(name) = args
                                .as_map()
                                .and_then(|m| m.get("view"))
                                .and_then(|v| v.as_str())
                            {
                                Self::check_view(rt, slot, op, name, &mut diags);
                            }
                        }
                    }
                    let creates = *action == crate::history::RefAction::Create;
                    if !creates && !defined.contains(target) {
                        diags.push(Diagnostic::at(
                            &UNDEFINED_PROMPT_KEY,
                            slot,
                            op.describe(),
                            format!("P[{target:?}] is refined ({action}) before any CREATE"),
                        ));
                    }
                }
                Op::Merge { left, right, .. } => {
                    for side in [left, right] {
                        if !defined.contains(side) {
                            diags.push(Diagnostic::at(
                                &UNDEFINED_PROMPT_KEY,
                                slot,
                                op.describe(),
                                format!("MERGE source P[{side:?}] is never created"),
                            ));
                        }
                    }
                }
                Op::Delegate { agent, payload, .. } => {
                    if let Some(rt) = cx.runtime {
                        if rt.agent_names().binary_search(agent).is_err() {
                            diags.push(Diagnostic::at(
                                &UNKNOWN_AGENT,
                                slot,
                                op.describe(),
                                format!("agent {agent:?} is not registered"),
                            ));
                        }
                    }
                    if let PayloadSpec::PromptKey(key) = payload {
                        if !defined.contains(key) {
                            diags.push(Diagnostic::at(
                                &UNDEFINED_PROMPT_KEY,
                                slot,
                                op.describe(),
                                format!("payload prompt P[{key:?}] is never created"),
                            ));
                        }
                    }
                }
                Op::Check { .. } => {
                    // lowering never wraps CHECK in a Leaf; tolerate it.
                }
            }
        }
        diags
    }
}

/// Worst-case token/latency walk against the configured budgets. Requires
/// a DAG (the verifier only runs it when termination holds): for each
/// node the cheapest and costliest path sums are propagated in slot
/// order, which is a topological order of a strictly-forward CFG.
///
/// - cheapest path > budget → the plan *cannot* fit: [`BUDGET_INFEASIBLE`]
/// - costliest path > budget → the plan *may* not fit: [`BUDGET_AT_RISK`]
pub struct ResourcePass;

impl LintPass for ResourcePass {
    fn name(&self) -> &'static str {
        "resource-feasibility"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        if cx.deadline_us.is_none() && cx.max_tokens.is_none() {
            return Vec::new();
        }
        let len = cx.plan.ops.len();
        // (min, max) path sums of (latency, tokens) *before* each node;
        // index `len` is the exit.
        let mut lat: Vec<Option<(u64, u64)>> = vec![None; len + 1];
        let mut tok: Vec<Option<(u64, u64)>> = vec![None; len + 1];
        lat[0] = Some((0, 0));
        tok[0] = Some((0, 0));
        for slot in 0..len {
            let (Some((lat_min, lat_max)), Some((tok_min, tok_max))) = (lat[slot], tok[slot])
            else {
                continue; // unreachable slot
            };
            let gen = matches!(
                &cx.plan.ops[slot],
                LoweredOp::Leaf {
                    op: Op::Gen { .. },
                    ..
                }
            );
            let (dl, dt) = if gen {
                (cx.model.min_gen_latency_us, cx.model.min_gen_tokens)
            } else {
                (0, 0)
            };
            let out_lat = (lat_min + dl, lat_max + dl);
            let out_tok = (tok_min + dt, tok_max + dt);
            for &succ in cx.cfg.succs(slot) {
                let succ = succ.min(len);
                lat[succ] = Some(match lat[succ] {
                    Some((lo, hi)) => (lo.min(out_lat.0), hi.max(out_lat.1)),
                    None => out_lat,
                });
                tok[succ] = Some(match tok[succ] {
                    Some((lo, hi)) => (lo.min(out_tok.0), hi.max(out_tok.1)),
                    None => out_tok,
                });
            }
        }
        let mut diags = Vec::new();
        let (exit_lat, exit_tok) = (lat[len].unwrap_or((0, 0)), tok[len].unwrap_or((0, 0)));
        if let Some(deadline) = cx.deadline_us {
            if exit_lat.0 > deadline {
                diags.push(Diagnostic::plan_level(
                    &BUDGET_INFEASIBLE,
                    format!(
                        "every path needs at least {} µs of generation but the deadline is {} µs",
                        exit_lat.0, deadline
                    ),
                ));
            } else if exit_lat.1 > deadline {
                diags.push(Diagnostic::plan_level(
                    &BUDGET_AT_RISK,
                    format!(
                        "the worst-case path needs {} µs of generation against a deadline of {} µs",
                        exit_lat.1, deadline
                    ),
                ));
            }
        }
        if let Some(budget) = cx.max_tokens {
            if exit_tok.0 > budget {
                diags.push(Diagnostic::plan_level(
                    &BUDGET_INFEASIBLE,
                    format!(
                        "every path generates at least {} token(s) but the budget is {}",
                        exit_tok.0, budget
                    ),
                ));
            } else if exit_tok.1 > budget {
                diags.push(Diagnostic::plan_level(
                    &BUDGET_AT_RISK,
                    format!(
                        "the worst-case path generates {} token(s) against a budget of {}",
                        exit_tok.1, budget
                    ),
                ));
            }
        }
        diags
    }
}

/// Strip the `/stage{i}` suffix optimizer fusion appends to each fused
/// stage's identity, recovering the base plan's affinity key.
fn affinity_base(identity: &str) -> &str {
    if let Some(pos) = identity.rfind("/stage") {
        let digits = &identity[pos + "/stage".len()..];
        if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
            return &identity[..pos];
        }
    }
    identity
}

/// Affinity-key consistency across fused stages: every identity-carrying
/// GEN in one plan should share a base identity, otherwise affinity
/// routing pins the plan to one stripe while half its prefills miss.
pub struct AffinityPass;

impl LintPass for AffinityPass {
    fn name(&self) -> &'static str {
        "affinity-consistency"
    }

    fn run(&self, cx: &PassContext<'_>) -> Vec<Diagnostic> {
        let mut first: Option<(usize, &str)> = None;
        for (slot, instr) in cx.plan.ops.iter().enumerate() {
            let LoweredOp::Leaf {
                op:
                    Op::Gen {
                        prompt:
                            PromptRef::Lowered {
                                identity: Some(id), ..
                            },
                        ..
                    },
                ..
            } = instr
            else {
                continue;
            };
            let base = affinity_base(id);
            match first {
                None => first = Some((slot, base)),
                Some((first_slot, first_base)) if first_base != base => {
                    return vec![Diagnostic::at(
                        &AFFINITY_MISMATCH,
                        slot,
                        instr.describe(),
                        format!(
                            "fused stage carries affinity base {base:?} but the stage at slot \
                             {first_slot:04} carries {first_base:?}; mixed bases defeat \
                             cache-affinity routing"
                        ),
                    )];
                }
                Some(_) => {}
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_base_strips_only_stage_suffixes() {
        assert_eq!(
            affinity_base("view:summary#ab12/stage0"),
            "view:summary#ab12"
        );
        assert_eq!(
            affinity_base("view:summary#ab12/stage17"),
            "view:summary#ab12"
        );
        assert_eq!(affinity_base("view:summary#ab12"), "view:summary#ab12");
        assert_eq!(affinity_base("text:beef/stagey"), "text:beef/stagey");
        assert_eq!(affinity_base("text:beef/stage"), "text:beef/stage");
    }
}
