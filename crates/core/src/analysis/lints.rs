//! The lint registry: stable diagnostic codes, severities, and the
//! [`Diagnostic`] type every analysis pass emits.
//!
//! Codes are stable across releases — tooling may key suppressions or
//! dashboards on them — so codes are never renumbered or reused. Errors
//! (`SPEAR-Exxx`) mean the plan will misbehave or crash if executed;
//! warnings (`SPEAR-Wxxx`) mean the plan is executable but suspicious
//! (dead slots, wasted cache affinity, worst-case budget risk).

use std::fmt;

/// How severe a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// The plan is executable but suspicious.
    Warning,
    /// The plan must not be executed.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// A registered lint: a stable code plus its fixed severity and summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lint {
    /// Stable code, e.g. `"SPEAR-E001"`.
    pub code: &'static str,
    /// Fixed severity of every diagnostic carrying this code.
    pub severity: Severity,
    /// One-line description of what the lint detects.
    pub summary: &'static str,
}

/// Jump target points past the end of the plan.
pub const BAD_JUMP_TARGET: Lint = Lint {
    code: "SPEAR-E001",
    severity: Severity::Error,
    summary: "jump target is out of bounds",
};

/// A CHECK's else-target points past the end of the plan.
pub const CHECK_TARGET_ESCAPES: Lint = Lint {
    code: "SPEAR-E002",
    severity: Severity::Error,
    summary: "CHECK else-target escapes the plan",
};

/// The lowering placeholder (`usize::MAX`) escaped into a finished plan.
pub const PLACEHOLDER_LEAK: Lint = Lint {
    code: "SPEAR-E003",
    severity: Severity::Error,
    summary: "unpatched lowering placeholder target",
};

/// A prompt key is read on some path where no CREATE precedes it.
pub const UNDEFINED_PROMPT_KEY: Lint = Lint {
    code: "SPEAR-E004",
    severity: Severity::Error,
    summary: "prompt key is used before any CREATE",
};

/// Even the cheapest path through the plan exceeds a stated budget.
pub const BUDGET_INFEASIBLE: Lint = Lint {
    code: "SPEAR-E005",
    severity: Severity::Error,
    summary: "plan cannot meet its deadline or token budget",
};

/// A jump goes backwards, so slot-program termination is no longer
/// guaranteed by construction.
pub const BACKWARD_JUMP: Lint = Lint {
    code: "SPEAR-E006",
    severity: Severity::Error,
    summary: "backward jump breaks guaranteed termination",
};

/// REF names a refiner the runtime has not registered.
pub const UNKNOWN_REFINER: Lint = Lint {
    code: "SPEAR-E007",
    severity: Severity::Error,
    summary: "refiner is not registered",
};

/// An operator names a view the runtime's catalog does not hold.
pub const UNKNOWN_VIEW: Lint = Lint {
    code: "SPEAR-E008",
    severity: Severity::Error,
    summary: "view is not registered",
};

/// RET names a retriever source the runtime has not registered.
pub const UNKNOWN_RETRIEVER: Lint = Lint {
    code: "SPEAR-E009",
    severity: Severity::Error,
    summary: "retriever source is not registered",
};

/// DELEGATE names an agent the runtime has not registered.
pub const UNKNOWN_AGENT: Lint = Lint {
    code: "SPEAR-E010",
    severity: Severity::Error,
    summary: "agent is not registered",
};

/// The plan generates but the runtime has no LLM backend.
pub const NO_LLM: Lint = Lint {
    code: "SPEAR-E011",
    severity: Severity::Error,
    summary: "GEN requires an LLM backend",
};

/// A slot no execution can ever reach.
pub const UNREACHABLE_SLOT: Lint = Lint {
    code: "SPEAR-W001",
    severity: Severity::Warning,
    summary: "slot is unreachable",
};

/// Fused stages carry identities from different base plans, defeating
/// cache-affinity routing.
pub const AFFINITY_MISMATCH: Lint = Lint {
    code: "SPEAR-W002",
    severity: Severity::Warning,
    summary: "affinity keys diverge across fused stages",
};

/// The worst-case path exceeds a stated budget (the plan may still finish
/// in time on cheaper paths).
pub const BUDGET_AT_RISK: Lint = Lint {
    code: "SPEAR-W003",
    severity: Severity::Warning,
    summary: "worst-case path may exceed the budget",
};

/// A compiled `VmOp` is unreachable in the bytecode CFG — typically the
/// shadow of a fused refusal path or a branch pruned by specialization —
/// even though the source slot looked live at the IR level.
pub const VM_UNREACHABLE: Lint = Lint {
    code: "SPEAR-W004",
    severity: Severity::Warning,
    summary: "compiled VmOp is unreachable after fusion/optimization",
};

/// A CHECK branch can never be taken because its condition is statically
/// decided (e.g. `true` / `false` under family specialization); the live
/// branch always runs and the other side is dead weight.
pub const DEAD_CHECK_BRANCH: Lint = Lint {
    code: "SPEAR-W005",
    severity: Severity::Warning,
    summary: "CHECK branch is statically dead under specialization",
};

/// Every registered lint, in code order. Future passes add theirs here so
/// tooling can enumerate the full set.
pub const REGISTRY: &[Lint] = &[
    BAD_JUMP_TARGET,
    CHECK_TARGET_ESCAPES,
    PLACEHOLDER_LEAK,
    UNDEFINED_PROMPT_KEY,
    BUDGET_INFEASIBLE,
    BACKWARD_JUMP,
    UNKNOWN_REFINER,
    UNKNOWN_VIEW,
    UNKNOWN_RETRIEVER,
    UNKNOWN_AGENT,
    NO_LLM,
    UNREACHABLE_SLOT,
    AFFINITY_MISMATCH,
    BUDGET_AT_RISK,
    VM_UNREACHABLE,
    DEAD_CHECK_BRANCH,
];

/// Look a lint up by its stable code.
#[must_use]
pub fn lint(code: &str) -> Option<&'static Lint> {
    REGISTRY.iter().find(|l| l.code == code)
}

/// One verifier finding, anchored to a plan slot where possible.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable lint code (`SPEAR-Exxx` / `SPEAR-Wxxx`).
    pub code: &'static str,
    /// Severity (always the registered lint's severity).
    pub severity: Severity,
    /// Slot index the finding anchors to; `None` for whole-plan findings.
    pub slot: Option<usize>,
    /// `describe()` rendering of the anchored instruction (empty for
    /// whole-plan findings) — lets callers report "which operator" without
    /// holding the plan.
    pub op: String,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Build a diagnostic for `lint` anchored at `slot`.
    #[must_use]
    pub fn at(lint: &Lint, slot: usize, op: impl Into<String>, message: impl Into<String>) -> Self {
        Self {
            code: lint.code,
            severity: lint.severity,
            slot: Some(slot),
            op: op.into(),
            message: message.into(),
        }
    }

    /// Build a whole-plan diagnostic for `lint`.
    #[must_use]
    pub fn plan_level(lint: &Lint, message: impl Into<String>) -> Self {
        Self {
            code: lint.code,
            severity: lint.severity,
            slot: None,
            op: String::new(),
            message: message.into(),
        }
    }

    /// Whether this diagnostic blocks execution.
    #[must_use]
    pub fn is_error(&self) -> bool {
        self.severity == Severity::Error
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.slot {
            Some(slot) => write!(
                f,
                "{} [{}] at slot {:04}: {}",
                self.code, self.severity, slot, self.message
            ),
            None => write!(f, "{} [{}]: {}", self.code, self.severity, self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_codes_are_unique_and_well_formed() {
        let mut seen = std::collections::BTreeSet::new();
        for l in REGISTRY {
            assert!(seen.insert(l.code), "duplicate code {}", l.code);
            let expected = match l.severity {
                Severity::Error => "SPEAR-E",
                Severity::Warning => "SPEAR-W",
            };
            assert!(l.code.starts_with(expected), "{} severity prefix", l.code);
        }
    }

    #[test]
    fn lookup_by_code() {
        assert_eq!(lint("SPEAR-E001"), Some(&BAD_JUMP_TARGET));
        assert_eq!(lint("SPEAR-X999"), None);
    }

    #[test]
    fn display_carries_code_severity_and_slot() {
        let d = Diagnostic::at(&UNDEFINED_PROMPT_KEY, 3, "GEN[\"a\"]", "missing");
        assert_eq!(d.to_string(), "SPEAR-E004 [error] at slot 0003: missing");
        let p = Diagnostic::plan_level(&BUDGET_INFEASIBLE, "too slow");
        assert_eq!(p.to_string(), "SPEAR-E005 [error]: too slow");
    }
}
