//! Control-flow graph over a lowered slot program.
//!
//! Every slot is a node; the virtual exit node is `plan.ops.len()`.
//! Edges follow the interpreter in [`crate::exec::run_lowered`]:
//!
//! - `Leaf` falls through to `pc + 1`;
//! - `Check { on_false }` has two successors, `pc + 1` (condition holds)
//!   and `on_false`;
//! - `Jump { target }` has the single successor `target`.
//!
//! Construction is fallible: targets past the exit node — including the
//! lowering placeholder `usize::MAX`, which [`crate::plan::lower`] must
//! never let escape — are structural errors, reported with stable lint
//! codes instead of building a graph that would send the program counter
//! out of bounds.

use crate::plan::{LoweredOp, LoweredPlan};

use super::lints::{
    Diagnostic, BACKWARD_JUMP, BAD_JUMP_TARGET, CHECK_TARGET_ESCAPES, PLACEHOLDER_LEAK,
};

/// The control-flow graph of a lowered plan.
#[derive(Debug)]
pub struct Cfg {
    /// Successors per slot (targets may equal `len`, the exit node).
    succs: Vec<Vec<usize>>,
    /// Whether each slot is reachable from slot 0.
    reachable: Vec<bool>,
    /// Edges `(from, to)` with `to <= from` — loops are impossible without
    /// one, so an empty list proves termination.
    back_edges: Vec<(usize, usize)>,
}

impl Cfg {
    /// Build the CFG, or report the structural diagnostics (bad targets)
    /// that make the slot program un-interpretable.
    ///
    /// # Errors
    ///
    /// Returns every malformed-target diagnostic found, in slot order.
    pub fn build(plan: &LoweredPlan) -> Result<Cfg, Vec<Diagnostic>> {
        let diags = structural_diagnostics(plan);
        if !diags.is_empty() {
            return Err(diags);
        }
        let len = plan.ops.len();
        let succs: Vec<Vec<usize>> = plan
            .ops
            .iter()
            .enumerate()
            .map(|(pc, op)| match op {
                LoweredOp::Leaf { .. } => vec![pc + 1],
                LoweredOp::Check { on_false, .. } => {
                    if *on_false == pc + 1 {
                        vec![pc + 1]
                    } else {
                        vec![pc + 1, *on_false]
                    }
                }
                LoweredOp::Jump { target } => vec![*target],
            })
            .collect();

        let mut reachable = vec![false; len];
        let mut stack = if len > 0 { vec![0usize] } else { Vec::new() };
        while let Some(pc) = stack.pop() {
            if pc >= len || reachable[pc] {
                continue;
            }
            reachable[pc] = true;
            stack.extend(succs[pc].iter().copied());
        }

        let back_edges = succs
            .iter()
            .enumerate()
            .filter(|(pc, _)| reachable[*pc])
            .flat_map(|(pc, ss)| ss.iter().filter(move |&&t| t <= pc).map(move |&t| (pc, t)))
            .collect();

        Ok(Cfg {
            succs,
            reachable,
            back_edges,
        })
    }

    /// Successor slots of `slot` (targets may equal the exit index).
    #[must_use]
    pub fn succs(&self, slot: usize) -> &[usize] {
        &self.succs[slot]
    }

    /// Number of slots (the exit node is `len()`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.succs.len()
    }

    /// Whether the plan has no slots at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.succs.is_empty()
    }

    /// Whether `slot` is reachable from entry.
    #[must_use]
    pub fn is_reachable(&self, slot: usize) -> bool {
        self.reachable[slot]
    }

    /// Reachable edges `(from, to)` with `to <= from`. Empty for every
    /// plan produced by [`crate::plan::lower`], whose targets all move
    /// strictly forward — which is exactly the termination argument.
    #[must_use]
    pub fn back_edges(&self) -> &[(usize, usize)] {
        &self.back_edges
    }

    /// Whether forward progress is guaranteed (no reachable back edges).
    #[must_use]
    pub fn terminates(&self) -> bool {
        self.back_edges.is_empty()
    }
}

/// Validate every jump target of `plan` without building a graph: the
/// checks `lower()` itself runs before releasing a plan, and the gate
/// `Runtime::execute_lowered` applies to plans of unknown origin.
///
/// A target equal to `plan.ops.len()` is the ordinary exit and is valid.
#[must_use]
pub fn structural_diagnostics(plan: &LoweredPlan) -> Vec<Diagnostic> {
    let len = plan.ops.len();
    let mut diags = Vec::new();
    for (pc, op) in plan.ops.iter().enumerate() {
        match op {
            LoweredOp::Leaf { .. } => {}
            LoweredOp::Check { on_false, .. } => {
                if *on_false == usize::MAX {
                    diags.push(Diagnostic::at(
                        &PLACEHOLDER_LEAK,
                        pc,
                        op.describe(),
                        format!("CHECK at slot {pc:04} kept the usize::MAX lowering placeholder"),
                    ));
                } else if *on_false > len {
                    diags.push(Diagnostic::at(
                        &CHECK_TARGET_ESCAPES,
                        pc,
                        op.describe(),
                        format!("CHECK else-target {on_false} escapes the plan ({len} slots)"),
                    ));
                }
            }
            LoweredOp::Jump { target } => {
                if *target == usize::MAX {
                    diags.push(Diagnostic::at(
                        &PLACEHOLDER_LEAK,
                        pc,
                        op.describe(),
                        format!("JUMP at slot {pc:04} kept the usize::MAX lowering placeholder"),
                    ));
                } else if *target > len {
                    diags.push(Diagnostic::at(
                        &BAD_JUMP_TARGET,
                        pc,
                        op.describe(),
                        format!("jump target {target} is out of bounds ({len} slots)"),
                    ));
                }
            }
        }
    }
    diags
}

/// Diagnostics for reachable back edges: one [`BACKWARD_JUMP`] error per
/// edge, anchored at the jumping slot.
#[must_use]
pub fn termination_diagnostics(plan: &LoweredPlan, cfg: &Cfg) -> Vec<Diagnostic> {
    cfg.back_edges()
        .iter()
        .map(|(from, to)| {
            Diagnostic::at(
                &BACKWARD_JUMP,
                *from,
                plan.ops[*from].describe(),
                format!(
                    "slot {from:04} jumps backwards to {to:04}; lowered plans must move \
                     strictly forward to guarantee termination"
                ),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::condition::Cond;
    use crate::history::RefinementMode;
    use crate::pipeline::Pipeline;
    use crate::plan::lower;

    fn jump(target: usize) -> LoweredOp {
        LoweredOp::Jump { target }
    }

    fn plan_of(ops: Vec<LoweredOp>) -> LoweredPlan {
        LoweredPlan {
            name: "hand_built".into(),
            source_size: ops.len() as u64,
            ops,
        }
    }

    fn leaf() -> LoweredOp {
        let p = Pipeline::builder("x")
            .create_text("p", "t", RefinementMode::Manual)
            .build();
        lower(&p).expect("trivial pipeline lowers").ops[0].clone()
    }

    #[test]
    fn lowered_pipelines_build_clean_cfgs() {
        let p = Pipeline::builder("c")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(
                Cond::Always,
                |b| b.expand("p", "then"),
                |b| b.expand("p", "else"),
            )
            .gen("a", "p")
            .build();
        let lowered = lower(&p).expect("lowers");
        let cfg = Cfg::build(&lowered).expect("valid plan");
        assert_eq!(cfg.len(), lowered.ops.len());
        assert!((0..cfg.len()).all(|s| cfg.is_reachable(s)));
        assert!(cfg.terminates());
    }

    #[test]
    fn out_of_bounds_targets_are_structural_errors() {
        let bad = plan_of(vec![leaf(), jump(99)]);
        let diags = structural_diagnostics(&bad);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SPEAR-E001");
        assert!(Cfg::build(&bad).is_err());
    }

    #[test]
    fn placeholder_targets_get_their_own_code() {
        let bad = plan_of(vec![jump(usize::MAX)]);
        let diags = structural_diagnostics(&bad);
        assert_eq!(diags[0].code, "SPEAR-E003");
    }

    #[test]
    fn exit_targets_are_valid() {
        let ok = plan_of(vec![leaf(), jump(2)]);
        assert!(structural_diagnostics(&ok).is_empty());
        let cfg = Cfg::build(&ok).expect("valid");
        assert!(cfg.terminates());
    }

    #[test]
    fn backward_jumps_are_flagged_with_the_jumping_slot() {
        let looping = plan_of(vec![leaf(), jump(0)]);
        let cfg = Cfg::build(&looping).expect("structurally fine");
        assert!(!cfg.terminates());
        let diags = termination_diagnostics(&looping, &cfg);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SPEAR-E006");
        assert_eq!(diags[0].slot, Some(1));
    }

    #[test]
    fn unreachable_slots_are_detected() {
        let p = plan_of(vec![jump(2), leaf(), leaf()]);
        let cfg = Cfg::build(&p).expect("valid");
        assert!(cfg.is_reachable(0));
        assert!(!cfg.is_reachable(1));
        assert!(cfg.is_reachable(2));
    }
}
