//! The CHECK condition language.
//!
//! CHECK "conditionally applies a transformation if a metadata condition
//! cond(C, M) is satisfied" (paper §3.3). Conditions are small boolean
//! expressions over metadata signals and context keys, e.g.
//! `M["confidence"] < 0.7` or `"orders" not in C`. They are plain data
//! (serializable, displayable), so pipelines — and their triggers in the
//! ref_log — can be logged and replayed.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::error::{Result, SpearError};
use crate::metadata::Metadata;
use crate::value::Value;

/// A comparison operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl CmpOp {
    fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::{Equal, Greater, Less};
        matches!(
            (self, ord),
            (CmpOp::Lt, Less)
                | (CmpOp::Le, Less | Equal)
                | (CmpOp::Gt, Greater)
                | (CmpOp::Ge, Greater | Equal)
                | (CmpOp::Eq, Equal)
                | (CmpOp::Ne, Less | Greater)
        )
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
        };
        f.write_str(s)
    }
}

/// A value source in a condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operand {
    /// `M["key"]` — a metadata signal.
    Signal(String),
    /// `C["key"]` — a context entry.
    Ctx(String),
    /// A literal.
    Lit(Value),
}

impl Operand {
    /// Resolve against the execution state. Missing signals/keys resolve to
    /// `Null` (so `M["confidence"] < 0.7` on a fresh pipeline is an
    /// *evaluation error* rather than silently true/false — comparisons with
    /// Null are incomparable).
    fn resolve(&self, c: &Context, m: &Metadata) -> Value {
        match self {
            Operand::Signal(k) => m.get(k).unwrap_or(Value::Null),
            Operand::Ctx(k) => c.get(k).unwrap_or(Value::Null),
            Operand::Lit(v) => v.clone(),
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Signal(k) => write!(f, "M[{k:?}]"),
            Operand::Ctx(k) => write!(f, "C[{k:?}]"),
            Operand::Lit(v) => write!(f, "{v}"),
        }
    }
}

/// A CHECK condition over `(C, M)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Cond {
    /// Always true.
    Always,
    /// Always false.
    Never,
    /// Binary comparison.
    Cmp {
        /// Left operand.
        lhs: Operand,
        /// Operator.
        op: CmpOp,
        /// Right operand.
        rhs: Operand,
    },
    /// `"key" in C`
    InContext(String),
    /// `"key" not in C`
    NotInContext(String),
    /// `"key" in M`
    HasSignal(String),
    /// Truthiness of an operand (`Null`, `false`, `0`, empty ⇒ false).
    Truthy(Operand),
    /// Negation.
    Not(Box<Cond>),
    /// Conjunction (empty ⇒ true).
    All(Vec<Cond>),
    /// Disjunction (empty ⇒ false).
    Any(Vec<Cond>),
}

impl Cond {
    /// Evaluate against the execution state.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::Condition`] when a comparison is between
    /// incomparable values (including a missing signal compared against a
    /// number — surfacing the bug instead of guessing).
    pub fn eval(&self, c: &Context, m: &Metadata) -> Result<bool> {
        match self {
            Cond::Always => Ok(true),
            Cond::Never => Ok(false),
            Cond::Cmp { lhs, op, rhs } => {
                let l = lhs.resolve(c, m);
                let r = rhs.resolve(c, m);
                // Equality against Null is well-defined; ordering is not.
                if matches!(op, CmpOp::Eq) {
                    return Ok(l == r);
                }
                if matches!(op, CmpOp::Ne) {
                    return Ok(l != r);
                }
                l.partial_cmp_value(&r)
                    .map(|ord| op.eval(ord))
                    .ok_or_else(|| {
                        SpearError::Condition(format!(
                            "cannot compare {lhs} (= {l}) {op} {rhs} (= {r})"
                        ))
                    })
            }
            Cond::InContext(k) => Ok(c.contains(k)),
            Cond::NotInContext(k) => Ok(!c.contains(k)),
            Cond::HasSignal(k) => Ok(m.contains(k)),
            Cond::Truthy(operand) => Ok(operand.resolve(c, m).is_truthy()),
            Cond::Not(inner) => Ok(!inner.eval(c, m)?),
            Cond::All(parts) => {
                for p in parts {
                    if !p.eval(c, m)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Cond::Any(parts) => {
                for p in parts {
                    if p.eval(c, m)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Convenience: `M[signal] op lit`.
    #[must_use]
    pub fn signal_cmp(signal: &str, op: CmpOp, lit: impl Into<Value>) -> Cond {
        Cond::Cmp {
            lhs: Operand::Signal(signal.to_string()),
            op,
            rhs: Operand::Lit(lit.into()),
        }
    }

    /// Convenience: `M["confidence"] < threshold` — the paper's canonical
    /// retry trigger.
    #[must_use]
    pub fn low_confidence(threshold: f64) -> Cond {
        Cond::signal_cmp("confidence", CmpOp::Lt, threshold)
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Cond::Always => f.write_str("true"),
            Cond::Never => f.write_str("false"),
            Cond::Cmp { lhs, op, rhs } => write!(f, "{lhs} {op} {rhs}"),
            Cond::InContext(k) => write!(f, "{k:?} in C"),
            Cond::NotInContext(k) => write!(f, "{k:?} not in C"),
            Cond::HasSignal(k) => write!(f, "{k:?} in M"),
            Cond::Truthy(operand) => write!(f, "truthy({operand})"),
            Cond::Not(c) => write!(f, "!({c})"),
            Cond::All(parts) => {
                f.write_str("(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" && ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
            Cond::Any(parts) => {
                f.write_str("(")?;
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" || ")?;
                    }
                    write!(f, "{p}")?;
                }
                f.write_str(")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> (Context, Metadata) {
        let mut c = Context::new();
        c.set("orders", Value::from(vec![Value::from("enoxaparin")]));
        c.set("empty_list", Value::List(vec![]));
        let mut m = Metadata::new();
        m.set("confidence", 0.62);
        m.set("latency_ms", 120.0);
        (c, m)
    }

    #[test]
    fn confidence_threshold_check() {
        let (c, m) = state();
        assert!(Cond::low_confidence(0.7).eval(&c, &m).unwrap());
        assert!(!Cond::low_confidence(0.5).eval(&c, &m).unwrap());
    }

    #[test]
    fn membership_checks() {
        let (c, m) = state();
        assert!(Cond::InContext("orders".into()).eval(&c, &m).unwrap());
        assert!(Cond::NotInContext("labs".into()).eval(&c, &m).unwrap());
        assert!(Cond::HasSignal("confidence".into()).eval(&c, &m).unwrap());
        assert!(!Cond::HasSignal("coverage".into()).eval(&c, &m).unwrap());
    }

    #[test]
    fn comparison_operators_exhaustive() {
        let (c, m) = state();
        let cases = [
            (CmpOp::Lt, 0.7, true),
            (CmpOp::Le, 0.62, true),
            (CmpOp::Gt, 0.5, true),
            (CmpOp::Ge, 0.62, true),
            (CmpOp::Eq, 0.62, true),
            (CmpOp::Ne, 0.62, false),
        ];
        for (op, lit, expect) in cases {
            let cond = Cond::signal_cmp("confidence", op, lit);
            assert_eq!(cond.eval(&c, &m).unwrap(), expect, "{op}");
        }
    }

    #[test]
    fn missing_signal_ordering_is_an_error_but_equality_is_not() {
        let (c, m) = state();
        let err = Cond::signal_cmp("nonexistent", CmpOp::Lt, 1.0)
            .eval(&c, &m)
            .unwrap_err();
        assert!(matches!(err, SpearError::Condition(_)));
        // Equality against Null works (it's just "not equal").
        assert!(!Cond::signal_cmp("nonexistent", CmpOp::Eq, 1.0)
            .eval(&c, &m)
            .unwrap());
        assert!(Cond::signal_cmp("nonexistent", CmpOp::Ne, 1.0)
            .eval(&c, &m)
            .unwrap());
    }

    #[test]
    fn boolean_combinators_and_short_circuit() {
        let (c, m) = state();
        let t = Cond::Always;
        let f = Cond::Never;
        assert!(Cond::All(vec![t.clone(), t.clone()]).eval(&c, &m).unwrap());
        assert!(!Cond::All(vec![t.clone(), f.clone()]).eval(&c, &m).unwrap());
        assert!(Cond::Any(vec![f.clone(), t]).eval(&c, &m).unwrap());
        assert!(!Cond::Any(vec![]).eval(&c, &m).unwrap());
        assert!(Cond::All(vec![]).eval(&c, &m).unwrap());
        assert!(Cond::Not(Box::new(f)).eval(&c, &m).unwrap());

        // Short-circuit: the second clause would error, but the first decides.
        let erroring = Cond::signal_cmp("nonexistent", CmpOp::Lt, 1.0);
        assert!(!Cond::All(vec![Cond::Never, erroring.clone()])
            .eval(&c, &m)
            .unwrap());
        assert!(Cond::Any(vec![Cond::Always, erroring])
            .eval(&c, &m)
            .unwrap());
    }

    #[test]
    fn truthiness_of_context_values() {
        let (c, m) = state();
        assert!(Cond::Truthy(Operand::Ctx("orders".into()))
            .eval(&c, &m)
            .unwrap());
        assert!(!Cond::Truthy(Operand::Ctx("empty_list".into()))
            .eval(&c, &m)
            .unwrap());
        assert!(!Cond::Truthy(Operand::Ctx("missing".into()))
            .eval(&c, &m)
            .unwrap());
    }

    #[test]
    fn context_vs_signal_comparison() {
        let mut c = Context::new();
        c.set("expected_count", 3);
        let mut m = Metadata::new();
        m.set("retrieved_count", 2);
        let cond = Cond::Cmp {
            lhs: Operand::Signal("retrieved_count".into()),
            op: CmpOp::Lt,
            rhs: Operand::Ctx("expected_count".into()),
        };
        assert!(cond.eval(&c, &m).unwrap());
    }

    #[test]
    fn display_matches_paper_notation() {
        let cond = Cond::low_confidence(0.7);
        assert_eq!(cond.to_string(), "M[\"confidence\"] < 0.7");
        assert_eq!(
            Cond::NotInContext("orders".into()).to_string(),
            "\"orders\" not in C"
        );
    }

    #[test]
    fn serde_roundtrip() {
        let cond = Cond::All(vec![
            Cond::low_confidence(0.7),
            Cond::NotInContext("orders".into()),
        ]);
        let json = serde_json::to_string(&cond).unwrap();
        let back: Cond = serde_json::from_str(&json).unwrap();
        assert_eq!(cond, back);
    }
}
