//! GEN — LLM invocation (paper §3.3).

use std::collections::BTreeMap;
use std::sync::Arc;

use crate::error::{Result, SpearError};
use crate::llm::{GenOptions, GenRequest, PromptIdentity};
use crate::ops::PromptRef;
use crate::runtime::{ExecState, Runtime};
use crate::segment::SegmentedText;
use crate::template::{self, ParsedTemplate};
use crate::trace::TraceKind;
use crate::value::{map, Value};

/// A resolved prompt: the flat rendered text, its segmented form (joins to
/// `text` byte-for-byte), and the identity. The identity carries the
/// structure-gates-caching rule: only structured prompts (store entries,
/// views, lowered prompts with a plan identity) are cacheable. The segments
/// carry the renderer's literal/value boundaries so backends can memoize
/// tokenization of shared prefixes.
pub(crate) struct ResolvedPrompt {
    pub text: String,
    pub segments: SegmentedText,
    pub identity: PromptIdentity,
}

/// Resolve a prompt reference to rendered text + segments + identity,
/// with an optional pre-parsed template for the inline/lowered forms —
/// the compiled VM pins the parse in its constant pool, so warm plans
/// skip the parse-cache lookup per render (interpreter paths pass `None`).
pub(crate) fn resolve_prompt_with(
    rt: &Runtime,
    prompt: &PromptRef,
    parsed: Option<&Arc<ParsedTemplate>>,
    state: &ExecState,
) -> Result<ResolvedPrompt> {
    let render_template = |text: &str| -> Result<SegmentedText> {
        match parsed {
            Some(parsed) => {
                template::render_segmented_parsed(parsed, text, &BTreeMap::new(), &state.context)
            }
            None => template::render_segmented(text, &BTreeMap::new(), &state.context),
        }
    };
    let (segments, identity) =
        match prompt {
            PromptRef::Key(key) => {
                let entry = state.prompts.get(key)?;
                let segments = entry.render_segmented(&state.context)?;
                let identity = entry.cache_identity().map_or(PromptIdentity::Opaque, |id| {
                    PromptIdentity::Structured { id }
                });
                (segments, identity)
            }
            PromptRef::Inline(text) => {
                let segments = render_template(text)?;
                (segments, PromptIdentity::Opaque)
            }
            PromptRef::Lowered { text, identity } => {
                let segments = render_template(text)?;
                let identity = identity.clone().map_or(PromptIdentity::Opaque, |id| {
                    PromptIdentity::Structured { id }
                });
                (segments, identity)
            }
            PromptRef::View { name, args } => {
                let entry = rt.views.instantiate(name, args.clone())?;
                let segments = entry.render_segmented(&state.context)?;
                let identity = entry.cache_identity().map_or(PromptIdentity::Opaque, |id| {
                    PromptIdentity::Structured { id }
                });
                (segments, identity)
            }
        };
    Ok(ResolvedPrompt {
        text: segments.join(),
        segments,
        identity,
    })
}

/// Handler for [`crate::ops::Op::Gen`]: renders the prompt, calls the
/// backend, and records the generation in C, M, and the trace. `parsed` is
/// the compiled VM's pooled pre-parse of an inline/lowered template
/// (`None` on the interpreter paths).
pub(crate) fn run(
    rt: &Runtime,
    label: &str,
    prompt: &PromptRef,
    options: &GenOptions,
    parsed: Option<&Arc<ParsedTemplate>>,
    state: &mut ExecState,
) -> Result<()> {
    let llm = rt.llm.as_deref().ok_or(SpearError::LlmUnavailable {
        requested_by: "GEN".into(),
    })?;
    let resolved = resolve_prompt_with(rt, prompt, parsed, state)?;
    let (response, reuse) = llm.generate_with_reuse(
        &GenRequest {
            text: resolved.text,
            identity: resolved.identity,
            options: options.clone(),
            segments: Some(resolved.segments),
        },
        state.reuse,
    )?;
    state
        .context
        .set_attributed(label, response.text.clone(), state.step, "GEN");
    state
        .metadata
        .record_gen(response.usage, response.latency, response.confidence);
    if let Some(reuse) = reuse {
        state
            .metadata
            .record_reuse(reuse.key, reuse.reused, response.usage);
    }
    state
        .metadata
        .set(format!("confidence:{label}"), response.confidence);
    state.trace.record(
        state.step,
        TraceKind::Gen,
        format!("GEN[{label:?}]"),
        map([
            ("model", Value::from(response.model.clone())),
            ("confidence", Value::from(response.confidence)),
            ("prompt_tokens", Value::from(response.usage.prompt_tokens)),
            ("cached_tokens", Value::from(response.usage.cached_tokens)),
            (
                "completion_tokens",
                Value::from(response.usage.completion_tokens),
            ),
            (
                "latency_us",
                Value::from(u64::try_from(response.latency.as_micros()).unwrap_or(u64::MAX)),
            ),
        ]),
    );
    Ok(())
}
