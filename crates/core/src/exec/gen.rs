//! GEN — LLM invocation (paper §3.3).

use std::collections::BTreeMap;

use crate::error::{Result, SpearError};
use crate::llm::{GenRequest, PromptIdentity};
use crate::ops::{Op, PromptRef};
use crate::runtime::{ExecState, Runtime};
use crate::segment::SegmentedText;
use crate::template;
use crate::trace::TraceKind;
use crate::value::{map, Value};

use super::{Flow, OpExecutor};

/// A resolved prompt: the flat rendered text, its segmented form (joins to
/// `text` byte-for-byte), and the identity. The identity carries the
/// structure-gates-caching rule: only structured prompts (store entries,
/// views, lowered prompts with a plan identity) are cacheable. The segments
/// carry the renderer's literal/value boundaries so backends can memoize
/// tokenization of shared prefixes.
pub(crate) struct ResolvedPrompt {
    pub text: String,
    pub segments: SegmentedText,
    pub identity: PromptIdentity,
}

/// Resolve a prompt reference to rendered text + segments + identity.
pub(crate) fn resolve_prompt(
    rt: &Runtime,
    prompt: &PromptRef,
    state: &ExecState,
) -> Result<ResolvedPrompt> {
    let (segments, identity) =
        match prompt {
            PromptRef::Key(key) => {
                let entry = state.prompts.get(key)?;
                let segments = entry.render_segmented(&state.context)?;
                let identity = entry.cache_identity().map_or(PromptIdentity::Opaque, |id| {
                    PromptIdentity::Structured { id }
                });
                (segments, identity)
            }
            PromptRef::Inline(text) => {
                let segments = template::render_segmented(text, &BTreeMap::new(), &state.context)?;
                (segments, PromptIdentity::Opaque)
            }
            PromptRef::Lowered { text, identity } => {
                let segments = template::render_segmented(text, &BTreeMap::new(), &state.context)?;
                let identity = identity.clone().map_or(PromptIdentity::Opaque, |id| {
                    PromptIdentity::Structured { id }
                });
                (segments, identity)
            }
            PromptRef::View { name, args } => {
                let entry = rt.views.instantiate(name, args.clone())?;
                let segments = entry.render_segmented(&state.context)?;
                let identity = entry.cache_identity().map_or(PromptIdentity::Opaque, |id| {
                    PromptIdentity::Structured { id }
                });
                (segments, identity)
            }
        };
    Ok(ResolvedPrompt {
        text: segments.join(),
        segments,
        identity,
    })
}

/// Executor for [`Op::Gen`]: renders the prompt, calls the backend, and
/// records the generation in C, M, and the trace.
pub(crate) struct GenExec;

impl OpExecutor for GenExec {
    fn execute(
        &self,
        rt: &Runtime,
        op: &Op,
        _trigger: Option<&str>,
        state: &mut ExecState,
    ) -> Result<Flow> {
        let Op::Gen {
            label,
            prompt,
            options,
        } = op
        else {
            unreachable!("GenExec only dispatches on Op::Gen")
        };
        let llm = rt.llm.as_deref().ok_or(SpearError::LlmUnavailable {
            requested_by: "GEN".into(),
        })?;
        let resolved = resolve_prompt(rt, prompt, state)?;
        let response = llm.generate(&GenRequest {
            text: resolved.text,
            identity: resolved.identity,
            options: options.clone(),
            segments: Some(resolved.segments),
        })?;
        state
            .context
            .set_attributed(label, response.text.clone(), state.step, "GEN");
        state
            .metadata
            .record_gen(response.usage, response.latency, response.confidence);
        state
            .metadata
            .set(format!("confidence:{label}"), response.confidence);
        state.trace.record(
            state.step,
            TraceKind::Gen,
            format!("GEN[{label:?}]"),
            map([
                ("model", Value::from(response.model.clone())),
                ("confidence", Value::from(response.confidence)),
                ("prompt_tokens", Value::from(response.usage.prompt_tokens)),
                ("cached_tokens", Value::from(response.usage.cached_tokens)),
                (
                    "completion_tokens",
                    Value::from(response.usage.completion_tokens),
                ),
                (
                    "latency_us",
                    Value::from(u64::try_from(response.latency.as_micros()).unwrap_or(u64::MAX)),
                ),
            ]),
        );
        Ok(Flow::Next)
    }
}
