//! REF — prompt construction and refinement (paper §3.3, §4.3).

use crate::error::{Result, SpearError};
use crate::history::{RefAction, RefinementMode};
use crate::prompt::PromptEntry;
use crate::refiner::RefineCtx;
use crate::runtime::{ExecState, Runtime};
use crate::trace::TraceKind;
use crate::value::{map, Value};

/// Handler for [`crate::ops::Op::Ref`]: runs the refiner and applies its
/// output — either a new prompt version (recorded in the ref_log with the
/// CHECK trigger that caused it) or context writes.
#[allow(clippy::too_many_arguments)] // mirrors Op::Ref's five fields plus spine context
pub(crate) fn run(
    rt: &Runtime,
    target: &str,
    action: RefAction,
    refiner_name: &str,
    args: &Value,
    mode: RefinementMode,
    trigger: Option<&str>,
    state: &mut ExecState,
) -> Result<()> {
    let refiner = rt.refiners.resolve(refiner_name)?;
    let current = state.prompts.try_get(target);
    if current.is_none() && action != RefAction::Create {
        return Err(SpearError::PromptNotFound(target.to_string()));
    }
    let output = {
        let rcx = RefineCtx {
            current: current.as_ref(),
            context: &state.context,
            metadata: &state.metadata,
            llm: rt.llm.as_deref(),
            views: &rt.views,
            prompts: &state.prompts,
            args,
        };
        refiner.refine(&rcx)?
    };

    let mut new_version = None;
    if let Some(new_text) = output.new_text {
        if current.is_some() {
            let v = state.prompts.refine(
                target,
                new_text,
                action,
                refiner_name,
                mode,
                state.step,
                trigger.map(str::to_string),
                state.metadata.signal_snapshot(),
                output.note.clone(),
            )?;
            new_version = Some(v);
        } else {
            let mut entry = PromptEntry::new(new_text, refiner_name, mode);
            entry.ref_log[0].step = state.step;
            entry.ref_log[0].trigger = trigger.map(str::to_string);
            entry.ref_log[0].signals = state.metadata.signal_snapshot();
            entry.ref_log[0].note = output.note.clone();
            state.prompts.insert(target, entry);
            new_version = Some(1);
        }
        // Params / origin updates from the refiner (e.g. from_view).
        if output.params.is_some() || output.origin.is_some() {
            state.prompts.update(target, |e| {
                if let Some(p) = output.params {
                    e.params = p;
                }
                if let Some(o) = output.origin {
                    e.origin = o;
                }
            })?;
        }
    } else {
        for (key, value) in &output.ctx_writes {
            state
                .context
                .set_attributed(key.clone(), value.clone(), state.step, "REF");
        }
    }
    if new_version.is_some() {
        for (key, value) in &output.ctx_writes {
            state
                .context
                .set_attributed(key.clone(), value.clone(), state.step, "REF");
        }
    }
    state.metadata.ref_calls += 1;
    state.trace.record(
        state.step,
        TraceKind::Ref,
        format!("REF[{action}, {refiner_name}] on P[{target:?}]"),
        map([
            ("mode", Value::from(mode.to_string())),
            ("version", Value::from(new_version.unwrap_or(0))),
            (
                "trigger",
                trigger.map_or(Value::Null, |t| Value::from(t.to_string())),
            ),
        ]),
    );
    Ok(())
}
