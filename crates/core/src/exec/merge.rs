//! MERGE — reconciling two prompt fragments (paper §3.3).

use crate::error::{Result, SpearError};
use crate::history::{RefAction, RefinementMode};
use crate::ops::MergePolicy;
use crate::prompt::PromptOrigin;
use crate::runtime::ExecState;
use crate::trace::TraceKind;
use crate::value::Value;

/// Handler for [`crate::ops::Op::Merge`]: applies the reconciliation
/// policy and records the merged entry (with `Merged` origin) under the
/// target key.
pub(crate) fn run(
    left: &str,
    right: &str,
    into: &str,
    policy: &MergePolicy,
    state: &mut ExecState,
) -> Result<()> {
    let l = state
        .prompts
        .try_get(left)
        .ok_or_else(|| SpearError::Merge(format!("left prompt {left:?} missing")))?;
    let r = state
        .prompts
        .try_get(right)
        .ok_or_else(|| SpearError::Merge(format!("right prompt {right:?} missing")))?;

    let (mut base, merged_text, choice) = match policy {
        MergePolicy::PreferLeft => {
            let text = l.text.clone();
            (l, text, "left")
        }
        MergePolicy::PreferRight => {
            let text = r.text.clone();
            (r, text, "right")
        }
        MergePolicy::Concat { separator } => {
            let text = format!("{}{separator}{}", l.text, r.text);
            (l, text, "concat")
        }
        MergePolicy::BySignal {
            left_signal,
            right_signal,
        } => {
            let ls = state.metadata.get(left_signal).and_then(|v| v.as_f64());
            let rs = state.metadata.get(right_signal).and_then(|v| v.as_f64());
            let (winner, choice) = match (ls, rs) {
                (Some(a), Some(b)) if b > a => (r, "right"),
                _ => (l, "left"),
            };
            let text = winner.text.clone();
            (winner, text, choice)
        }
    };

    base.apply_refinement(
        merged_text,
        RefAction::Merge,
        &format!("merge:{policy:?}"),
        RefinementMode::Manual,
        state.step,
        None,
        state.metadata.signal_snapshot(),
        Some(format!("merged {left:?} + {right:?} ({choice})")),
    );
    base.origin = PromptOrigin::Merged {
        left: left.to_string(),
        right: right.to_string(),
    };
    state.prompts.insert(into, base);
    state.trace.record(
        state.step,
        TraceKind::Merge,
        format!("MERGE[P[{left:?}], P[{right:?}]] -> P[{into:?}]"),
        Value::from(choice),
    );
    Ok(())
}
