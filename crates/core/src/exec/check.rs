//! CHECK — conditional execution (paper §3.3).

use crate::condition::Cond;
use crate::error::Result;
use crate::runtime::ExecState;
use crate::trace::TraceKind;
use crate::value::Value;

/// Evaluate a condition and record the `CheckTaken`/`CheckSkipped` event.
/// Evaluation errors record nothing here — the spine logs them.
pub(crate) fn eval_and_trace(cond: &Cond, state: &mut ExecState) -> Result<bool> {
    let holds = cond.eval(&state.context, &state.metadata)?;
    let cond_text = cond.to_string();
    state.trace.record(
        state.step,
        if holds {
            TraceKind::CheckTaken
        } else {
            TraceKind::CheckSkipped
        },
        format!("CHECK[{cond_text}]"),
        Value::Bool(holds),
    );
    Ok(holds)
}

/// [`eval_and_trace`] with a pre-rendered `CHECK[{cond}]` label — the
/// compiled VM interns the label once per plan instead of Display-rendering
/// the condition on every evaluation. `label` must be exactly what
/// `format!("CHECK[{cond}]")` would produce, so traces stay byte-identical.
pub(crate) fn eval_labeled(cond: &Cond, label: &str, state: &mut ExecState) -> Result<bool> {
    let holds = cond.eval(&state.context, &state.metadata)?;
    state.trace.record(
        state.step,
        if holds {
            TraceKind::CheckTaken
        } else {
            TraceKind::CheckSkipped
        },
        label.to_owned(),
        Value::Bool(holds),
    );
    Ok(holds)
}
