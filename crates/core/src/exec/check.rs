//! CHECK — conditional execution (paper §3.3).

use crate::condition::Cond;
use crate::error::Result;
use crate::ops::Op;
use crate::runtime::{ExecState, Runtime};
use crate::trace::TraceKind;
use crate::value::Value;

use super::{Flow, OpExecutor};

/// Evaluate a condition and record the `CheckTaken`/`CheckSkipped` event.
/// Evaluation errors record nothing here — the spine logs them.
pub(crate) fn eval_and_trace(cond: &Cond, state: &mut ExecState) -> Result<bool> {
    let holds = cond.eval(&state.context, &state.metadata)?;
    let cond_text = cond.to_string();
    state.trace.record(
        state.step,
        if holds {
            TraceKind::CheckTaken
        } else {
            TraceKind::CheckSkipped
        },
        format!("CHECK[{cond_text}]"),
        Value::Bool(holds),
    );
    Ok(holds)
}

/// Executor for [`Op::Check`]: evaluates the condition; the spine routes
/// control into the matching branch.
pub(crate) struct CheckExec;

impl OpExecutor for CheckExec {
    fn execute(
        &self,
        _rt: &Runtime,
        op: &Op,
        _trigger: Option<&str>,
        state: &mut ExecState,
    ) -> Result<Flow> {
        let Op::Check { cond, .. } = op else {
            unreachable!("CheckExec only dispatches on Op::Check")
        };
        Ok(Flow::Cond(eval_and_trace(cond, state)?))
    }
}
