//! Per-operator handlers and the execution spine.
//!
//! Every operator of the algebra has its own handler module — the
//! obligation to consume and produce the full `(P, C, M)` triple is
//! per-operator, so the code is organized the same way. Handlers are plain
//! free functions over destructured operator fields (no trait objects):
//! [`exec_op`] is the static dispatch point, and [`crate::vm`] inlines the
//! same handlers into its compiled match-loop. The spine — budget gating,
//! step counting, tracing, and error unwinding — lives here, in exactly
//! one place:
//!
//! - [`run_lowered`] steps a [`LoweredPlan`] with a program counter — the
//!   reference IR interpreter, kept for differential testing and dispatch
//!   microbenchmarks (the production path compiles to [`crate::vm`]).
//! - [`run_tree`] is the reference recursive walk over the operator tree
//!   ([`crate::runtime::Runtime::execute_tree`]).
//!
//! All three spines — tree walk, IR interpreter, compiled VM — produce
//! byte-identical traces for any pipeline, including error paths (see
//! `tests/trace_equivalence.rs`).
//!
//! The spine must never panic on user input — failures are typed
//! [`SpearError`]s — so `unwrap()`/`expect()` are denied throughout the
//! executor tree.

#![deny(clippy::unwrap_used, clippy::expect_used)]

pub(crate) mod check;
pub(crate) mod delegate;
pub(crate) mod gen;
pub(crate) mod merge;
pub(crate) mod refine;
pub(crate) mod ret;

use crate::error::{Result, SpearError};
use crate::ops::Op;
use crate::plan::{LoweredOp, LoweredPlan};
use crate::runtime::{ExecState, Runtime};
use crate::trace::TraceKind;
use crate::value::Value;

/// Control-flow outcome of one operator.
pub(crate) enum Flow {
    /// Proceed to the next operator.
    Next,
    /// A CHECK evaluated; `true` enters the then-branch.
    Cond(bool),
}

/// Execute one operator against `state`: the static dispatch table from
/// operator to its inlined handler. Handlers never gate budgets or record
/// `Error` events — the spine owns both — but do record their own success
/// trace event, because its payload comes from the operator's internals
/// (token usage, condition outcome, merge choice, …).
pub(crate) fn exec_op(
    rt: &Runtime,
    op: &Op,
    trigger: Option<&str>,
    state: &mut ExecState,
) -> Result<Flow> {
    match op {
        Op::Ret {
            source,
            query,
            prompt,
            into,
            limit,
        } => {
            ret::run(rt, source, query, prompt.as_deref(), into, *limit, state)?;
            Ok(Flow::Next)
        }
        Op::Gen {
            label,
            prompt,
            options,
        } => {
            gen::run(rt, label, prompt, options, None, state)?;
            Ok(Flow::Next)
        }
        Op::Ref {
            target,
            action,
            refiner,
            args,
            mode,
        } => {
            refine::run(rt, target, *action, refiner, args, *mode, trigger, state)?;
            Ok(Flow::Next)
        }
        Op::Check { cond, .. } => Ok(Flow::Cond(check::eval_and_trace(cond, state)?)),
        Op::Merge {
            left,
            right,
            into,
            policy,
        } => {
            merge::run(left, right, into, policy, state)?;
            Ok(Flow::Next)
        }
        Op::Delegate {
            agent,
            payload,
            into,
        } => {
            delegate::run(rt, agent, payload, into, state)?;
            Ok(Flow::Next)
        }
    }
}

/// Per-call resource limits, checked before each operator against the
/// metadata counters accumulated since the call started.
pub(crate) struct CallLimits {
    pub(crate) tokens_start: u64,
    pub(crate) latency_start_us: u64,
    pub(crate) max_tokens: Option<u64>,
    pub(crate) max_latency_us: Option<u64>,
}

impl CallLimits {
    fn check(&self, state: &ExecState) -> Result<()> {
        if let Some(max) = self.max_tokens {
            let used = state.metadata.usage.total() - self.tokens_start;
            if used > max {
                return Err(SpearError::TokenBudgetExceeded { limit: max, used });
            }
        }
        if let Some(max) = self.max_latency_us {
            let used_us = state.metadata.latency_us - self.latency_start_us;
            if used_us > max {
                return Err(SpearError::LatencyBudgetExceeded {
                    limit_us: max,
                    used_us,
                });
            }
        }
        Ok(())
    }
}

/// Per-state cancellation signals, checked between operators (cooperative
/// cancellation): an external [`crate::cancel::CancelToken`] and the
/// state's virtual deadline. Both depend only on the job's own state —
/// never on wall time — so cancellation points are deterministic.
fn check_cancelled(state: &ExecState) -> Result<()> {
    if let Some(token) = &state.cancel {
        if token.is_cancelled() {
            return Err(SpearError::Cancelled {
                reason: token.reason().to_string(),
                after_us: state.metadata.latency_us,
            });
        }
    }
    if let Some(deadline_us) = state.deadline_us {
        if state.metadata.latency_us > deadline_us {
            return Err(SpearError::Cancelled {
                reason: "deadline".to_string(),
                after_us: state.metadata.latency_us,
            });
        }
    }
    Ok(())
}

/// The pre-operator gate: op budget, call limits, step advance. Gate
/// failures are *not* recorded against the operator (it never ran) — only
/// enclosing CHECK frames log them during unwind. Shared by all three
/// spines (tree walk, IR interpreter, compiled VM).
pub(crate) fn gate(
    rt: &Runtime,
    state: &mut ExecState,
    budget: &mut u64,
    limits: &CallLimits,
) -> Result<()> {
    if *budget == 0 {
        return Err(SpearError::OpBudgetExceeded {
            limit: rt.config.max_ops,
        });
    }
    check_cancelled(state)?;
    limits.check(state)?;
    *budget -= 1;
    state.step += 1;
    Ok(())
}

/// Replay the tree walk's error unwind: the failing operator's own trace
/// event (when it ran), then one event per enclosing CHECK, innermost
/// first — all at the current step, matching the recursive walk.
fn unwind(state: &mut ExecState, own: Option<String>, frames: &[String], e: &SpearError) {
    if let Some(describe) = own {
        state.trace.record(
            state.step,
            TraceKind::Error,
            describe,
            Value::from(e.to_string()),
        );
    }
    for frame in frames.iter().rev() {
        state.trace.record(
            state.step,
            TraceKind::Error,
            frame.clone(),
            Value::from(e.to_string()),
        );
    }
}

/// The IR interpreter spine: step `plan` with a program counter.
pub(crate) fn run_lowered(
    rt: &Runtime,
    plan: &LoweredPlan,
    state: &mut ExecState,
    budget: &mut u64,
    limits: &CallLimits,
) -> Result<()> {
    let mut pc = 0usize;
    while let Some(instr) = plan.ops.get(pc) {
        match instr {
            LoweredOp::Jump { target } => pc = *target,
            LoweredOp::Check {
                cond,
                on_false,
                frames,
            } => {
                if let Err(e) = gate(rt, state, budget, limits) {
                    unwind(state, None, frames, &e);
                    return Err(e);
                }
                match check::eval_and_trace(cond, state) {
                    Ok(true) => pc += 1,
                    Ok(false) => pc = *on_false,
                    Err(e) => {
                        unwind(state, Some(format!("CHECK[{cond}]")), frames, &e);
                        return Err(e);
                    }
                }
            }
            LoweredOp::Leaf {
                op,
                trigger,
                frames,
            } => {
                if let Err(e) = gate(rt, state, budget, limits) {
                    unwind(state, None, frames, &e);
                    return Err(e);
                }
                match exec_op(rt, op, trigger.as_deref(), state) {
                    Ok(_) => pc += 1,
                    Err(e) => {
                        unwind(state, Some(op.describe()), frames, &e);
                        return Err(e);
                    }
                }
            }
        }
    }
    Ok(())
}

/// The reference spine: recursive walk over the operator tree. Gate
/// failures propagate unrecorded (the enclosing recursion level logs them
/// against its CHECK), execution failures are logged against the operator.
pub(crate) fn run_tree(
    rt: &Runtime,
    ops: &[Op],
    state: &mut ExecState,
    budget: &mut u64,
    trigger: Option<&str>,
    limits: &CallLimits,
) -> Result<()> {
    for op in ops {
        gate(rt, state, budget, limits)?;
        let outcome = exec_op(rt, op, trigger, state).and_then(|flow| match flow {
            Flow::Next => Ok(()),
            Flow::Cond(holds) => {
                let Op::Check {
                    cond,
                    then_ops,
                    else_ops,
                } = op
                else {
                    unreachable!("only CHECK returns Flow::Cond")
                };
                if holds {
                    run_tree(rt, then_ops, state, budget, Some(&cond.to_string()), limits)
                } else if else_ops.is_empty() {
                    Ok(())
                } else {
                    let negated = format!("!({cond})");
                    run_tree(rt, else_ops, state, budget, Some(&negated), limits)
                }
            }
        });
        if let Err(e) = outcome {
            state.trace.record(
                state.step,
                TraceKind::Error,
                op.describe(),
                Value::from(e.to_string()),
            );
            return Err(e);
        }
    }
    Ok(())
}
