//! DELEGATE — offloading subtasks to agents (paper §3.3).

use crate::error::{Result, SpearError};
use crate::ops::PayloadSpec;
use crate::runtime::{ExecState, Runtime};
use crate::trace::TraceKind;
use crate::value::Value;

/// Handler for [`crate::ops::Op::Delegate`]: resolves the agent, builds
/// the payload, and writes the agent's result into C.
pub(crate) fn run(
    rt: &Runtime,
    agent_name: &str,
    payload: &PayloadSpec,
    into: &str,
    state: &mut ExecState,
) -> Result<()> {
    let agent = rt.agents.resolve(agent_name)?;
    let payload_value = match payload {
        PayloadSpec::CtxKey(k) => state.context.get(k).ok_or_else(|| SpearError::Agent {
            agent: agent_name.to_string(),
            reason: format!("payload context key {k:?} missing"),
        })?,
        PayloadSpec::PromptKey(k) => {
            let entry = state.prompts.get(k)?;
            Value::from(entry.render(&state.context)?)
        }
        PayloadSpec::Lit(v) => v.clone(),
    };
    let result = agent.call(&payload_value, &state.context)?;
    state
        .context
        .set_attributed(into, result, state.step, "DELEGATE");
    state.trace.record(
        state.step,
        TraceKind::Delegate,
        format!("DELEGATE[{agent_name:?}] -> C[{into:?}]"),
        Value::Null,
    );
    Ok(())
}
