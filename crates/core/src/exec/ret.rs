//! RET — retrieval into the context (paper §3.3).

use crate::error::Result;
use crate::ops::Op;
use crate::retriever::{RetrievalQuery, RetrievalRequest};
use crate::runtime::{ExecState, Runtime};
use crate::trace::TraceKind;
use crate::value::{map, Value};

use super::{Flow, OpExecutor};

/// Executor for [`Op::Ret`]: resolves the retriever, renders a
/// prompt-based query when one is configured (so REF can refine retrieval
/// intent), and writes the documents into C.
pub(crate) struct RetExec;

impl OpExecutor for RetExec {
    fn execute(
        &self,
        rt: &Runtime,
        op: &Op,
        _trigger: Option<&str>,
        state: &mut ExecState,
    ) -> Result<Flow> {
        let Op::Ret {
            source,
            query,
            prompt,
            into,
            limit,
        } = op
        else {
            unreachable!("RetExec only dispatches on Op::Ret")
        };
        let retriever = rt.retrievers.resolve(source)?;
        let effective_query = match prompt.as_deref() {
            Some(key) => {
                let entry = state.prompts.get(key)?;
                RetrievalQuery::Prompt(entry.render(&state.context)?)
            }
            None => query.clone(),
        };
        let request = RetrievalRequest {
            source: source.to_string(),
            query: effective_query,
            limit: *limit,
        };
        let docs = retriever.retrieve(&request)?;
        let count = docs.len();
        state.context.set_attributed(
            into,
            Value::List(docs.iter().map(|d| d.to_value()).collect()),
            state.step,
            "RET",
        );
        state.metadata.set("retrieved_count", count);
        state.trace.record(
            state.step,
            TraceKind::Ret,
            format!("RET[{source:?}] -> C[{into:?}]"),
            map([("count", Value::from(count))]),
        );
        Ok(Flow::Next)
    }
}
