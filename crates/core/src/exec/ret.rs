//! RET — retrieval into the context (paper §3.3).

use crate::error::Result;
use crate::retriever::{RetrievalQuery, RetrievalRequest};
use crate::runtime::{ExecState, Runtime};
use crate::trace::TraceKind;
use crate::value::{map, Value};

/// Handler for [`crate::ops::Op::Ret`]: resolves the retriever, renders a
/// prompt-based query when one is configured (so REF can refine retrieval
/// intent), and writes the documents into C.
pub(crate) fn run(
    rt: &Runtime,
    source: &str,
    query: &RetrievalQuery,
    prompt: Option<&str>,
    into: &str,
    limit: usize,
    state: &mut ExecState,
) -> Result<()> {
    let retriever = rt.retrievers.resolve(source)?;
    let effective_query = match prompt {
        Some(key) => {
            let entry = state.prompts.get(key)?;
            RetrievalQuery::Prompt(entry.render(&state.context)?)
        }
        None => query.clone(),
    };
    let request = RetrievalRequest {
        source: source.to_string(),
        query: effective_query,
        limit,
    };
    let docs = retriever.retrieve(&request)?;
    let count = docs.len();
    state.context.set_attributed(
        into,
        Value::List(docs.iter().map(|d| d.to_value()).collect()),
        state.step,
        "RET",
    );
    state.metadata.set("retrieved_count", count);
    state.trace.record(
        state.step,
        TraceKind::Ret,
        format!("RET[{source:?}] -> C[{into:?}]"),
        map([("count", Value::from(count))]),
    );
    Ok(())
}
