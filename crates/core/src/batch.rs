//! Concurrent batch execution of independent pipeline instances.
//!
//! The paper's runtime (§6) executes one pipeline at a time; a
//! production-scale deployment runs *many* instances concurrently against
//! shared backends. [`BatchRunner`] is that executor: it fans N jobs — each
//! a pipeline plus its own [`ExecState`] — across a fixed pool of std
//! threads, every worker sharing the same [`Runtime`], and collects the
//! per-job outcomes in submission order.
//!
//! ## Determinism under any thread count
//!
//! The runner is built so that for a fixed workload and seed, every job's
//! [`ExecReport`] and [`crate::trace::Trace`] is **byte-identical whether
//! the pool has 1, 2, or 8 workers**:
//!
//! - jobs never share mutable state: each owns its `ExecState`;
//! - each job runs inside an execution scope ([`crate::scope`]) carrying a
//!   unique owner id, which owner-aware backends (e.g. the spear-llm
//!   prefix cache) use to keep per-pipeline visible state independent of
//!   cross-pipeline interleaving;
//! - jobs are assigned to workers by **static round-robin striping**
//!   (worker `w` of `W` runs jobs `w, w+W, w+2W, …`), not by a racy work
//!   queue, so the lane a job charges virtual time to is a pure function
//!   of `(job index, worker count)`.
//!
//! Worker threads are scoped (`std::thread::scope`), so the runner borrows
//! the runtime without requiring `'static` lifetimes or reference counting
//! at the call site.
//!
//! ## Failure containment
//!
//! A panicking job must not poison the batch: each job body runs under
//! `catch_unwind`, so a panic surfaces as
//! [`crate::error::SpearError::WorkerPanicked`] in that job's slot while
//! the rest of the lane keeps running. The spine itself is panic-free
//! (`clippy::unwrap_used` / `clippy::expect_used` are denied here, in
//! `exec/`, and in `runtime.rs`).

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::error::{Result, SpearError};
use crate::pipeline::Pipeline;
use crate::plan::LoweredPlan;
use crate::runtime::{ExecReport, ExecState, Runtime};
use crate::scope;

/// One unit of batch work: a pipeline and the state it executes against.
#[derive(Debug)]
pub struct BatchJob {
    /// The pipeline to execute (shared across jobs via `Arc`).
    pub pipeline: Arc<Pipeline>,
    /// The job's private execution state (consumed, returned in the
    /// outcome).
    pub state: ExecState,
}

impl BatchJob {
    /// Convenience constructor.
    #[must_use]
    pub fn new(pipeline: Arc<Pipeline>, state: ExecState) -> Self {
        Self { pipeline, state }
    }
}

/// What one job produced: the report and the (mutated) state, including
/// its trace.
#[derive(Debug)]
pub struct BatchOutcome {
    /// The execution report.
    pub report: ExecReport,
    /// The job's state after execution (trace, context, prompts).
    pub state: ExecState,
}

/// A batch job whose private [`ExecState`] can be taken out for execution
/// (the rest of the job — the plan — stays readable during the run).
trait HasState {
    fn take_state(&mut self) -> ExecState;
}

impl HasState for BatchJob {
    fn take_state(&mut self) -> ExecState {
        std::mem::take(&mut self.state)
    }
}

impl HasState for (Arc<LoweredPlan>, ExecState) {
    fn take_state(&mut self) -> ExecState {
        std::mem::take(&mut self.1)
    }
}

/// A batch job with explicit placement: which worker lane runs it and
/// which cache-owner group it charges its prefix-cache state to. Built by
/// schedulers (e.g. `spear-serve`) that route jobs for cache affinity
/// instead of round-robin striping.
#[derive(Debug)]
pub struct AssignedJob {
    /// Worker lane (wraps modulo the runner's worker count). All jobs of
    /// one owner group must share a lane for deterministic cache reuse.
    pub lane: usize,
    /// Cache-owner id (see [`crate::scope`]). Jobs sharing an owner see
    /// each other's prefix-cache insertions.
    pub owner: u64,
    /// The lowered plan to execute.
    pub plan: Arc<LoweredPlan>,
    /// A pre-compiled program for `plan`, when the scheduler already
    /// compiled (and possibly specialized) it; `None` falls back to
    /// compiling inside [`crate::runtime::Runtime::execute_lowered`].
    pub program: Option<Arc<crate::vm::Program>>,
    /// The job's private execution state.
    pub state: ExecState,
}

/// Executes batches of independent pipeline instances on a worker pool.
#[derive(Debug)]
pub struct BatchRunner {
    workers: usize,
    next_owner: AtomicU64,
}

impl BatchRunner {
    /// A runner with `workers` threads (clamped to at least 1).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            next_owner: AtomicU64::new(1),
        }
    }

    /// Worker-pool size.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Execute `jobs` against `runtime`; outcomes come back in submission
    /// order, each `Err` slot holding the corresponding job's failure.
    ///
    /// Owner ids are allocated per job and are unique across successive
    /// `run` calls on the same runner, so two batches never alias each
    /// other's owner-private backend state.
    pub fn run(&self, runtime: &Runtime, jobs: Vec<BatchJob>) -> Vec<Result<BatchOutcome>> {
        self.run_jobs(jobs, |job, state| runtime.execute(&job.pipeline, state))
    }

    /// Execute one lowered plan over many per-job states — the single-spine
    /// analogue of [`BatchRunner::run_states`], used by the optimizer's
    /// plan executor. Owner/lane assignment and outcome ordering are
    /// identical to [`BatchRunner::run`].
    pub fn run_lowered(
        &self,
        runtime: &Runtime,
        plan: &Arc<LoweredPlan>,
        states: Vec<ExecState>,
    ) -> Vec<Result<BatchOutcome>> {
        // Compile once for the whole batch instead of once per job. A plan
        // that fails to compile (i.e. fails verification) falls back to
        // per-job `execute_lowered`, which reproduces the same
        // `InvalidPlan` error in every slot.
        let program = if runtime.config().verify {
            crate::vm::compile(plan).ok().map(Arc::new)
        } else {
            crate::vm::compile_assuming_verified(plan)
                .ok()
                .map(Arc::new)
        };
        let jobs: Vec<(Arc<LoweredPlan>, ExecState)> = states
            .into_iter()
            .map(|state| (Arc::clone(plan), state))
            .collect();
        self.run_jobs(jobs, |(plan, _), state| match &program {
            Some(p) => runtime.execute_program(p, state),
            None => runtime.execute_lowered(plan, state),
        })
    }

    /// Shared batch engine: statically stripe `jobs` across the worker
    /// pool, run each inside its own execution scope, and collect outcomes
    /// in submission order.
    fn run_jobs<J, F>(&self, jobs: Vec<J>, exec: F) -> Vec<Result<BatchOutcome>>
    where
        J: Send + HasState,
        F: Fn(&J, &mut ExecState) -> Result<ExecReport> + Sync,
    {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let owner_base = self.next_owner.fetch_add(n as u64, Ordering::Relaxed);
        let workers = self.workers.min(n);

        // Hand each worker its statically striped slice of jobs. Jobs are
        // moved out of the input vector into per-worker lists up front so
        // no locking is needed during execution.
        let mut per_worker: Vec<Vec<(usize, J)>> = (0..workers).map(|_| Vec::new()).collect();
        for (index, job) in jobs.into_iter().enumerate() {
            per_worker[index % workers].push((index, job));
        }

        let mut slots: Vec<Option<Result<BatchOutcome>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let exec = &exec;
            let handles: Vec<_> = per_worker
                .into_iter()
                .enumerate()
                .map(|(lane, assigned)| {
                    let indices: Vec<usize> = assigned.iter().map(|(i, _)| *i).collect();
                    let handle = s.spawn(move || {
                        let mut produced = Vec::with_capacity(assigned.len());
                        for (index, mut job) in assigned {
                            let owner = owner_base + index as u64;
                            let _scope = scope::enter(owner, lane);
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                let mut state = job.take_state();
                                exec(&job, &mut state).map(|report| BatchOutcome { report, state })
                            }))
                            .unwrap_or(Err(SpearError::WorkerPanicked { lane }));
                            produced.push((index, result));
                        }
                        produced
                    });
                    (lane, indices, handle)
                })
                .collect();
            collect_outcomes(&mut slots, handles);
        });
        seal_slots(slots)
    }

    /// Execute lowered-plan jobs with **caller-chosen lane and owner
    /// placement** — the serving layer's entry point for cache-affinity
    /// routing.
    ///
    /// Where [`BatchRunner::run`] stripes jobs round-robin and allocates a
    /// fresh owner per job (full isolation), `run_assigned` lets the caller
    /// pin each job to a worker lane and cache-owner group: jobs that share
    /// an owner *and* a lane execute sequentially in submission order on
    /// one thread, so they observe each other's prefix-cache insertions
    /// deterministically — the mechanism behind affinity routing
    /// (`spear-serve`). The caller owns the invariant that same-owner jobs
    /// share a lane; violating it forfeits determinism, not safety.
    ///
    /// One scoped thread is spawned per distinct lane in use (never more
    /// than the runner's worker count; lanes wrap modulo it). Outcomes come
    /// back in submission order. Empty input returns immediately without
    /// spawning any threads.
    pub fn run_assigned(
        &self,
        runtime: &Runtime,
        jobs: Vec<AssignedJob>,
    ) -> Vec<Result<BatchOutcome>> {
        let n = jobs.len();
        if n == 0 {
            return Vec::new();
        }
        let lanes = self.workers;
        let mut per_lane: Vec<Vec<(usize, AssignedJob)>> = (0..lanes).map(|_| Vec::new()).collect();
        for (index, job) in jobs.into_iter().enumerate() {
            per_lane[job.lane % lanes].push((index, job));
        }

        let mut slots: Vec<Option<Result<BatchOutcome>>> = (0..n).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = per_lane
                .into_iter()
                .enumerate()
                .filter(|(_, assigned)| !assigned.is_empty())
                .map(|(lane, assigned)| {
                    let indices: Vec<usize> = assigned.iter().map(|(i, _)| *i).collect();
                    let handle = s.spawn(move || {
                        let mut produced = Vec::with_capacity(assigned.len());
                        for (index, mut job) in assigned {
                            let _scope = scope::enter(job.owner, lane);
                            let result = catch_unwind(AssertUnwindSafe(|| {
                                let mut state = std::mem::take(&mut job.state);
                                match job.program.as_deref() {
                                    Some(program) => runtime.execute_program(program, &mut state),
                                    None => runtime.execute_lowered(&job.plan, &mut state),
                                }
                                .map(|report| BatchOutcome { report, state })
                            }))
                            .unwrap_or(Err(SpearError::WorkerPanicked { lane }));
                            produced.push((index, result));
                        }
                        produced
                    });
                    (lane, indices, handle)
                })
                .collect();
            collect_outcomes(&mut slots, handles);
        });
        seal_slots(slots)
    }

    /// Common case: run the *same* pipeline over many per-job states.
    pub fn run_states(
        &self,
        runtime: &Runtime,
        pipeline: &Arc<Pipeline>,
        states: Vec<ExecState>,
    ) -> Vec<Result<BatchOutcome>> {
        self.run(
            runtime,
            states
                .into_iter()
                .map(|state| BatchJob::new(Arc::clone(pipeline), state))
                .collect(),
        )
    }
}

/// One spawned worker: its lane, the job indices it owns, and its handle.
type WorkerHandle<'scope> = (
    usize,
    Vec<usize>,
    std::thread::ScopedJoinHandle<'scope, Vec<(usize, Result<BatchOutcome>)>>,
);

/// Join every worker and place its results; a worker whose thread died
/// despite per-job `catch_unwind` marks all of its assigned slots with
/// [`SpearError::WorkerPanicked`] instead of poisoning the batch.
fn collect_outcomes(slots: &mut [Option<Result<BatchOutcome>>], handles: Vec<WorkerHandle<'_>>) {
    for (lane, indices, handle) in handles {
        match handle.join() {
            Ok(produced) => {
                for (index, result) in produced {
                    slots[index] = Some(result);
                }
            }
            Err(_) => {
                for index in indices {
                    slots[index] = Some(Err(SpearError::WorkerPanicked { lane }));
                }
            }
        }
    }
}

/// Turn the slot table into the final outcome vector. Every index is
/// assigned to exactly one worker, so an unfilled slot is a bug in this
/// module — reported as a typed error, not a panic.
fn seal_slots(slots: Vec<Option<Result<BatchOutcome>>>) -> Vec<Result<BatchOutcome>> {
    slots
        .into_iter()
        .map(|slot| {
            slot.unwrap_or_else(|| Err(SpearError::Internal("job slot never filled".into())))
        })
        .collect()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::history::RefinementMode;
    use crate::llm::EchoLlm;
    use crate::pipeline::Pipeline;
    use crate::value::Value;

    fn runtime() -> Runtime {
        Runtime::builder().llm(Arc::new(EchoLlm::default())).build()
    }

    fn pipeline() -> Arc<Pipeline> {
        Arc::new(
            Pipeline::builder("batch_test")
                .create_text("p", "Answer briefly: {{ctx:q}}", RefinementMode::Manual)
                .gen("a", "p")
                .build(),
        )
    }

    fn state(i: usize) -> ExecState {
        let mut st = ExecState::new();
        st.context.set("q", format!("question number {i}"));
        st
    }

    #[test]
    fn outcomes_come_back_in_submission_order() {
        let rt = runtime();
        let p = pipeline();
        let runner = BatchRunner::new(4);
        let outcomes = runner.run_states(&rt, &p, (0..13).map(state).collect());
        assert_eq!(outcomes.len(), 13);
        for (i, o) in outcomes.iter().enumerate() {
            let o = o.as_ref().expect("job succeeds");
            let answer = o.state.context.get("a").expect("generated");
            let Value::Str(text) = answer else {
                panic!("string answer")
            };
            assert!(
                text.contains(&format!("question number {i}")),
                "slot {i} holds its own job's output: {text}"
            );
        }
    }

    #[test]
    fn worker_count_does_not_change_results() {
        let run_with = |workers: usize| -> Vec<String> {
            let rt = runtime();
            let p = pipeline();
            let runner = BatchRunner::new(workers);
            runner
                .run_states(&rt, &p, (0..10).map(state).collect())
                .into_iter()
                .map(|o| {
                    let o = o.expect("job succeeds");
                    format!(
                        "{:?}|{}",
                        o.report,
                        o.state.trace.to_jsonl().expect("serializable")
                    )
                })
                .collect()
        };
        let one = run_with(1);
        assert_eq!(one, run_with(2));
        assert_eq!(one, run_with(8));
    }

    #[test]
    fn failures_stay_in_their_slot() {
        let rt = runtime();
        let good = pipeline();
        let bad = Arc::new(Pipeline::builder("bad").gen("a", "missing_prompt").build());
        let runner = BatchRunner::new(3);
        let jobs = vec![
            BatchJob::new(Arc::clone(&good), state(0)),
            BatchJob::new(bad, state(1)),
            BatchJob::new(good, state(2)),
        ];
        let outcomes = runner.run(&rt, jobs);
        assert!(outcomes[0].is_ok());
        assert!(outcomes[1].is_err());
        assert!(outcomes[2].is_ok());
    }

    #[test]
    fn panicking_jobs_are_contained_to_their_slot() {
        let rt = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .agent(
                "bomb",
                Arc::new(crate::agent::FnAgent(
                    |_: &Value, _: &crate::context::Context| -> Result<Value> {
                        panic!("intentional test panic")
                    },
                )),
            )
            .build();
        let good = pipeline();
        let bad = Arc::new(
            Pipeline::builder("bomb")
                .delegate("bomb", crate::ops::PayloadSpec::Lit(Value::Null), "out")
                .build(),
        );
        let runner = BatchRunner::new(2);
        let jobs = vec![
            BatchJob::new(Arc::clone(&good), state(0)),
            BatchJob::new(bad, state(1)),
            BatchJob::new(good, state(2)),
        ];
        // Silence the default panic hook for the intentional panic.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let outcomes = runner.run(&rt, jobs);
        std::panic::set_hook(hook);
        assert!(outcomes[0].is_ok());
        assert!(matches!(
            outcomes[1].as_ref().unwrap_err(),
            SpearError::WorkerPanicked { .. }
        ));
        assert!(outcomes[2].is_ok(), "later jobs on the lane keep running");
    }

    #[test]
    fn empty_batch_is_empty() {
        let rt = runtime();
        let runner = BatchRunner::new(8);
        assert!(runner.run(&rt, Vec::new()).is_empty());
    }

    #[test]
    fn empty_input_does_no_work_on_any_entry_point() {
        // Regression: an empty submission must return an empty result
        // before any owner allocation or thread spawn. The owner counter
        // staying untouched is the observable witness that the early
        // return fired.
        let rt = runtime();
        let runner = BatchRunner::new(8);
        let before = runner.next_owner.load(Ordering::Relaxed);
        assert!(runner.run(&rt, Vec::new()).is_empty());
        assert!(runner.run_states(&rt, &pipeline(), Vec::new()).is_empty());
        let plan = Arc::new(crate::plan::lower(&pipeline()).expect("lowers"));
        assert!(runner.run_lowered(&rt, &plan, Vec::new()).is_empty());
        assert!(runner.run_assigned(&rt, Vec::new()).is_empty());
        assert_eq!(
            runner.next_owner.load(Ordering::Relaxed),
            before,
            "empty batches must not consume owner ids"
        );
    }

    #[test]
    fn assigned_jobs_share_lanes_and_keep_submission_order() {
        let rt = runtime();
        let plan = Arc::new(crate::plan::lower(&pipeline()).expect("lowers"));
        let runner = BatchRunner::new(4);
        let jobs: Vec<AssignedJob> = (0..9)
            .map(|i| AssignedJob {
                lane: i % 3,
                owner: 1000 + (i % 3) as u64,
                plan: Arc::clone(&plan),
                program: None,
                state: state(i),
            })
            .collect();
        let outcomes = runner.run_assigned(&rt, jobs);
        assert_eq!(outcomes.len(), 9);
        for (i, o) in outcomes.iter().enumerate() {
            let o = o.as_ref().expect("job succeeds");
            let Value::Str(text) = o.state.context.get("a").expect("generated") else {
                panic!("string answer")
            };
            assert!(
                text.contains(&format!("question number {i}")),
                "slot {i} holds its own job's output: {text}"
            );
        }
    }

    #[test]
    fn assigned_lanes_wrap_modulo_worker_count() {
        let rt = runtime();
        let plan = Arc::new(crate::plan::lower(&pipeline()).expect("lowers"));
        let runner = BatchRunner::new(2);
        let jobs: Vec<AssignedJob> = (0..4)
            .map(|i| AssignedJob {
                lane: 7, // all wrap onto lane 7 % 2 == 1
                owner: 50,
                plan: Arc::clone(&plan),
                program: None,
                state: state(i),
            })
            .collect();
        let outcomes = runner.run_assigned(&rt, jobs);
        assert!(outcomes.iter().all(std::result::Result::is_ok));
    }

    #[test]
    fn owners_are_unique_across_runs() {
        let runner = BatchRunner::new(2);
        let rt = runtime();
        let p = pipeline();
        runner.run_states(&rt, &p, (0..5).map(state).collect());
        let before = runner.next_owner.load(Ordering::Relaxed);
        runner.run_states(&rt, &p, (0..5).map(state).collect());
        assert_eq!(runner.next_owner.load(Ordering::Relaxed), before + 5);
    }
}
