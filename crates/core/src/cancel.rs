//! Cooperative cancellation for in-flight pipeline executions.
//!
//! A serving layer that enforces per-request deadlines needs a way to stop
//! a pipeline *between* operators without poisoning shared state. The
//! execution spine ([`crate::exec`]) checks two signals in its pre-operator
//! gate, so a cancelled execution unwinds through exactly the same trace
//! machinery as a budget violation:
//!
//! - a [`CancelToken`] attached to the job's
//!   [`crate::runtime::ExecState`], which any holder of a clone can trip
//!   (explicit cancellation, client disconnects);
//! - the state's **virtual deadline** (`ExecState::deadline_us`), checked
//!   against the job's own accumulated virtual latency. Because that
//!   latency is a deterministic function of the job's requests and cache
//!   hits — never of wall time or thread interleaving — deadline
//!   cancellations are reproducible under any worker count.
//!
//! Both produce [`crate::error::SpearError::Cancelled`], recorded in the
//! trace like any other operator failure.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A cloneable cancellation flag shared between a controller (e.g. the
/// serving layer) and the execution spine.
///
/// Tokens are level-triggered and one-way: once cancelled, they stay
/// cancelled. The reason string is fixed at construction so that checking
/// the token never requires a lock.
#[derive(Debug, Clone)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
    reason: Arc<str>,
}

impl CancelToken {
    /// A fresh, untripped token with the reason reported if it trips.
    #[must_use]
    pub fn new(reason: impl Into<String>) -> Self {
        Self {
            flag: Arc::new(AtomicBool::new(false)),
            reason: reason.into().into(),
        }
    }

    /// Trip the token. Idempotent; all clones observe the cancellation.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// Whether the token has been tripped.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }

    /// The reason attached at construction.
    #[must_use]
    pub fn reason(&self) -> &str {
        &self.reason
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new("cancelled")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_trips_once_and_shares_across_clones() {
        let t = CancelToken::new("client disconnect");
        let clone = t.clone();
        assert!(!clone.is_cancelled());
        t.cancel();
        assert!(clone.is_cancelled());
        t.cancel(); // idempotent
        assert!(t.is_cancelled());
        assert_eq!(clone.reason(), "client disconnect");
    }

    #[test]
    fn default_reason_is_generic() {
        assert_eq!(CancelToken::default().reason(), "cancelled");
    }

    #[test]
    fn tripped_token_aborts_before_the_next_operator() {
        use crate::error::SpearError;
        use crate::history::RefinementMode;
        use crate::llm::EchoLlm;
        use crate::pipeline::Pipeline;
        use crate::runtime::{ExecState, Runtime};
        use std::sync::Arc;

        let rt = Runtime::builder().llm(Arc::new(EchoLlm::default())).build();
        let p = Pipeline::builder("c")
            .create_text("p", "Answer: {{ctx:q}}", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let token = CancelToken::new("shed");
        token.cancel();
        let mut state = ExecState::new();
        state.context.set("q", "x");
        state.cancel = Some(token);
        let err = rt.execute(&p, &mut state).unwrap_err();
        assert!(
            matches!(&err, SpearError::Cancelled { reason, .. } if reason == "shed"),
            "{err}"
        );
        assert!(
            !state.context.contains("a"),
            "no operator ran after the cancellation point"
        );
    }

    #[test]
    fn virtual_deadline_cancels_between_slots_deterministically() {
        use crate::error::SpearError;
        use crate::history::RefinementMode;
        use crate::llm::EchoLlm;
        use crate::pipeline::Pipeline;
        use crate::runtime::{ExecState, Runtime};
        use crate::trace::TraceKind;
        use std::sync::Arc;

        let rt = Runtime::builder().llm(Arc::new(EchoLlm::default())).build();
        // Two GEN slots; the first charges virtual latency that blows a
        // tiny deadline, so the second must never run — the budget
        // semantics: the call that crosses the line completes, then the
        // pipeline aborts at the next gate.
        let p = Pipeline::builder("d")
            .create_text("p", "Answer briefly: {{ctx:q}}", RefinementMode::Manual)
            .gen("first", "p")
            .gen("second", "p")
            .build();
        let run = |deadline_us: Option<u64>| {
            let mut state = ExecState::new();
            state.context.set("q", "the question");
            state.deadline_us = deadline_us;
            (rt.execute(&p, &mut state), state)
        };
        let (ok, full) = run(None);
        ok.unwrap();
        assert!(full.context.contains("second"));

        let (err, cut) = run(Some(1)); // 1µs: first GEN exceeds it
        let err = err.unwrap_err();
        assert!(
            matches!(&err, SpearError::Cancelled { reason, after_us } if reason == "deadline" && *after_us > 1),
            "{err}"
        );
        assert!(cut.context.contains("first"), "crossing op completed");
        assert!(!cut.context.contains("second"), "next slot never ran");
        assert!(cut.trace.count(TraceKind::Error) >= 1);

        // Deterministic: the same deadline reproduces the same trace.
        let (_, again) = run(Some(1));
        assert_eq!(
            cut.trace.digest().unwrap(),
            again.trace.digest().unwrap(),
            "deadline cancellation is a pure function of virtual time"
        );
    }
}
