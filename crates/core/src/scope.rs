//! Per-thread execution scope: which pipeline instance owns the work the
//! current thread is doing, and which worker lane it runs on.
//!
//! The batch executor ([`crate::batch::BatchRunner`]) runs many pipeline
//! instances concurrently against shared backends (one simulated engine,
//! one prefix cache). Backends that want to stay **deterministic under any
//! thread count** need two pieces of ambient information that the
//! `LlmClient` call signature does not carry:
//!
//! - the **owner**: a nonzero id naming the pipeline instance on whose
//!   behalf the current thread is executing. The prefix cache partitions
//!   private insertions by owner, so a pipeline's cache hits depend only on
//!   the pre-warmed shared blocks plus its *own* history — never on how
//!   concurrent pipelines happened to interleave;
//! - the **lane**: a small worker index. The virtual clock charges latency
//!   to per-lane counters so aggregate busy time *and* the parallel
//!   makespan (max over lanes) are both observable.
//!
//! Outside any batch scope both default to the **ambient** values
//! (`owner == 0`, `lane == 0`), which backends treat exactly like the
//! original single-threaded semantics: everything shared, one clock lane.
//! The scope is plumbed through a thread-local rather than through every
//! operator signature so that backends opt in without an API break.

use std::cell::Cell;

/// Owner id meaning "no particular pipeline": work that should see (and
/// populate) only shared state.
pub const AMBIENT_OWNER: u64 = 0;

thread_local! {
    static SCOPE: Cell<(u64, usize)> = const { Cell::new((AMBIENT_OWNER, 0)) };
}

/// The pipeline-instance owner id the current thread executes for
/// (`AMBIENT_OWNER` when outside any batch scope).
#[must_use]
pub fn owner() -> u64 {
    SCOPE.with(|s| s.get().0)
}

/// The worker lane the current thread charges virtual time to (0 when
/// outside any batch scope).
#[must_use]
pub fn lane() -> usize {
    SCOPE.with(|s| s.get().1)
}

/// Enter an execution scope for the duration of the returned guard.
/// Scopes nest; dropping the guard restores the previous scope.
#[must_use]
pub fn enter(owner: u64, lane: usize) -> ScopeGuard {
    let previous = SCOPE.with(|s| s.replace((owner, lane)));
    ScopeGuard { previous }
}

/// Restores the previous scope on drop (RAII).
#[derive(Debug)]
pub struct ScopeGuard {
    previous: (u64, usize),
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        SCOPE.with(|s| s.set(self.previous));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_ambient() {
        assert_eq!(owner(), AMBIENT_OWNER);
        assert_eq!(lane(), 0);
    }

    #[test]
    fn guard_sets_and_restores() {
        {
            let _g = enter(7, 3);
            assert_eq!(owner(), 7);
            assert_eq!(lane(), 3);
            {
                let _inner = enter(9, 1);
                assert_eq!(owner(), 9);
                assert_eq!(lane(), 1);
            }
            assert_eq!(owner(), 7);
            assert_eq!(lane(), 3);
        }
        assert_eq!(owner(), AMBIENT_OWNER);
        assert_eq!(lane(), 0);
    }

    #[test]
    fn scope_is_per_thread() {
        let _g = enter(5, 2);
        std::thread::spawn(|| {
            assert_eq!(owner(), AMBIENT_OWNER);
            assert_eq!(lane(), 0);
        })
        .join()
        .unwrap();
        assert_eq!(owner(), 5);
    }
}
