//! Prompt histories: the embedded `ref_log` (paper §4.3).
//!
//! "SPEAR tracks each prompt fragment's evolution over time through an
//! embedded ref_log, which records refinements applied to a prompt along
//! with metadata, such as the refinement function, action type, and
//! triggering condition."
//!
//! Each record also snapshots the runtime signals at application time and
//! the resulting text, which makes rollback, replay, and meta-optimization
//! (§4.4) possible without external state.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// The action type of a refinement (the first argument of `REF[action, f]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RefAction {
    /// Construct the entry (or replace it wholesale with a fresh lineage).
    Create,
    /// Append text to the end of the prompt.
    Append,
    /// Prepend text to the start of the prompt.
    Prepend,
    /// Transform the existing text (rewrite, inject, normalize, …).
    Update,
    /// Result of a MERGE of two prompt fragments.
    Merge,
    /// Restored an earlier version.
    Rollback,
}

impl fmt::Display for RefAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RefAction::Create => "CREATE",
            RefAction::Append => "APPEND",
            RefAction::Prepend => "PREPEND",
            RefAction::Update => "UPDATE",
            RefAction::Merge => "MERGE",
            RefAction::Rollback => "ROLLBACK",
        };
        f.write_str(s)
    }
}

/// Who (or what) selected and executed the refinement function (paper §4.1).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub enum RefinementMode {
    /// The user wrote and applied the refinement explicitly.
    #[default]
    Manual,
    /// The user provided high-level intent; an LLM generated the refinement.
    Assisted,
    /// The system monitored runtime metadata and triggered the refinement.
    Auto,
}

impl fmt::Display for RefinementMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RefinementMode::Manual => "MANUAL",
            RefinementMode::Assisted => "ASSISTED",
            RefinementMode::Auto => "AUTO",
        };
        f.write_str(s)
    }
}

/// One step in a prompt's evolution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RefLogRecord {
    /// Executor step at which the refinement was applied (0 outside a
    /// pipeline run).
    pub step: u64,
    /// Action type.
    pub action: RefAction,
    /// Name of the refinement function `f` (e.g. `"f_add_reasoning_hint"`).
    pub f_name: String,
    /// Refinement mode in force.
    pub mode: RefinementMode,
    /// The condition that triggered the refinement, if any — e.g.
    /// `M["confidence"] < 0.7` rendered as text.
    pub trigger: Option<String>,
    /// Runtime signal snapshot at application time (confidence, latency, …).
    pub signals: BTreeMap<String, Value>,
    /// The prompt version this record produced.
    pub version: u64,
    /// The full prompt text after this refinement. Storing the text (not a
    /// diff) keeps rollback and replay trivially correct at the cost of
    /// memory proportional to history length; the store prunes old versions.
    pub text_after: String,
    /// Free-form note from the refiner (e.g. the assisted LLM's rationale).
    pub note: Option<String>,
}

impl RefLogRecord {
    /// Compact single-line rendering for logs and meta prompts.
    #[must_use]
    pub fn summary(&self) -> String {
        let trigger = self
            .trigger
            .as_deref()
            .map(|t| format!(" on {t}"))
            .unwrap_or_default();
        format!(
            "v{} {} {} f={}{trigger}",
            self.version, self.mode, self.action, self.f_name
        )
    }
}

/// Query helpers over a slice of ref-log records.
pub trait RefLogExt {
    /// Records applied in a given mode.
    fn in_mode(&self, mode: RefinementMode) -> Vec<&RefLogRecord>;
    /// The record that produced `version`, if retained.
    fn at_version(&self, version: u64) -> Option<&RefLogRecord>;
    /// Confidence signal trajectory: `(version, confidence)` for records
    /// that captured one.
    fn confidence_trajectory(&self) -> Vec<(u64, f64)>;
}

impl RefLogExt for [RefLogRecord] {
    fn in_mode(&self, mode: RefinementMode) -> Vec<&RefLogRecord> {
        self.iter().filter(|r| r.mode == mode).collect()
    }

    fn at_version(&self, version: u64) -> Option<&RefLogRecord> {
        self.iter().find(|r| r.version == version)
    }

    fn confidence_trajectory(&self) -> Vec<(u64, f64)> {
        self.iter()
            .filter_map(|r| {
                r.signals
                    .get("confidence")
                    .and_then(Value::as_f64)
                    .map(|c| (r.version, c))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(version: u64, mode: RefinementMode, conf: Option<f64>) -> RefLogRecord {
        let mut signals = BTreeMap::new();
        if let Some(c) = conf {
            signals.insert("confidence".to_string(), Value::from(c));
        }
        RefLogRecord {
            step: version,
            action: if version == 1 {
                RefAction::Create
            } else {
                RefAction::Update
            },
            f_name: format!("f_{version}"),
            mode,
            trigger: None,
            signals,
            version,
            text_after: format!("text v{version}"),
            note: None,
        }
    }

    #[test]
    fn summary_is_compact_and_complete() {
        let mut r = record(2, RefinementMode::Auto, None);
        r.trigger = Some("M[\"confidence\"] < 0.7".into());
        let s = r.summary();
        assert!(s.contains("v2"));
        assert!(s.contains("AUTO"));
        assert!(s.contains("UPDATE"));
        assert!(s.contains("f_2"));
        assert!(s.contains("confidence"));
    }

    #[test]
    fn mode_filtering() {
        let log = [
            record(1, RefinementMode::Manual, None),
            record(2, RefinementMode::Assisted, None),
            record(3, RefinementMode::Auto, None),
            record(4, RefinementMode::Auto, None),
        ];
        assert_eq!(log.in_mode(RefinementMode::Auto).len(), 2);
        assert_eq!(log.in_mode(RefinementMode::Manual).len(), 1);
    }

    #[test]
    fn version_lookup_and_trajectory() {
        let log = [
            record(1, RefinementMode::Manual, Some(0.5)),
            record(2, RefinementMode::Auto, None),
            record(3, RefinementMode::Auto, Some(0.8)),
        ];
        assert_eq!(log.at_version(2).unwrap().f_name, "f_2");
        assert!(log.at_version(9).is_none());
        assert_eq!(log.confidence_trajectory(), vec![(1, 0.5), (3, 0.8)]);
    }

    #[test]
    fn serde_roundtrip_matches_paper_shape() {
        // The paper's example: {"action": "CREATE", "f": "f_base"} etc.
        let r = record(1, RefinementMode::Manual, Some(0.7));
        let json = serde_json::to_string(&r).unwrap();
        let back: RefLogRecord = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert!(json.contains("\"Create\""));
    }

    #[test]
    fn display_of_enums() {
        assert_eq!(RefAction::Create.to_string(), "CREATE");
        assert_eq!(RefinementMode::Assisted.to_string(), "ASSISTED");
    }
}
