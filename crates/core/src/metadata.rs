//! The runtime metadata **M**.
//!
//! "Metadata (M) is a collection of control signals and diagnostic
//! information that is used to guide conditional execution and adaptation."
//! (paper §3.2). CHECK operators query M; the optimizer mines it for
//! cost-based refinement planning.

use std::collections::BTreeMap;
use std::time::Duration;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// Token accounting for a single generation or an accumulated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TokenUsage {
    /// Tokens in the prompt (prefill), including cached ones.
    pub prompt_tokens: u64,
    /// Prompt tokens served from the prefix cache (⊆ `prompt_tokens`).
    pub cached_tokens: u64,
    /// Tokens generated (decode).
    pub completion_tokens: u64,
}

impl TokenUsage {
    /// Total tokens moved (prompt + completion).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.prompt_tokens + self.completion_tokens
    }

    /// Fraction of prompt tokens served from cache, in `[0, 1]`; `None` when
    /// the prompt was empty.
    #[must_use]
    pub fn cache_hit_rate(&self) -> Option<f64> {
        if self.prompt_tokens == 0 {
            None
        } else {
            Some(self.cached_tokens as f64 / self.prompt_tokens as f64)
        }
    }

    /// Accumulate another usage into this one.
    pub fn absorb(&mut self, other: TokenUsage) {
        self.prompt_tokens += other.prompt_tokens;
        self.cached_tokens += other.cached_tokens;
        self.completion_tokens += other.completion_tokens;
    }
}

/// One GEN's interaction with the backend's generation-reuse memo
/// (recorded only when the execution ran under
/// [`crate::llm::ReusePolicy::Exact`]). The serving layer harvests these
/// to build its deterministic reuse ledger; they never feed the trace, so
/// digests are reuse-invariant by construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReuseEvent {
    /// The backend's memo key for this call's reuse identity.
    pub key: u64,
    /// Whether the call adopted a memoized execution (vs seeding one).
    pub reused: bool,
    /// Prompt tokens of the call (what reuse avoids re-prefilling).
    pub prompt_tokens: u64,
    /// Completion tokens of the call (what reuse avoids re-decoding).
    pub completion_tokens: u64,
}

/// The metadata store **M**: named signals plus standing counters.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metadata {
    signals: BTreeMap<String, Value>,
    /// Number of GEN invocations so far.
    pub gen_calls: u64,
    /// Number of REF applications so far.
    pub ref_calls: u64,
    /// Number of retry iterations taken by RETRY patterns.
    pub retries: u64,
    /// Accumulated token usage across all GEN calls.
    pub usage: TokenUsage,
    /// Accumulated (virtual) latency across all LLM and retrieval calls,
    /// in microseconds. Stored as an integer so M serializes exactly.
    pub latency_us: u64,
    /// Per-GEN reuse ledger (empty unless the run executed with reuse
    /// enabled). `#[serde(default)]` keeps pre-reuse serialized states
    /// deserializable.
    #[serde(default)]
    pub reuse_events: Vec<ReuseEvent>,
}

impl Metadata {
    /// Create empty metadata.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a signal (e.g. `M["confidence"]`).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Value> {
        self.signals.get(key).cloned()
    }

    /// Whether a signal is present.
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.signals.contains_key(key)
    }

    /// Set a signal.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.signals.insert(key.into(), value.into());
    }

    /// Remove a signal.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.signals.remove(key)
    }

    /// All signal keys, sorted.
    #[must_use]
    pub fn signal_keys(&self) -> Vec<&str> {
        self.signals.keys().map(String::as_str).collect()
    }

    /// Accumulated latency as a [`Duration`].
    #[must_use]
    pub fn latency(&self) -> Duration {
        Duration::from_micros(self.latency_us)
    }

    /// Record one generation's cost into the standing counters and refresh
    /// the conventional signals (`confidence`, `latency_ms`, `tokens`).
    pub fn record_gen(&mut self, usage: TokenUsage, latency: Duration, confidence: f64) {
        self.gen_calls += 1;
        self.usage.absorb(usage);
        self.latency_us += u64::try_from(latency.as_micros()).unwrap_or(u64::MAX);
        self.set("confidence", confidence);
        self.set("latency_ms", latency.as_secs_f64() * 1e3);
        self.set("tokens", usage.total());
    }

    /// Append one GEN's reuse-memo interaction to the ledger (see
    /// [`ReuseEvent`]).
    pub fn record_reuse(&mut self, key: u64, reused: bool, usage: TokenUsage) {
        self.reuse_events.push(ReuseEvent {
            key,
            reused,
            prompt_tokens: usage.prompt_tokens,
            completion_tokens: usage.completion_tokens,
        });
    }

    /// Snapshot of all signals (for ref_log records and traces).
    #[must_use]
    pub fn signal_snapshot(&self) -> BTreeMap<String, Value> {
        self.signals.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signals_set_get_remove() {
        let mut m = Metadata::new();
        m.set("confidence", 0.62);
        assert!(m.contains("confidence"));
        assert_eq!(m.get("confidence").unwrap().as_f64(), Some(0.62));
        assert!(m.remove("confidence").is_some());
        assert!(!m.contains("confidence"));
        assert_eq!(m.get("confidence"), None);
    }

    #[test]
    fn record_gen_updates_counters_and_signals() {
        let mut m = Metadata::new();
        let usage = TokenUsage {
            prompt_tokens: 100,
            cached_tokens: 80,
            completion_tokens: 20,
        };
        m.record_gen(usage, Duration::from_millis(15), 0.9);
        m.record_gen(usage, Duration::from_millis(5), 0.4);

        assert_eq!(m.gen_calls, 2);
        assert_eq!(m.usage.prompt_tokens, 200);
        assert_eq!(m.usage.cached_tokens, 160);
        assert_eq!(m.usage.completion_tokens, 40);
        assert_eq!(m.latency(), Duration::from_millis(20));
        // Signals reflect the LAST generation.
        assert_eq!(m.get("confidence").unwrap().as_f64(), Some(0.4));
        assert_eq!(m.get("tokens").unwrap().as_i64(), Some(120));
    }

    #[test]
    fn token_usage_math() {
        let u = TokenUsage {
            prompt_tokens: 200,
            cached_tokens: 50,
            completion_tokens: 30,
        };
        assert_eq!(u.total(), 230);
        assert!((u.cache_hit_rate().unwrap() - 0.25).abs() < 1e-12);
        assert_eq!(TokenUsage::default().cache_hit_rate(), None);
    }

    #[test]
    fn signal_snapshot_is_independent_copy() {
        let mut m = Metadata::new();
        m.set("a", 1);
        let snap = m.signal_snapshot();
        m.set("a", 2);
        assert_eq!(snap.get("a").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = Metadata::new();
        m.set("confidence", 0.7);
        m.retries = 3;
        let json = serde_json::to_string(&m).unwrap();
        let back: Metadata = serde_json::from_str(&json).unwrap();
        assert_eq!(back.retries, 3);
        assert_eq!(back.get("confidence").unwrap().as_f64(), Some(0.7));
    }
}
