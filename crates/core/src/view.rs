//! Prompt views (paper §4.2).
//!
//! "A view is a reusable named prompt that encapsulates structured prompt
//! construction. Much like views in a database system, SPEAR views abstract
//! recurring prompt patterns and enable their reuse across tasks, contexts,
//! and runtime conditions." Views are *parameterized* (declared parameters
//! with optional defaults), *composable* (templates may reference other
//! views with `{{view:name}}`), *versioned* (re-registering bumps the
//! version), and *taggable* (for runtime dispatch across note types).

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};
use spear_kv::shard::fnv1a;
use spear_kv::KvStore;

use crate::error::{Result, SpearError};
use crate::history::RefinementMode;
use crate::prompt::{PromptEntry, PromptOrigin};
use crate::value::Value;

/// A declared view parameter.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParamSpec {
    /// Parameter name (matched against `{{name}}` in the template).
    pub name: String,
    /// Whether instantiation must supply it.
    pub required: bool,
    /// Default used when not supplied (only meaningful if not required).
    pub default: Option<Value>,
}

impl ParamSpec {
    /// A required parameter.
    #[must_use]
    pub fn required(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            required: true,
            default: None,
        }
    }

    /// An optional parameter with a default.
    #[must_use]
    pub fn optional(name: impl Into<String>, default: impl Into<Value>) -> Self {
        Self {
            name: name.into(),
            required: false,
            default: Some(default.into()),
        }
    }
}

/// A named, versioned prompt view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ViewDef {
    /// View name.
    pub name: String,
    /// Template text; may contain `{{param}}` and `{{view:other}}`.
    pub template: String,
    /// Declared parameters.
    pub params: Vec<ParamSpec>,
    /// Tags for dispatch (e.g. `"discharge_summary"`).
    pub tags: BTreeSet<String>,
    /// Version, managed by the catalog (1 on first registration).
    pub version: u64,
    /// Human-readable description.
    pub description: String,
}

impl ViewDef {
    /// Create a view definition (version is assigned at registration).
    #[must_use]
    pub fn new(name: impl Into<String>, template: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            template: template.into(),
            params: Vec::new(),
            tags: BTreeSet::new(),
            version: 0,
            description: String::new(),
        }
    }

    /// Builder-style: declare a parameter.
    #[must_use]
    pub fn with_param(mut self, spec: ParamSpec) -> Self {
        self.params.push(spec);
        self
    }

    /// Builder-style: add a tag.
    #[must_use]
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.insert(tag.into());
        self
    }

    /// Builder-style: set the description.
    #[must_use]
    pub fn with_description(mut self, d: impl Into<String>) -> Self {
        self.description = d.into();
        self
    }
}

/// Stable hash of instantiation arguments, used in cache identities.
#[must_use]
pub fn param_hash(args: &BTreeMap<String, Value>) -> u64 {
    let mut repr = String::new();
    for (k, v) in args {
        repr.push_str(k);
        repr.push('=');
        repr.push_str(&v.render());
        repr.push(';');
    }
    fnv1a(repr.as_bytes())
}

/// The catalog of registered views.
///
/// Cloning the catalog clones the handle (shared storage).
#[derive(Clone, Debug)]
pub struct ViewCatalog {
    store: KvStore<ViewDef>,
}

impl Default for ViewCatalog {
    fn default() -> Self {
        Self::new()
    }
}

impl ViewCatalog {
    /// Empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Self {
            store: KvStore::new(),
        }
    }

    /// Register (or re-register) a view. Returns the assigned version:
    /// 1 for a new view, previous+1 when redefining.
    pub fn register(&self, mut view: ViewDef) -> u64 {
        let next = self.store.get(&view.name).map_or(1, |v| v.version + 1);
        view.version = next;
        self.store.put(view.name.clone(), view);
        next
    }

    /// Fetch the latest definition of `name`.
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::ViewNotFound`] when absent.
    pub fn get(&self, name: &str) -> Result<ViewDef> {
        self.store
            .get(name)
            .ok_or_else(|| SpearError::ViewNotFound(name.to_string()))
    }

    /// Fetch a historical version of `name` (if still retained).
    ///
    /// # Errors
    ///
    /// Returns [`SpearError::ViewNotFound`] when absent.
    pub fn get_version(&self, name: &str, version: u64) -> Result<ViewDef> {
        self.store
            .history(name)
            .into_iter()
            .filter_map(|v| v.value)
            .find(|v| v.version == version)
            .ok_or_else(|| SpearError::ViewNotFound(format!("{name}@v{version}")))
    }

    /// Whether `name` is registered.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.store.contains(name)
    }

    /// All view names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.store.keys()
    }

    /// Names of views carrying `tag`, sorted — the dispatch primitive behind
    /// "different types of input notes may invoke different views".
    #[must_use]
    pub fn names_with_tag(&self, tag: &str) -> Vec<String> {
        self.names()
            .into_iter()
            .filter(|n| self.store.get(n).is_some_and(|v| v.tags.contains(tag)))
            .collect()
    }

    /// Instantiate `name` with `args` into a [`PromptEntry`].
    ///
    /// Composition: `{{view:child}}` references in the template are expanded
    /// recursively (children see the same argument map). Parameter
    /// placeholders stay in the entry's text; supplied arguments and
    /// defaults become entry params, so the entry renders against context at
    /// GEN time like any other structured prompt.
    ///
    /// # Errors
    ///
    /// [`SpearError::ViewNotFound`], [`SpearError::MissingViewParam`], or
    /// [`SpearError::ViewCycle`].
    pub fn instantiate(&self, name: &str, args: BTreeMap<String, Value>) -> Result<PromptEntry> {
        let view = self.get(name)?;
        let mut path = Vec::new();
        let text = self.expand(&view, &mut path)?;

        // Check required params and collect effective values.
        let mut params = BTreeMap::new();
        for spec in self.all_param_specs(&view)? {
            match args.get(&spec.name) {
                Some(v) => {
                    params.insert(spec.name.clone(), v.clone());
                }
                None => match (&spec.required, &spec.default) {
                    (true, _) => {
                        return Err(SpearError::MissingViewParam {
                            view: name.to_string(),
                            param: spec.name.clone(),
                        })
                    }
                    (false, Some(d)) => {
                        params.insert(spec.name.clone(), d.clone());
                    }
                    (false, None) => {}
                },
            }
        }
        // Extra args beyond declared specs are allowed and kept (views can be
        // under-declared; template rendering will use them).
        for (k, v) in &args {
            params.entry(k.clone()).or_insert_with(|| v.clone());
        }

        let hash = param_hash(&args);
        let mut entry = PromptEntry::new(text, &format!("view:{name}"), RefinementMode::Manual)
            .with_origin(PromptOrigin::View {
                name: name.to_string(),
                version: view.version,
                param_hash: hash,
            });
        entry.params = params;
        entry.tags = view.tags.clone();
        Ok(entry)
    }

    /// Recursively expand `{{view:child}}` references.
    fn expand(&self, view: &ViewDef, path: &mut Vec<String>) -> Result<String> {
        if path.contains(&view.name) {
            let mut cycle = path.clone();
            cycle.push(view.name.clone());
            return Err(SpearError::ViewCycle(cycle));
        }
        path.push(view.name.clone());
        let segments = crate::template::parse(&view.template)?;
        let mut out = String::with_capacity(view.template.len());
        for seg in segments {
            match seg {
                crate::template::Segment::Text(t) => out.push_str(&t),
                crate::template::Segment::Placeholder { source, name } => {
                    if source.as_deref() == Some("view") {
                        let child = self.get(&name)?;
                        out.push_str(&self.expand(&child, path)?);
                    } else {
                        // Re-emit non-view placeholders verbatim for GEN-time
                        // rendering.
                        match source {
                            Some(src) => {
                                out.push_str("{{");
                                out.push_str(&src);
                                out.push(':');
                                out.push_str(&name);
                                out.push_str("}}");
                            }
                            None => {
                                out.push_str("{{");
                                out.push_str(&name);
                                out.push_str("}}");
                            }
                        }
                    }
                }
            }
        }
        path.pop();
        Ok(out)
    }

    /// Parameter specs of a view plus all views it (transitively) composes.
    fn all_param_specs(&self, view: &ViewDef) -> Result<Vec<ParamSpec>> {
        let mut specs = Vec::new();
        let mut stack = vec![view.clone()];
        let mut seen = BTreeSet::new();
        while let Some(v) = stack.pop() {
            if !seen.insert(v.name.clone()) {
                continue; // cycle handled by expand(); avoid looping here
            }
            specs.extend(v.params.iter().cloned());
            for seg in crate::template::parse(&v.template)? {
                if let crate::template::Segment::Placeholder {
                    source: Some(src),
                    name,
                } = seg
                {
                    if src == "view" {
                        if let Ok(child) = self.get(&name) {
                            stack.push(child);
                        }
                    }
                }
            }
        }
        Ok(specs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(pairs: &[(&str, Value)]) -> BTreeMap<String, Value> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).to_string(), v.clone()))
            .collect()
    }

    fn catalog() -> ViewCatalog {
        let c = ViewCatalog::new();
        c.register(
            ViewDef::new(
                "med_summary",
                "Summarize the patient's medication history and highlight any use of {{drug}}.",
            )
            .with_param(ParamSpec::required("drug"))
            .with_tag("clinical"),
        );
        c
    }

    #[test]
    fn register_and_instantiate() {
        let c = catalog();
        let entry = c
            .instantiate("med_summary", args(&[("drug", Value::from("Enoxaparin"))]))
            .unwrap();
        assert!(
            entry.text.contains("{{drug}}"),
            "placeholder kept for render"
        );
        assert_eq!(
            entry.params.get("drug").unwrap().as_str(),
            Some("Enoxaparin")
        );
        assert!(entry.derives_from_view("med_summary"));
        assert!(entry.tags.contains("clinical"));

        let rendered = entry.render(&crate::context::Context::new()).unwrap();
        assert!(rendered.contains("Enoxaparin"));
    }

    #[test]
    fn missing_required_param_errors() {
        let c = catalog();
        let err = c.instantiate("med_summary", BTreeMap::new()).unwrap_err();
        assert!(matches!(err, SpearError::MissingViewParam { .. }));
    }

    #[test]
    fn optional_params_take_defaults() {
        let c = ViewCatalog::new();
        c.register(
            ViewDef::new("limited", "Answer in at most {{word_limit}} words.")
                .with_param(ParamSpec::optional("word_limit", 50)),
        );
        let entry = c.instantiate("limited", BTreeMap::new()).unwrap();
        assert_eq!(entry.params.get("word_limit").unwrap().as_i64(), Some(50));
    }

    #[test]
    fn reregistration_bumps_version() {
        let c = catalog();
        assert_eq!(c.get("med_summary").unwrap().version, 1);
        let v2 = c.register(ViewDef::new("med_summary", "revised template {{drug}}"));
        assert_eq!(v2, 2);
        assert_eq!(c.get("med_summary").unwrap().version, 2);
        // Old version remains retrievable.
        let v1 = c.get_version("med_summary", 1).unwrap();
        assert!(v1.template.contains("highlight"));
    }

    #[test]
    fn composition_expands_nested_views() {
        let c = ViewCatalog::new();
        c.register(ViewDef::new("format", "Respond in bullet points."));
        c.register(
            ViewDef::new(
                "med_justification",
                "Why was {{drug}} administered?\n{{view:format}}",
            )
            .with_param(ParamSpec::required("drug")),
        );
        let entry = c
            .instantiate(
                "med_justification",
                args(&[("drug", Value::from("Enoxaparin"))]),
            )
            .unwrap();
        assert!(entry.text.contains("bullet points"));
        assert!(!entry.text.contains("view:"));
    }

    #[test]
    fn composition_cycles_are_detected() {
        let c = ViewCatalog::new();
        c.register(ViewDef::new("a", "A then {{view:b}}"));
        c.register(ViewDef::new("b", "B then {{view:a}}"));
        let err = c.instantiate("a", BTreeMap::new()).unwrap_err();
        assert!(matches!(err, SpearError::ViewCycle(_)));
    }

    #[test]
    fn nested_required_params_are_enforced() {
        let c = ViewCatalog::new();
        c.register(
            ViewDef::new("inner", "Focus on {{topic}}.").with_param(ParamSpec::required("topic")),
        );
        c.register(ViewDef::new("outer", "Task.\n{{view:inner}}"));
        assert!(matches!(
            c.instantiate("outer", BTreeMap::new()),
            Err(SpearError::MissingViewParam { .. })
        ));
        assert!(c
            .instantiate("outer", args(&[("topic", Value::from("dosage"))]))
            .is_ok());
    }

    #[test]
    fn tag_dispatch_lists_matching_views() {
        let c = ViewCatalog::new();
        c.register(ViewDef::new("discharge_summary", "t").with_tag("discharge"));
        c.register(ViewDef::new("radiology_summary", "t").with_tag("radiology"));
        c.register(ViewDef::new("nursing_note", "t").with_tag("nursing"));
        assert_eq!(
            c.names_with_tag("radiology"),
            vec!["radiology_summary".to_string()]
        );
        assert!(c.names_with_tag("none").is_empty());
    }

    #[test]
    fn param_hash_is_stable_and_order_independent() {
        let a = args(&[("x", Value::from(1)), ("y", Value::from("z"))]);
        let mut b = BTreeMap::new();
        b.insert("y".to_string(), Value::from("z"));
        b.insert("x".to_string(), Value::from(1));
        assert_eq!(param_hash(&a), param_hash(&b));
        let c = args(&[("x", Value::from(2)), ("y", Value::from("z"))]);
        assert_ne!(param_hash(&a), param_hash(&c));
    }

    #[test]
    fn unknown_view_errors() {
        let c = ViewCatalog::new();
        assert!(matches!(
            c.instantiate("ghost", BTreeMap::new()),
            Err(SpearError::ViewNotFound(_))
        ));
        assert!(!c.contains("ghost"));
    }

    #[test]
    fn extra_args_are_preserved() {
        let c = catalog();
        let entry = c
            .instantiate(
                "med_summary",
                args(&[
                    ("drug", Value::from("Enoxaparin")),
                    ("audience", Value::from("nurse")),
                ]),
            )
            .unwrap();
        assert_eq!(
            entry.params.get("audience").unwrap().as_str(),
            Some("nurse")
        );
    }
}
