//! The lowered plan IR: a flat instruction form for pipelines.
//!
//! A [`Pipeline`] is a tree (CHECK nests its branches); the executor spine
//! wants a flat program it can step with a program counter — the same move
//! a query engine makes when it lowers a logical plan into a physical one.
//! [`lower`] flattens the operator tree into a [`LoweredPlan`]: every
//! non-CHECK operator becomes a [`LoweredOp::Leaf`], every CHECK becomes a
//! [`LoweredOp::Check`] with an explicit `on_false` jump target, and a
//! then-branch followed by an else-branch ends in a [`LoweredOp::Jump`]
//! over the else block.
//!
//! Two pieces of tree-shaped bookkeeping are baked into the instructions so
//! the flat interpreter reproduces the tree walk byte-for-byte:
//!
//! - **triggers** — a REF inside a CHECK branch records the branch's
//!   condition text in its ref_log; each leaf carries the trigger of its
//!   innermost enclosing branch.
//! - **frames** — when an operator fails, the tree walk records one
//!   `Error` trace event per enclosing CHECK while unwinding; each
//!   instruction carries the `describe()` strings of its enclosing CHECKs
//!   (outermost first) so the spine can replay that unwind.
//!
//! Both executors — [`crate::runtime::Runtime::execute`] over this IR and
//! the reference tree walk kept as
//! [`crate::runtime::Runtime::execute_tree`] — are differentially tested
//! for byte-identical traces (`tests/trace_equivalence.rs`).

use serde::{Deserialize, Serialize};

use crate::condition::Cond;
use crate::history::RefAction;
use crate::ops::{Op, PromptRef};
use crate::pipeline::Pipeline;
use crate::value::Value;

/// One instruction of the lowered IR.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LoweredOp {
    /// A data operator (never [`Op::Check`]) executed by its per-operator
    /// executor; falls through to the next instruction.
    Leaf {
        /// The operator.
        op: Op,
        /// Condition text of the innermost enclosing CHECK branch (negated
        /// for else-branches); REF records it as the ref_log trigger.
        trigger: Option<String>,
        /// `describe()` of enclosing CHECKs, outermost first (error unwind).
        frames: Vec<String>,
    },
    /// Evaluate a condition: fall through when it holds, jump to `on_false`
    /// otherwise.
    Check {
        /// The condition over (C, M).
        cond: Cond,
        /// Jump target when the condition is false (first instruction after
        /// the then-branch, or into the else-branch when one exists).
        on_false: usize,
        /// `describe()` of enclosing CHECKs, outermost first.
        frames: Vec<String>,
    },
    /// Unconditional jump (closes a then-branch that is followed by an
    /// else-branch). Free: consumes no op budget and records no trace.
    Jump {
        /// Target instruction index.
        target: usize,
    },
}

impl LoweredOp {
    /// Compact one-line rendering in the paper's notation.
    #[must_use]
    pub fn describe(&self) -> String {
        match self {
            LoweredOp::Leaf { op, .. } => op.describe(),
            LoweredOp::Check { cond, on_false, .. } => {
                format!("CHECK[{cond}] else -> {on_false:04}")
            }
            LoweredOp::Jump { target } => format!("JUMP -> {target:04}"),
        }
    }
}

/// A pipeline lowered to a flat instruction list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoweredPlan {
    /// Name of the source pipeline (used in traces).
    pub name: String,
    /// `Pipeline::size()` of the source — the op count the trace's
    /// `PipelineStart` event reports (jumps are not counted).
    pub source_size: u64,
    /// The instructions.
    pub ops: Vec<LoweredOp>,
}

impl LoweredPlan {
    /// Multi-line rendering: one instruction per line with its index.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut out = format!("LOWERED PLAN {:?}\n", self.name);
        for (pc, op) in self.ops.iter().enumerate() {
            out.push_str(&format!("  {pc:04}  {}\n", op.describe()));
        }
        out
    }

    /// The plan's **cache-affinity key**: a stable identity for the prompt
    /// prefix its first generation will prefill, or `None` when the plan
    /// only uses opaque ad-hoc prompts.
    ///
    /// Two plans with equal affinity keys render prompts that share a
    /// prefix (same view + parameters, or same base text), so a serving
    /// layer that routes them to the same cache stripe and worker lane
    /// maximizes radix-tree prefix reuse — the scheduling analogue of the
    /// engine's "structure gates caching" rule. The key is derived from the
    /// same structured identities the prefix cache keys on
    /// ([`crate::prompt::PromptEntry::cache_identity`]):
    ///
    /// - the first `REF[CREATE, from_view]` instruction →
    ///   `view:{name}#{param_hash:x}`,
    /// - else the first GEN over an inline view or an identity-carrying
    ///   lowered template → that identity,
    /// - else the first `REF[CREATE, set_text]` → `text:{fnv1a(text):x}`
    ///   (identical base texts share a prefix even without a view),
    /// - else `None`: nothing about the plan predicts prefix reuse.
    #[must_use]
    pub fn affinity_key(&self) -> Option<String> {
        for instr in &self.ops {
            let LoweredOp::Leaf { op, .. } = instr else {
                continue;
            };
            match op {
                Op::Ref {
                    action: RefAction::Create,
                    refiner,
                    args,
                    ..
                } if refiner == "from_view" => {
                    let name = args.path("view")?.as_str()?.to_string();
                    let params = match args.path("args") {
                        Some(Value::Map(m)) => crate::view::param_hash(m),
                        _ => crate::view::param_hash(&std::collections::BTreeMap::new()),
                    };
                    return Some(format!("view:{name}#{params:x}"));
                }
                Op::Ref {
                    action: RefAction::Create,
                    refiner,
                    args,
                    ..
                } if refiner == "set_text" => {
                    let text = args.as_str()?;
                    return Some(format!(
                        "text:{:x}",
                        spear_kv::shard::fnv1a(text.as_bytes())
                    ));
                }
                Op::Gen { prompt, .. } => match prompt {
                    PromptRef::View { name, args } => {
                        return Some(format!("view:{name}#{:x}", crate::view::param_hash(args)));
                    }
                    PromptRef::Lowered {
                        identity: Some(id), ..
                    } => return Some(id.clone()),
                    PromptRef::Lowered { identity: None, .. } | PromptRef::Inline(_) => {
                        return None;
                    }
                    // A key reference resolves to whatever an earlier REF
                    // created; keep scanning (the creating REF precedes it).
                    PromptRef::Key(_) => {}
                },
                _ => {}
            }
        }
        None
    }

    /// The plan's affinity key folded to a stable `u64` seed — the hashed
    /// form every placement decision keys on: the serve scheduler's lane
    /// pinning, the KV scheduler's shared-prefix grouping, and the cluster
    /// router's consistent node placement all derive from this one value,
    /// so "same family" means the same thing at every layer. `None` iff
    /// [`LoweredPlan::affinity_key`] is `None`.
    #[must_use]
    pub fn affinity_seed(&self) -> Option<u64> {
        self.affinity_key()
            .map(|key| spear_kv::shard::fnv1a(key.as_bytes()))
    }

    /// Content fingerprint over the plan's canonical serialization. Two
    /// plans fingerprint equal iff they serialize identically, so the
    /// serving layer can use this as a compilation-cache key: equal
    /// fingerprints compile to equal programs.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        spear_kv::shard::fnv1a(serde_json::to_string(self).unwrap_or_default().as_bytes())
    }
}

/// Lower a pipeline into the flat IR.
///
/// Lowering fails closed: before a plan is released it passes the
/// structural self-check of [`crate::analysis::verify_structural`], so a
/// malformed branch shape can never leak an unpatched
/// `Jump { target: usize::MAX }` placeholder (or any other bad target)
/// into the executor.
///
/// # Errors
///
/// Returns [`crate::error::SpearError::InvalidPlan`] carrying the
/// structural diagnostics when the emitted slot program is malformed.
pub fn lower(pipeline: &Pipeline) -> crate::error::Result<LoweredPlan> {
    let mut ops = Vec::new();
    lower_ops(&pipeline.ops, None, &mut Vec::new(), &mut ops);
    release(LoweredPlan {
        name: pipeline.name.clone(),
        source_size: pipeline.size(),
        ops,
    })
}

/// The fail-closed gate between emitting instructions and handing the
/// plan to callers.
fn release(plan: LoweredPlan) -> crate::error::Result<LoweredPlan> {
    let diagnostics = crate::analysis::verify_structural(&plan);
    if diagnostics
        .iter()
        .any(crate::analysis::Diagnostic::is_error)
    {
        return Err(crate::error::SpearError::InvalidPlan {
            plan: plan.name,
            diagnostics,
        });
    }
    Ok(plan)
}

fn lower_ops(
    ops: &[Op],
    trigger: Option<&str>,
    frames: &mut Vec<String>,
    out: &mut Vec<LoweredOp>,
) {
    for op in ops {
        match op {
            Op::Check {
                cond,
                then_ops,
                else_ops,
            } => {
                let check_at = out.len();
                out.push(LoweredOp::Check {
                    cond: cond.clone(),
                    on_false: usize::MAX, // patched below
                    frames: frames.clone(),
                });
                let cond_text = cond.to_string();
                frames.push(op.describe());
                lower_ops(then_ops, Some(&cond_text), frames, out);
                let on_false = if else_ops.is_empty() {
                    out.len()
                } else {
                    let jump_at = out.len();
                    out.push(LoweredOp::Jump { target: usize::MAX });
                    let else_start = out.len();
                    let negated = format!("!({cond_text})");
                    lower_ops(else_ops, Some(&negated), frames, out);
                    let end = out.len();
                    out[jump_at] = LoweredOp::Jump { target: end };
                    else_start
                };
                frames.pop();
                // A non-Check here would mean the branch shape went wrong;
                // leave the placeholder in place and let `release()` turn
                // it into an `InvalidPlan` error instead of panicking.
                if let LoweredOp::Check { on_false: slot, .. } = &mut out[check_at] {
                    *slot = on_false;
                }
            }
            other => out.push(LoweredOp::Leaf {
                op: other.clone(),
                trigger: trigger.map(str::to_string),
                frames: frames.clone(),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RefinementMode;

    #[test]
    fn straight_line_pipelines_lower_to_leaves() {
        let p = Pipeline::builder("flat")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let lowered = lower(&p).unwrap();
        assert_eq!(lowered.name, "flat");
        assert_eq!(lowered.source_size, 2);
        assert_eq!(lowered.ops.len(), 2);
        assert!(lowered.ops.iter().all(
            |op| matches!(op, LoweredOp::Leaf { trigger: None, frames, .. } if frames.is_empty())
        ));
    }

    #[test]
    fn check_without_else_jumps_past_its_branch() {
        let p = Pipeline::builder("c")
            .create_text("p", "base", RefinementMode::Manual)
            .check(Cond::Always, |b| b.expand("p", "more").expand("p", "more"))
            .gen("a", "p")
            .build();
        let lowered = lower(&p).unwrap();
        // create, check, expand, expand, gen
        assert_eq!(lowered.ops.len(), 5);
        let LoweredOp::Check { on_false, .. } = &lowered.ops[1] else {
            panic!("check at 1: {}", lowered.describe())
        };
        assert_eq!(*on_false, 4, "false skips straight to the trailing gen");
        // Branch leaves carry the trigger and the enclosing frame.
        let LoweredOp::Leaf {
            trigger, frames, ..
        } = &lowered.ops[2]
        else {
            panic!("leaf at 2")
        };
        assert_eq!(trigger.as_deref(), Some("true"));
        assert_eq!(frames, &["CHECK[true]".to_string()]);
        // The trailing gen is back at top level.
        let LoweredOp::Leaf {
            trigger, frames, ..
        } = &lowered.ops[4]
        else {
            panic!("leaf at 4")
        };
        assert!(trigger.is_none() && frames.is_empty());
    }

    #[test]
    fn check_with_else_emits_a_jump_over_the_else_branch() {
        let p = Pipeline::builder("ce")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(
                Cond::Always,
                |b| b.expand("p", "then"),
                |b| b.expand("p", "else"),
            )
            .build();
        let lowered = lower(&p).unwrap();
        // create, check, then-expand, jump, else-expand
        assert_eq!(lowered.ops.len(), 5);
        let LoweredOp::Check { on_false, .. } = &lowered.ops[1] else {
            panic!("check at 1")
        };
        assert_eq!(*on_false, 4, "false enters the else branch");
        assert_eq!(lowered.ops[3], LoweredOp::Jump { target: 5 });
        let LoweredOp::Leaf { trigger, .. } = &lowered.ops[4] else {
            panic!("leaf at 4")
        };
        assert_eq!(trigger.as_deref(), Some("!(true)"));
    }

    #[test]
    fn nested_checks_stack_frames_outermost_first() {
        let p = Pipeline::builder("nest")
            .check(Cond::Always, |b| {
                b.check(Cond::Never, |b| b.expand("p", "x"))
            })
            .build();
        let lowered = lower(&p).unwrap();
        let LoweredOp::Leaf { frames, .. } = &lowered.ops[2] else {
            panic!("innermost leaf at 2: {}", lowered.describe())
        };
        assert_eq!(
            frames,
            &["CHECK[true]".to_string(), "CHECK[false]".to_string()]
        );
        let LoweredOp::Check { frames, .. } = &lowered.ops[1] else {
            panic!("inner check at 1")
        };
        assert_eq!(frames, &["CHECK[true]".to_string()]);
    }

    #[test]
    fn affinity_key_comes_from_the_creating_view() {
        let args: std::collections::BTreeMap<String, Value> =
            [("topic".to_string(), Value::from("school"))]
                .into_iter()
                .collect();
        let p = Pipeline::builder("aff")
            .create_from_view("p", "tweet_filter", args.clone())
            .gen("a", "p")
            .build();
        let key = lower(&p)
            .unwrap()
            .affinity_key()
            .expect("view-derived plans have a key");
        assert_eq!(
            key,
            format!("view:tweet_filter#{:x}", crate::view::param_hash(&args))
        );

        // Same view, same params, different per-request context => same key.
        let q = Pipeline::builder("aff2")
            .create_from_view("p", "tweet_filter", args)
            .gen("a", "p")
            .build();
        assert_eq!(
            lower(&q).unwrap().affinity_key().as_deref(),
            Some(key.as_str())
        );

        // Different params land in a different affinity group.
        let other: std::collections::BTreeMap<String, Value> =
            [("topic".to_string(), Value::from("weather"))]
                .into_iter()
                .collect();
        let r = Pipeline::builder("aff3")
            .create_from_view("p", "tweet_filter", other)
            .gen("a", "p")
            .build();
        assert_ne!(lower(&r).unwrap().affinity_key(), Some(key));
    }

    #[test]
    fn affinity_seed_is_the_hashed_key_and_tracks_its_presence() {
        let keyed = Pipeline::builder("seeded")
            .create_text("p", "shared base text", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let plan = lower(&keyed).unwrap();
        let key = plan.affinity_key().unwrap();
        assert_eq!(
            plan.affinity_seed(),
            Some(spear_kv::shard::fnv1a(key.as_bytes()))
        );

        let opaque = Pipeline::builder("op")
            .gen_with(
                "a",
                PromptRef::Inline("ad hoc {{ctx:q}}".into()),
                crate::llm::GenOptions::default(),
            )
            .build();
        assert_eq!(lower(&opaque).unwrap().affinity_seed(), None);
    }

    #[test]
    fn affinity_key_falls_back_to_base_text_and_opaque_is_none() {
        let a = Pipeline::builder("t1")
            .create_text("p", "shared base text", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let b = Pipeline::builder("t2")
            .create_text("p", "shared base text", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let c = Pipeline::builder("t3")
            .create_text("p", "a different base", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let ka = lower(&a).unwrap().affinity_key().unwrap();
        assert!(ka.starts_with("text:"));
        assert_eq!(lower(&b).unwrap().affinity_key().unwrap(), ka);
        assert_ne!(lower(&c).unwrap().affinity_key().unwrap(), ka);

        // A purely inline GEN has no structured identity: no key.
        let opaque = Pipeline::builder("op")
            .gen_with(
                "a",
                PromptRef::Inline("ad hoc {{ctx:q}}".into()),
                crate::llm::GenOptions::default(),
            )
            .build();
        assert_eq!(lower(&opaque).unwrap().affinity_key(), None);
    }

    #[test]
    fn affinity_key_reads_inline_views_and_lowered_identities() {
        let v = Pipeline::builder("iv")
            .gen_with(
                "a",
                PromptRef::View {
                    name: "summary".into(),
                    args: std::collections::BTreeMap::new(),
                },
                crate::llm::GenOptions::default(),
            )
            .build();
        assert!(lower(&v)
            .unwrap()
            .affinity_key()
            .unwrap()
            .starts_with("view:summary#"));

        let l = Pipeline::builder("low")
            .gen_with(
                "a",
                PromptRef::Lowered {
                    text: "fused template".into(),
                    identity: Some("view:fused@1#0/v1".into()),
                },
                crate::llm::GenOptions::default(),
            )
            .build();
        assert_eq!(
            lower(&l).unwrap().affinity_key().as_deref(),
            Some("view:fused@1#0/v1")
        );
    }

    #[test]
    fn release_rejects_leaked_placeholders() {
        // Regression for the fail-closed gate: if a malformed branch shape
        // ever leaves an unpatched placeholder behind, `lower()` must
        // return Err instead of releasing the plan to the executor.
        let leaked = LoweredPlan {
            name: "leaky".into(),
            source_size: 1,
            ops: vec![LoweredOp::Jump { target: usize::MAX }],
        };
        let err = release(leaked).unwrap_err();
        let crate::error::SpearError::InvalidPlan { plan, diagnostics } = err else {
            panic!("expected InvalidPlan")
        };
        assert_eq!(plan, "leaky");
        assert_eq!(diagnostics.len(), 1);
        assert_eq!(diagnostics[0].code, "SPEAR-E003");
        assert_eq!(diagnostics[0].slot, Some(0));
    }

    #[test]
    fn lowering_never_emits_placeholder_targets() {
        // Deeply nested and else-carrying branch shapes all patch their
        // placeholders before release.
        let p = Pipeline::builder("deep")
            .check_else(
                Cond::Always,
                |b| {
                    b.check(Cond::Never, |b| {
                        b.check_else(Cond::Always, |b| b.expand("p", "a"), |b| b.expand("p", "b"))
                    })
                },
                |b| b.check(Cond::Always, |b| b.expand("p", "c")),
            )
            .build();
        let lowered = lower(&p).unwrap();
        for op in &lowered.ops {
            match op {
                LoweredOp::Jump { target } => assert_ne!(*target, usize::MAX),
                LoweredOp::Check { on_false, .. } => assert_ne!(*on_false, usize::MAX),
                LoweredOp::Leaf { .. } => {}
            }
        }
    }

    #[test]
    fn lowered_plans_serialize_roundtrip() {
        let p = Pipeline::builder("s")
            .create_text("p", "base", RefinementMode::Manual)
            .check(Cond::low_confidence(0.5), |b| b.expand("p", "x"))
            .build();
        let lowered = lower(&p).unwrap();
        let json = serde_json::to_string(&lowered).unwrap();
        let back: LoweredPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(lowered, back);
    }
}
