//! Refinement replay (paper §4.3, §6).
//!
//! Because every ref_log record stores the text it produced, a prompt
//! entry's evolution can be replayed: reconstructed as of any retained
//! version, verified for internal consistency, or forked into a new entry
//! that shares history up to a chosen point ("roll back to earlier states,
//! or clone successful configurations").

use crate::error::{Result, SpearError};
use crate::prompt::PromptEntry;

/// Reconstruct `entry` exactly as it stood at `version`: text, version
/// counter, and the ref_log truncated to that point. Params, tags, and
/// origin are carried over unchanged (they are not versioned per-step).
///
/// # Errors
///
/// Returns [`SpearError::Replay`] when `version` is not in the ref_log.
pub fn replay_to(entry: &PromptEntry, version: u64) -> Result<PromptEntry> {
    let idx = entry
        .ref_log
        .iter()
        .position(|r| r.version == version)
        .ok_or_else(|| {
            SpearError::Replay(format!(
                "version {version} not present in ref_log (have {:?})",
                entry.ref_log.iter().map(|r| r.version).collect::<Vec<_>>()
            ))
        })?;
    let mut out = entry.clone();
    out.ref_log.truncate(idx + 1);
    out.version = version;
    out.text = out.ref_log[idx].text_after.clone();
    Ok(out)
}

/// The sequence of `(version, text)` states the entry moved through.
#[must_use]
pub fn evolution(entry: &PromptEntry) -> Vec<(u64, &str)> {
    entry
        .ref_log
        .iter()
        .map(|r| (r.version, r.text_after.as_str()))
        .collect()
}

/// Verify the entry's internal invariants:
///
/// 1. the ref_log is non-empty and versions strictly increase,
/// 2. the final record's version and text match the entry's current state.
///
/// # Errors
///
/// Returns [`SpearError::Replay`] describing the first violated invariant.
pub fn verify(entry: &PromptEntry) -> Result<()> {
    let Some(last) = entry.ref_log.last() else {
        return Err(SpearError::Replay("empty ref_log".to_string()));
    };
    for w in entry.ref_log.windows(2) {
        if w[1].version <= w[0].version {
            return Err(SpearError::Replay(format!(
                "non-increasing versions in ref_log: {} then {}",
                w[0].version, w[1].version
            )));
        }
    }
    if last.version != entry.version {
        return Err(SpearError::Replay(format!(
            "entry version {} does not match last ref_log version {}",
            entry.version, last.version
        )));
    }
    if last.text_after != entry.text {
        return Err(SpearError::Replay(
            "entry text does not match last ref_log text".to_string(),
        ));
    }
    Ok(())
}

/// Fork the entry at `version`: the fork shares history up to that point
/// and then records a `Create`-like note marking the fork, so the two
/// lineages are distinguishable in later analysis.
///
/// # Errors
///
/// Propagates [`replay_to`] errors.
pub fn fork_at(entry: &PromptEntry, version: u64) -> Result<PromptEntry> {
    let mut fork = replay_to(entry, version)?;
    if let Some(last) = fork.ref_log.last_mut() {
        let note = format!("forked from lineage at v{version}");
        last.note = Some(match &last.note {
            Some(existing) => format!("{existing}; {note}"),
            None => note,
        });
    }
    Ok(fork)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::{RefAction, RefinementMode};
    use std::collections::BTreeMap;

    fn entry_with_versions(n: u64) -> PromptEntry {
        let mut e = PromptEntry::new("text v1", "f_base", RefinementMode::Manual);
        for v in 2..=n {
            e.apply_refinement(
                format!("text v{v}"),
                RefAction::Update,
                &format!("f_{v}"),
                RefinementMode::Auto,
                v,
                None,
                BTreeMap::new(),
                None,
            );
        }
        e
    }

    #[test]
    fn replay_reconstructs_intermediate_states() {
        let e = entry_with_versions(4);
        let at2 = replay_to(&e, 2).unwrap();
        assert_eq!(at2.text, "text v2");
        assert_eq!(at2.version, 2);
        assert_eq!(at2.ref_log.len(), 2);
        verify(&at2).unwrap();
    }

    #[test]
    fn replay_to_missing_version_errors() {
        let e = entry_with_versions(2);
        assert!(matches!(replay_to(&e, 9), Err(SpearError::Replay(_))));
    }

    #[test]
    fn evolution_lists_all_states() {
        let e = entry_with_versions(3);
        let evo = evolution(&e);
        assert_eq!(evo, vec![(1, "text v1"), (2, "text v2"), (3, "text v3")]);
    }

    #[test]
    fn verify_accepts_well_formed_entries() {
        verify(&entry_with_versions(5)).unwrap();
    }

    #[test]
    fn verify_rejects_text_mismatch() {
        let mut e = entry_with_versions(2);
        e.text = "tampered".to_string();
        assert!(verify(&e).is_err());
    }

    #[test]
    fn verify_rejects_version_mismatch_and_disorder() {
        let mut e = entry_with_versions(2);
        e.version = 7;
        assert!(verify(&e).is_err());

        let mut e = entry_with_versions(3);
        e.ref_log[2].version = 2;
        assert!(verify(&e).is_err());

        let mut e = entry_with_versions(1);
        e.ref_log.clear();
        assert!(verify(&e).is_err());
    }

    #[test]
    fn fork_marks_lineage() {
        let e = entry_with_versions(3);
        let fork = fork_at(&e, 2).unwrap();
        assert_eq!(fork.text, "text v2");
        assert!(fork
            .ref_log
            .last()
            .unwrap()
            .note
            .as_deref()
            .unwrap()
            .contains("forked"));
        // Original untouched.
        assert_eq!(e.ref_log.len(), 3);
    }
}
