//! The runtime context **C**.
//!
//! "Context (C) provides runtime data on which the prompts depend. It is a
//! dynamic map of runtime data inputs and intermediate outputs." (paper §3.2)
//! RET places retrieved data here, GEN reads from and writes generations into
//! it, and REF functions may write structured output back for downstream
//! steps.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// A single recorded context mutation (for introspection and shadow diffs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContextWrite {
    /// Executor step at which the write happened (0 when written outside a
    /// pipeline, e.g. during setup).
    pub step: u64,
    /// Key written.
    pub key: String,
    /// Which operator (or caller) performed the write, e.g. `"GEN"`.
    pub writer: String,
}

/// The dynamic context map **C**.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Context {
    entries: BTreeMap<String, Value>,
    write_log: Vec<ContextWrite>,
}

impl Context {
    /// Create an empty context.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Get a value by key (cloned; values are small or structurally shared
    /// by the caller).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<Value> {
        self.entries.get(key).cloned()
    }

    /// Borrow a value by key.
    #[must_use]
    pub fn get_ref(&self, key: &str) -> Option<&Value> {
        self.entries.get(key)
    }

    /// Whether `key` is present (CHECK's `"orders" in C`).
    #[must_use]
    pub fn contains(&self, key: &str) -> bool {
        self.entries.contains_key(key)
    }

    /// Set `key` without attribution (setup code, tests).
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<Value>) {
        self.set_attributed(key, value, 0, "caller");
    }

    /// Set `key`, recording which operator wrote it at which step.
    pub fn set_attributed(
        &mut self,
        key: impl Into<String>,
        value: impl Into<Value>,
        step: u64,
        writer: &str,
    ) {
        let key = key.into();
        self.write_log.push(ContextWrite {
            step,
            key: key.clone(),
            writer: writer.to_string(),
        });
        self.entries.insert(key, value.into());
    }

    /// Remove `key`, returning its value if present.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        self.entries.remove(key)
    }

    /// All keys, sorted.
    #[must_use]
    pub fn keys(&self) -> Vec<&str> {
        self.entries.keys().map(String::as_str).collect()
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the context is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The full mutation log, oldest first.
    #[must_use]
    pub fn write_log(&self) -> &[ContextWrite] {
        &self.write_log
    }

    /// Iterate over `(key, value)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Keys present in `self` but with a different (or missing) value in
    /// `other` — used by shadow-execution diffs.
    #[must_use]
    pub fn changed_keys_vs(&self, other: &Context) -> Vec<String> {
        self.entries
            .iter()
            .filter(|(k, v)| other.entries.get(*k) != Some(*v))
            .map(|(k, _)| k.clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_contains_remove() {
        let mut c = Context::new();
        assert!(c.is_empty());
        c.set("orders", Value::from(vec![Value::from("enoxaparin 40mg")]));
        assert!(c.contains("orders"));
        assert_eq!(c.len(), 1);
        assert!(c.get("orders").unwrap().as_list().is_some());
        assert!(c.remove("orders").is_some());
        assert!(!c.contains("orders"));
    }

    #[test]
    fn writes_are_logged_with_attribution() {
        let mut c = Context::new();
        c.set_attributed("answer_0", "text", 3, "GEN");
        c.set("raw", 1);
        let log = c.write_log();
        assert_eq!(log.len(), 2);
        assert_eq!(log[0].writer, "GEN");
        assert_eq!(log[0].step, 3);
        assert_eq!(log[1].writer, "caller");
    }

    #[test]
    fn overwrite_keeps_both_log_entries() {
        let mut c = Context::new();
        c.set("k", 1);
        c.set("k", 2);
        assert_eq!(c.get("k").unwrap().as_i64(), Some(2));
        assert_eq!(c.write_log().len(), 2);
    }

    #[test]
    fn changed_keys_vs_detects_differences() {
        let mut a = Context::new();
        a.set("same", 1);
        a.set("diff", 1);
        a.set("only_a", 1);
        let mut b = Context::new();
        b.set("same", 1);
        b.set("diff", 2);
        let mut changed = a.changed_keys_vs(&b);
        changed.sort();
        assert_eq!(changed, vec!["diff".to_string(), "only_a".to_string()]);
    }

    #[test]
    fn serde_roundtrip() {
        let mut c = Context::new();
        c.set_attributed("k", 42, 1, "RET");
        let json = serde_json::to_string(&c).unwrap();
        let back: Context = serde_json::from_str(&json).unwrap();
        assert_eq!(back.get("k").unwrap().as_i64(), Some(42));
        assert_eq!(back.write_log().len(), 1);
    }
}
