//! Shadow execution (paper §6).
//!
//! A shadow run executes a pipeline against a deep copy of the execution
//! state: the primary state is never touched, and the runtime returns both
//! the shadow's final state and a structured diff. This is how a developer
//! (or the optimizer) evaluates a candidate refinement or an alternative
//! pipeline safely — e.g. "would switching the base view change the answer?"

use std::collections::BTreeMap;

use crate::diff::{self, PromptDiff};
use crate::error::Result;
use crate::pipeline::Pipeline;
use crate::runtime::{ExecReport, ExecState, Runtime};
use crate::value::Value;

/// Result of a shadow execution.
#[derive(Debug)]
pub struct ShadowRun {
    /// The shadow's final state (independent of the primary).
    pub state: ExecState,
    /// The shadow's execution report.
    pub report: ExecReport,
}

/// Structured difference between a primary state and a shadow state.
#[derive(Debug, Clone, PartialEq)]
pub struct ShadowDiff {
    /// Context keys whose values differ (or exist only in the shadow).
    pub changed_context_keys: Vec<String>,
    /// Prompt keys whose text differs, with the textual diff.
    pub changed_prompts: BTreeMap<String, PromptDiff>,
    /// Prompt keys present only in the shadow.
    pub new_prompts: Vec<String>,
    /// `shadow - primary` for headline metadata counters.
    pub gen_calls_delta: i64,
    /// `shadow - primary` confidence (None when either side lacks it).
    pub confidence_delta: Option<f64>,
}

impl ShadowDiff {
    /// Compare a shadow state against the primary it was forked from.
    #[must_use]
    pub fn between(primary: &ExecState, shadow: &ExecState) -> Self {
        let changed_context_keys = shadow.context.changed_keys_vs(&primary.context);

        let mut changed_prompts = BTreeMap::new();
        let mut new_prompts = Vec::new();
        for key in shadow.prompts.keys() {
            let Some(shadow_entry) = shadow.prompts.try_get(&key) else {
                continue;
            };
            match primary.prompts.try_get(&key) {
                Some(primary_entry) => {
                    if primary_entry.text != shadow_entry.text {
                        changed_prompts
                            .insert(key, diff::diff(&primary_entry.text, &shadow_entry.text));
                    }
                }
                None => new_prompts.push(key),
            }
        }

        let conf = |s: &ExecState| s.metadata.get("confidence").and_then(|v| v.as_f64());
        let confidence_delta = match (conf(primary), conf(shadow)) {
            (Some(a), Some(b)) => Some(b - a),
            _ => None,
        };

        Self {
            changed_context_keys,
            changed_prompts,
            new_prompts,
            gen_calls_delta: shadow.metadata.gen_calls as i64 - primary.metadata.gen_calls as i64,
            confidence_delta,
        }
    }

    /// Whether the shadow diverged from the primary at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.changed_context_keys.is_empty()
            && self.changed_prompts.is_empty()
            && self.new_prompts.is_empty()
            && self.gen_calls_delta == 0
    }

    /// Structured summary (for traces / meta prompts).
    #[must_use]
    pub fn to_value(&self) -> Value {
        crate::value::map([
            (
                "changed_context_keys",
                Value::from(
                    self.changed_context_keys
                        .iter()
                        .map(|k| Value::from(k.clone()))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "changed_prompts",
                Value::from(
                    self.changed_prompts
                        .keys()
                        .map(|k| Value::from(k.clone()))
                        .collect::<Vec<_>>(),
                ),
            ),
            (
                "new_prompts",
                Value::from(
                    self.new_prompts
                        .iter()
                        .map(|k| Value::from(k.clone()))
                        .collect::<Vec<_>>(),
                ),
            ),
            ("gen_calls_delta", Value::from(self.gen_calls_delta)),
            ("confidence_delta", Value::from(self.confidence_delta)),
        ])
    }
}

impl Runtime {
    /// Execute `pipeline` against a deep copy of `primary`, leaving the
    /// primary untouched.
    ///
    /// # Errors
    ///
    /// Propagates executor errors from the shadow run.
    pub fn shadow_execute(&self, pipeline: &Pipeline, primary: &ExecState) -> Result<ShadowRun> {
        let mut state = primary.deep_clone();
        let report = self.execute(pipeline, &mut state)?;
        Ok(ShadowRun { state, report })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::history::RefinementMode;
    use crate::llm::EchoLlm;
    use std::sync::Arc;

    fn runtime() -> Runtime {
        Runtime::builder().llm(Arc::new(EchoLlm::default())).build()
    }

    #[test]
    fn shadow_does_not_mutate_primary() {
        let rt = runtime();
        let primary = ExecState::new();
        primary
            .prompts
            .define("p", "base prompt", "f", RefinementMode::Manual);

        let pipeline = Pipeline::builder("variant")
            .expand("p", "Focus on dosage.")
            .gen("answer", "p")
            .build();
        let shadow = rt.shadow_execute(&pipeline, &primary).unwrap();

        assert_eq!(primary.prompts.get("p").unwrap().text, "base prompt");
        assert!(!primary.context.contains("answer"));
        assert!(shadow.state.context.contains("answer"));
        assert_eq!(shadow.report.gens, 1);
    }

    #[test]
    fn diff_reports_divergence() {
        let rt = runtime();
        let primary = ExecState::new();
        primary
            .prompts
            .define("p", "base", "f", RefinementMode::Manual);
        let pipeline = Pipeline::builder("variant")
            .expand("p", "added")
            .create_text("q", "brand new", RefinementMode::Manual)
            .gen("answer", "p")
            .build();
        let shadow = rt.shadow_execute(&pipeline, &primary).unwrap();
        let d = ShadowDiff::between(&primary, &shadow.state);

        assert!(!d.is_empty());
        assert!(d.changed_prompts.contains_key("p"));
        assert_eq!(d.new_prompts, vec!["q".to_string()]);
        assert!(d.changed_context_keys.contains(&"answer".to_string()));
        assert_eq!(d.gen_calls_delta, 1);
        assert!(d.confidence_delta.is_none(), "primary never generated");
        let v = d.to_value();
        assert_eq!(v.path("gen_calls_delta").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn identical_states_diff_empty() {
        let state = ExecState::new();
        let d = ShadowDiff::between(&state, &state.deep_clone());
        assert!(d.is_empty());
    }
}
