//! The SPEAR runtime: executes pipelines over the state triple (P, C, M).
//!
//! The executor interprets the operator algebra of [`crate::ops`]. Every
//! operator consumes and produces `(P, C, M)` — held together in
//! [`ExecState`] alongside the structured trace — which is what the paper
//! means by the algebra being closed under composition, and what makes
//! shadow execution ([`crate::shadow`]) a state-clone away.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

use crate::agent::AgentRegistry;
use crate::condition::Cond;
use crate::context::Context;
use crate::error::{Result, SpearError};
use crate::history::{RefAction, RefinementMode};
use crate::llm::{GenOptions, GenRequest, LlmClient, PromptIdentity};
use crate::metadata::{Metadata, TokenUsage};
use crate::ops::{MergePolicy, Op, PayloadSpec, PromptRef};
use crate::pipeline::Pipeline;
use crate::prompt::{PromptEntry, PromptOrigin};
use crate::refiner::{RefineCtx, RefinerRegistry};
use crate::retriever::{RetrievalQuery, RetrievalRequest, RetrieverRegistry};
use crate::store::PromptStore;
use crate::template;
use crate::trace::{Trace, TraceKind};
use crate::value::{map, Value};
use crate::view::ViewCatalog;

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Hard cap on operators executed per `execute` call. Guards against
    /// pathological pipelines (e.g. enormous unrolled retries).
    pub max_ops: u64,
    /// Token budget per `execute` call (prompt + completion across all
    /// GENs); `None` = unbounded. Checked after each generation, so the
    /// call that crosses the line completes and then the pipeline aborts —
    /// the paper's "token budgets" constraint (§5).
    pub max_tokens: Option<u64>,
    /// Latency budget per `execute` call (accumulated virtual latency);
    /// `None` = unbounded.
    pub max_latency: Option<Duration>,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_ops: 10_000,
            max_tokens: None,
            max_latency: None,
        }
    }
}

/// The mutable execution state: the paper's (P, C, M) plus the trace.
#[derive(Debug, Clone, Default)]
pub struct ExecState {
    /// The prompt store P.
    pub prompts: PromptStore,
    /// The context C.
    pub context: Context,
    /// The metadata M.
    pub metadata: Metadata,
    /// Structured execution trace.
    pub trace: Trace,
    /// Current executor step (monotonic across pipelines run on this state).
    pub step: u64,
}

impl ExecState {
    /// Fresh, empty state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Deep copy: the clone shares nothing with the original, so a shadow
    /// run cannot leak writes into the primary (note `PromptStore::clone`
    /// alone would share the backing KV store).
    #[must_use]
    pub fn deep_clone(&self) -> Self {
        Self {
            prompts: self.prompts.deep_clone(),
            context: self.context.clone(),
            metadata: self.metadata.clone(),
            trace: self.trace.clone(),
            step: self.step,
        }
    }
}

/// Summary of one `execute` call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Operators executed (including nested CHECK branches).
    pub ops_executed: u64,
    /// GEN invocations.
    pub gens: u64,
    /// REF applications.
    pub refs: u64,
    /// CHECKs whose condition held.
    pub checks_taken: u64,
    /// Token usage across the call.
    pub usage: TokenUsage,
    /// Accumulated (virtual) latency across the call.
    pub latency: Duration,
}

/// Builds a [`Runtime`].
pub struct RuntimeBuilder {
    llm: Option<Arc<dyn LlmClient>>,
    retrievers: RetrieverRegistry,
    agents: AgentRegistry,
    refiners: RefinerRegistry,
    views: ViewCatalog,
    config: RuntimeConfig,
}

impl RuntimeBuilder {
    /// Set the LLM backend.
    #[must_use]
    pub fn llm(mut self, llm: Arc<dyn LlmClient>) -> Self {
        self.llm = Some(llm);
        self
    }

    /// Register a retriever.
    #[must_use]
    pub fn retriever(
        self,
        source: &str,
        retriever: Arc<dyn crate::retriever::Retriever>,
    ) -> Self {
        self.retrievers.register(source, retriever);
        self
    }

    /// Register an agent.
    #[must_use]
    pub fn agent(self, name: &str, agent: Arc<dyn crate::agent::Agent>) -> Self {
        self.agents.register(name, agent);
        self
    }

    /// Register a custom refiner (built-ins are pre-registered).
    #[must_use]
    pub fn refiner(self, name: &str, refiner: Arc<dyn crate::refiner::Refiner>) -> Self {
        self.refiners.register(name, refiner);
        self
    }

    /// Use an existing view catalog (shared with calling code).
    #[must_use]
    pub fn views(mut self, views: ViewCatalog) -> Self {
        self.views = views;
        self
    }

    /// Override the configuration.
    #[must_use]
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Runtime {
        Runtime {
            llm: self.llm,
            retrievers: self.retrievers,
            agents: self.agents,
            refiners: self.refiners,
            views: self.views,
            config: self.config,
        }
    }
}

/// The pipeline executor and its registries.
///
/// `Runtime` is `Send + Sync`: `execute` takes `&self`, every registry is
/// read-only after construction, and all backends are required to be
/// thread-safe (`LlmClient: Send + Sync` etc.), so one runtime can serve
/// many concurrent pipeline instances — this is what
/// [`crate::batch::BatchRunner`] relies on to share a single runtime
/// across its worker pool.
pub struct Runtime {
    llm: Option<Arc<dyn LlmClient>>,
    retrievers: RetrieverRegistry,
    agents: AgentRegistry,
    refiners: RefinerRegistry,
    views: ViewCatalog,
    config: RuntimeConfig,
}

/// Compile-time guarantee that a runtime and per-job state can cross
/// thread boundaries; batch execution depends on both.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Runtime>();
    assert_send::<ExecState>();
    assert_send::<ExecReport>();
};

impl Runtime {
    /// Start building a runtime (built-in refiners pre-registered).
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder {
            llm: None,
            retrievers: RetrieverRegistry::new(),
            agents: AgentRegistry::new(),
            refiners: RefinerRegistry::with_builtins(),
            views: ViewCatalog::new(),
            config: RuntimeConfig::default(),
        }
    }

    /// The view catalog.
    #[must_use]
    pub fn views(&self) -> &ViewCatalog {
        &self.views
    }

    /// The LLM backend, if configured.
    #[must_use]
    pub fn llm(&self) -> Option<&Arc<dyn LlmClient>> {
        self.llm.as_ref()
    }

    /// Registered retriever source names, sorted.
    #[must_use]
    pub fn retriever_sources(&self) -> Vec<String> {
        self.retrievers.sources()
    }

    /// Registered refiner names, sorted.
    #[must_use]
    pub fn refiner_names(&self) -> Vec<String> {
        self.refiners.names()
    }

    /// Registered agent names, sorted.
    #[must_use]
    pub fn agent_names(&self) -> Vec<String> {
        self.agents.names()
    }

    /// Execute `pipeline` against `state`.
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure (after recording it in the
    /// trace) and [`SpearError::OpBudgetExceeded`] if the op cap is hit.
    pub fn execute(&self, pipeline: &Pipeline, state: &mut ExecState) -> Result<ExecReport> {
        let before = Snapshot::of(state);
        state.trace.record(
            state.step,
            TraceKind::PipelineStart,
            format!("pipeline {:?}", pipeline.name),
            Value::from(pipeline.size()),
        );
        let mut budget = self.config.max_ops;
        let limits = CallLimits {
            tokens_start: state.metadata.usage.total(),
            latency_start_us: state.metadata.latency_us,
            max_tokens: self.config.max_tokens,
            max_latency_us: self
                .config
                .max_latency
                .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX)),
        };
        let result = self.exec_ops(&pipeline.ops, state, &mut budget, None, &limits);
        match &result {
            Ok(()) => state.trace.record(
                state.step,
                TraceKind::PipelineEnd,
                format!("pipeline {:?}", pipeline.name),
                Value::Null,
            ),
            Err(e) => state.trace.record(
                state.step,
                TraceKind::Error,
                format!("pipeline {:?}", pipeline.name),
                Value::from(e.to_string()),
            ),
        }
        result?;
        Ok(before.report(state, self.config.max_ops - budget))
    }

    fn exec_ops(
        &self,
        ops: &[Op],
        state: &mut ExecState,
        budget: &mut u64,
        trigger: Option<&str>,
        limits: &CallLimits,
    ) -> Result<()> {
        for op in ops {
            if *budget == 0 {
                return Err(SpearError::OpBudgetExceeded {
                    limit: self.config.max_ops,
                });
            }
            limits.check(state)?;
            *budget -= 1;
            state.step += 1;
            if let Err(e) = self.exec_op(op, state, budget, trigger, limits) {
                state.trace.record(
                    state.step,
                    TraceKind::Error,
                    op.describe(),
                    Value::from(e.to_string()),
                );
                return Err(e);
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_op(
        &self,
        op: &Op,
        state: &mut ExecState,
        budget: &mut u64,
        trigger: Option<&str>,
        limits: &CallLimits,
    ) -> Result<()> {
        match op {
            Op::Ret {
                source,
                query,
                prompt,
                into,
                limit,
            } => self.exec_ret(source, query, prompt.as_deref(), into, *limit, state),
            Op::Gen {
                label,
                prompt,
                options,
            } => self.exec_gen(label, prompt, options, state),
            Op::Ref {
                target,
                action,
                refiner,
                args,
                mode,
            } => self.exec_ref(target, *action, refiner, args, *mode, trigger, state),
            Op::Check {
                cond,
                then_ops,
                else_ops,
            } => self.exec_check(cond, then_ops, else_ops, state, budget, limits),
            Op::Merge {
                left,
                right,
                into,
                policy,
            } => self.exec_merge(left, right, into, policy, state),
            Op::Delegate {
                agent,
                payload,
                into,
            } => self.exec_delegate(agent, payload, into, state),
        }
    }

    fn exec_ret(
        &self,
        source: &str,
        query: &RetrievalQuery,
        prompt_key: Option<&str>,
        into: &str,
        limit: usize,
        state: &mut ExecState,
    ) -> Result<()> {
        let retriever = self.retrievers.resolve(source)?;
        let effective_query = match prompt_key {
            Some(key) => {
                let entry = state.prompts.get(key)?;
                RetrievalQuery::Prompt(entry.render(&state.context)?)
            }
            None => query.clone(),
        };
        let request = RetrievalRequest {
            source: source.to_string(),
            query: effective_query,
            limit,
        };
        let docs = retriever.retrieve(&request)?;
        let count = docs.len();
        state.context.set_attributed(
            into,
            Value::List(docs.iter().map(|d| d.to_value()).collect()),
            state.step,
            "RET",
        );
        state.metadata.set("retrieved_count", count);
        state.trace.record(
            state.step,
            TraceKind::Ret,
            format!("RET[{source:?}] -> C[{into:?}]"),
            map([("count", Value::from(count))]),
        );
        Ok(())
    }

    /// Resolve a prompt reference to `(rendered text, identity)`.
    fn resolve_prompt(
        &self,
        prompt: &PromptRef,
        state: &ExecState,
    ) -> Result<(String, PromptIdentity)> {
        match prompt {
            PromptRef::Key(key) => {
                let entry = state.prompts.get(key)?;
                let rendered = entry.render(&state.context)?;
                let identity = entry
                    .cache_identity()
                    .map_or(PromptIdentity::Opaque, |id| PromptIdentity::Structured {
                        id,
                    });
                Ok((rendered, identity))
            }
            PromptRef::Inline(text) => {
                let rendered = template::render(text, &BTreeMap::new(), &state.context)?;
                Ok((rendered, PromptIdentity::Opaque))
            }
            PromptRef::View { name, args } => {
                let entry = self.views.instantiate(name, args.clone())?;
                let rendered = entry.render(&state.context)?;
                let identity = entry
                    .cache_identity()
                    .map_or(PromptIdentity::Opaque, |id| PromptIdentity::Structured {
                        id,
                    });
                Ok((rendered, identity))
            }
        }
    }

    fn exec_gen(
        &self,
        label: &str,
        prompt: &PromptRef,
        options: &GenOptions,
        state: &mut ExecState,
    ) -> Result<()> {
        let llm = self.llm.as_deref().ok_or(SpearError::LlmUnavailable {
            requested_by: "GEN".into(),
        })?;
        let (text, identity) = self.resolve_prompt(prompt, state)?;
        let response = llm.generate(&GenRequest {
            text,
            identity,
            options: options.clone(),
        })?;
        state
            .context
            .set_attributed(label, response.text.clone(), state.step, "GEN");
        state
            .metadata
            .record_gen(response.usage, response.latency, response.confidence);
        state
            .metadata
            .set(format!("confidence:{label}"), response.confidence);
        state.trace.record(
            state.step,
            TraceKind::Gen,
            format!("GEN[{label:?}]"),
            map([
                ("model", Value::from(response.model.clone())),
                ("confidence", Value::from(response.confidence)),
                ("prompt_tokens", Value::from(response.usage.prompt_tokens)),
                ("cached_tokens", Value::from(response.usage.cached_tokens)),
                (
                    "completion_tokens",
                    Value::from(response.usage.completion_tokens),
                ),
                (
                    "latency_us",
                    Value::from(u64::try_from(response.latency.as_micros()).unwrap_or(u64::MAX)),
                ),
            ]),
        );
        Ok(())
    }

    #[allow(clippy::too_many_arguments)] // one argument per REF field
    fn exec_ref(
        &self,
        target: &str,
        action: RefAction,
        refiner_name: &str,
        args: &Value,
        mode: RefinementMode,
        trigger: Option<&str>,
        state: &mut ExecState,
    ) -> Result<()> {
        let refiner = self.refiners.resolve(refiner_name)?;
        let current = state.prompts.try_get(target);
        if current.is_none() && action != RefAction::Create {
            return Err(SpearError::PromptNotFound(target.to_string()));
        }
        let output = {
            let rcx = RefineCtx {
                current: current.as_ref(),
                context: &state.context,
                metadata: &state.metadata,
                llm: self.llm.as_deref(),
                views: &self.views,
                prompts: &state.prompts,
                args,
            };
            refiner.refine(&rcx)?
        };

        let mut new_version = None;
        if let Some(new_text) = output.new_text {
            if current.is_some() {
                let v = state.prompts.refine(
                    target,
                    new_text,
                    action,
                    refiner_name,
                    mode,
                    state.step,
                    trigger.map(str::to_string),
                    state.metadata.signal_snapshot(),
                    output.note.clone(),
                )?;
                new_version = Some(v);
            } else {
                let mut entry = PromptEntry::new(new_text, refiner_name, mode);
                entry.ref_log[0].step = state.step;
                entry.ref_log[0].trigger = trigger.map(str::to_string);
                entry.ref_log[0].signals = state.metadata.signal_snapshot();
                entry.ref_log[0].note = output.note.clone();
                state.prompts.insert(target, entry);
                new_version = Some(1);
            }
            // Params / origin updates from the refiner (e.g. from_view).
            if output.params.is_some() || output.origin.is_some() {
                state.prompts.update(target, |e| {
                    if let Some(p) = output.params {
                        e.params = p;
                    }
                    if let Some(o) = output.origin {
                        e.origin = o;
                    }
                })?;
            }
        } else {
            for (key, value) in &output.ctx_writes {
                state
                    .context
                    .set_attributed(key.clone(), value.clone(), state.step, "REF");
            }
        }
        if new_version.is_some() {
            for (key, value) in &output.ctx_writes {
                state
                    .context
                    .set_attributed(key.clone(), value.clone(), state.step, "REF");
            }
        }
        state.metadata.ref_calls += 1;
        state.trace.record(
            state.step,
            TraceKind::Ref,
            format!("REF[{action}, {refiner_name}] on P[{target:?}]"),
            map([
                ("mode", Value::from(mode.to_string())),
                ("version", Value::from(new_version.unwrap_or(0))),
                (
                    "trigger",
                    trigger.map_or(Value::Null, |t| Value::from(t.to_string())),
                ),
            ]),
        );
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn exec_check(
        &self,
        cond: &Cond,
        then_ops: &[Op],
        else_ops: &[Op],
        state: &mut ExecState,
        budget: &mut u64,
        limits: &CallLimits,
    ) -> Result<()> {
        let holds = cond.eval(&state.context, &state.metadata)?;
        let cond_text = cond.to_string();
        state.trace.record(
            state.step,
            if holds {
                TraceKind::CheckTaken
            } else {
                TraceKind::CheckSkipped
            },
            format!("CHECK[{cond_text}]"),
            Value::Bool(holds),
        );
        if holds {
            self.exec_ops(then_ops, state, budget, Some(&cond_text), limits)?;
        } else if !else_ops.is_empty() {
            let negated = format!("!({cond_text})");
            self.exec_ops(else_ops, state, budget, Some(&negated), limits)?;
        }
        Ok(())
    }

    fn exec_merge(
        &self,
        left: &str,
        right: &str,
        into: &str,
        policy: &MergePolicy,
        state: &mut ExecState,
    ) -> Result<()> {
        let l = state
            .prompts
            .try_get(left)
            .ok_or_else(|| SpearError::Merge(format!("left prompt {left:?} missing")))?;
        let r = state
            .prompts
            .try_get(right)
            .ok_or_else(|| SpearError::Merge(format!("right prompt {right:?} missing")))?;

        let (mut base, merged_text, choice) = match policy {
            MergePolicy::PreferLeft => (l.clone(), l.text.clone(), "left"),
            MergePolicy::PreferRight => (r.clone(), r.text.clone(), "right"),
            MergePolicy::Concat { separator } => {
                let text = format!("{}{separator}{}", l.text, r.text);
                (l.clone(), text, "concat")
            }
            MergePolicy::BySignal {
                left_signal,
                right_signal,
            } => {
                let ls = state.metadata.get(left_signal).and_then(|v| v.as_f64());
                let rs = state.metadata.get(right_signal).and_then(|v| v.as_f64());
                match (ls, rs) {
                    (Some(a), Some(b)) if b > a => (r.clone(), r.text.clone(), "right"),
                    _ => (l.clone(), l.text.clone(), "left"),
                }
            }
        };

        base.apply_refinement(
            merged_text,
            RefAction::Merge,
            &format!("merge:{policy:?}"),
            RefinementMode::Manual,
            state.step,
            None,
            state.metadata.signal_snapshot(),
            Some(format!("merged {left:?} + {right:?} ({choice})")),
        );
        base.origin = PromptOrigin::Merged {
            left: left.to_string(),
            right: right.to_string(),
        };
        state.prompts.insert(into, base);
        state.trace.record(
            state.step,
            TraceKind::Merge,
            format!("MERGE[P[{left:?}], P[{right:?}]] -> P[{into:?}]"),
            Value::from(choice),
        );
        Ok(())
    }

    fn exec_delegate(
        &self,
        agent_name: &str,
        payload: &PayloadSpec,
        into: &str,
        state: &mut ExecState,
    ) -> Result<()> {
        let agent = self.agents.resolve(agent_name)?;
        let payload_value = match payload {
            PayloadSpec::CtxKey(k) => state.context.get(k).ok_or_else(|| SpearError::Agent {
                agent: agent_name.to_string(),
                reason: format!("payload context key {k:?} missing"),
            })?,
            PayloadSpec::PromptKey(k) => {
                let entry = state.prompts.get(k)?;
                Value::from(entry.render(&state.context)?)
            }
            PayloadSpec::Lit(v) => v.clone(),
        };
        let result = agent.call(&payload_value, &state.context)?;
        state
            .context
            .set_attributed(into, result, state.step, "DELEGATE");
        state.trace.record(
            state.step,
            TraceKind::Delegate,
            format!("DELEGATE[{agent_name:?}] -> C[{into:?}]"),
            Value::Null,
        );
        Ok(())
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("llm", &self.llm.as_ref().map(|l| l.model_name().to_string()))
            .field("retrievers", &self.retrievers.sources())
            .field("agents", &self.agents.names())
            .field("views", &self.views.names())
            .finish()
    }
}

/// Per-call resource limits, checked before each operator against the
/// metadata counters accumulated since the call started.
struct CallLimits {
    tokens_start: u64,
    latency_start_us: u64,
    max_tokens: Option<u64>,
    max_latency_us: Option<u64>,
}

impl CallLimits {
    fn check(&self, state: &ExecState) -> Result<()> {
        if let Some(max) = self.max_tokens {
            let used = state.metadata.usage.total() - self.tokens_start;
            if used > max {
                return Err(SpearError::TokenBudgetExceeded { limit: max, used });
            }
        }
        if let Some(max) = self.max_latency_us {
            let used_us = state.metadata.latency_us - self.latency_start_us;
            if used_us > max {
                return Err(SpearError::LatencyBudgetExceeded {
                    limit_us: max,
                    used_us,
                });
            }
        }
        Ok(())
    }
}

/// Metadata snapshot used to compute per-call report deltas.
struct Snapshot {
    gens: u64,
    refs: u64,
    usage: TokenUsage,
    latency_us: u64,
    checks_taken: usize,
}

impl Snapshot {
    fn of(state: &ExecState) -> Self {
        Self {
            gens: state.metadata.gen_calls,
            refs: state.metadata.ref_calls,
            usage: state.metadata.usage,
            latency_us: state.metadata.latency_us,
            checks_taken: state.trace.count(TraceKind::CheckTaken),
        }
    }

    fn report(&self, state: &ExecState, ops_executed: u64) -> ExecReport {
        ExecReport {
            ops_executed,
            gens: state.metadata.gen_calls - self.gens,
            refs: state.metadata.ref_calls - self.refs,
            checks_taken: (state.trace.count(TraceKind::CheckTaken) - self.checks_taken) as u64,
            usage: TokenUsage {
                prompt_tokens: state.metadata.usage.prompt_tokens - self.usage.prompt_tokens,
                cached_tokens: state.metadata.usage.cached_tokens - self.usage.cached_tokens,
                completion_tokens: state.metadata.usage.completion_tokens
                    - self.usage.completion_tokens,
            },
            latency: Duration::from_micros(state.metadata.latency_us - self.latency_us),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agent::EvidenceValidator;
    use crate::llm::{EchoLlm, ScriptedLlm};
    use crate::retriever::InMemoryRetriever;
    use crate::view::{ParamSpec, ViewDef};

    fn runtime() -> Runtime {
        let views = ViewCatalog::new();
        views.register(
            ViewDef::new(
                "med_summary",
                "Summarize the patient's medication history and highlight any use of {{drug}}.\nNotes: {{ctx:notes}}",
            )
            .with_param(ParamSpec::required("drug")),
        );
        Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .retriever(
                "initial_notes",
                Arc::new(InMemoryRetriever::from_texts([
                    ("n1", "Patient on enoxaparin 40mg daily"),
                    ("n2", "No bleeding events reported"),
                ])),
            )
            .agent(
                "validation_agent",
                Arc::new(EvidenceValidator {
                    evidence_key: "answer_0".into(),
                }),
            )
            .views(views)
            .build()
    }

    fn qa_pipeline() -> Pipeline {
        Pipeline::builder("qa")
            .ret("initial_notes", "notes_raw", 5)
            .create_text("notes_joiner", "ignored", RefinementMode::Manual)
            .build()
    }

    #[test]
    fn full_qa_pipeline_runs_and_traces() {
        let rt = runtime();
        let mut state = ExecState::new();
        state.context.set("notes", "enoxaparin 40mg daily");
        let pipeline = Pipeline::builder("qa")
            .ret("initial_notes", "notes_raw", 5)
            .create_from_view(
                "qa_prompt",
                "med_summary",
                [("drug".to_string(), Value::from("Enoxaparin"))]
                    .into_iter()
                    .collect(),
            )
            .gen("answer_0", "qa_prompt")
            .build();
        let report = rt.execute(&pipeline, &mut state).unwrap();

        assert_eq!(report.ops_executed, 3);
        assert_eq!(report.gens, 1);
        assert_eq!(report.refs, 1);
        assert!(state.context.contains("answer_0"));
        assert!(state.context.contains("notes_raw"));
        assert!(state.metadata.get("confidence").is_some());
        assert_eq!(state.trace.count(TraceKind::Gen), 1);
        assert_eq!(state.trace.count(TraceKind::Ret), 1);

        // The prompt was view-derived, so GEN saw a structured identity and
        // the entry records its origin.
        let entry = state.prompts.get("qa_prompt").unwrap();
        assert!(entry.derives_from_view("med_summary"));
    }

    #[test]
    fn confidence_retry_refines_and_regenerates() {
        // First answer low confidence, second high.
        let llm = ScriptedLlm::new(vec![
            ScriptedLlm::response("weak answer", 0.4),
            ScriptedLlm::response("strong answer", 0.9),
        ]);
        let rt = Runtime::builder().llm(Arc::new(llm)).build();
        let mut state = ExecState::new();
        let pipeline = Pipeline::builder("retry")
            .create_text("p", "Classify the note.", RefinementMode::Manual)
            .retry_gen(
                "answer",
                "p",
                Cond::low_confidence(0.7),
                "auto_refine",
                Value::Null,
                RefinementMode::Auto,
                2,
            )
            .build();
        let report = rt.execute(&pipeline, &mut state).unwrap();

        assert_eq!(report.gens, 2, "initial + one retry");
        assert_eq!(report.checks_taken, 1, "second check sees 0.9 and skips");
        assert!(state.context.contains("answer_0"));
        assert!(state.context.contains("answer_1"));
        assert!(!state.context.contains("answer_2"));

        // The refinement carries the triggering condition in the ref_log.
        let entry = state.prompts.get("p").unwrap();
        assert_eq!(entry.version, 2);
        let auto_rec = &entry.ref_log[1];
        assert_eq!(auto_rec.mode, RefinementMode::Auto);
        assert!(auto_rec.trigger.as_deref().unwrap().contains("confidence"));
        assert_eq!(
            auto_rec.signals.get("confidence").unwrap().as_f64(),
            Some(0.4),
            "signals snapshot captured at refinement time"
        );
    }

    #[test]
    fn check_else_branch_gets_negated_trigger() {
        let rt = runtime();
        let mut state = ExecState::new();
        state.metadata.set("confidence", 0.9);
        let pipeline = Pipeline::builder("else")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(
                Cond::low_confidence(0.7),
                |b| b.expand("p", "then-branch"),
                |b| b.expand("p", "else-branch"),
            )
            .build();
        rt.execute(&pipeline, &mut state).unwrap();
        let entry = state.prompts.get("p").unwrap();
        assert!(entry.text.contains("else-branch"));
        assert!(entry.ref_log[1].trigger.as_deref().unwrap().starts_with("!("));
    }

    #[test]
    fn merge_policies_choose_correctly() {
        let rt = runtime();
        let mut state = ExecState::new();
        state
            .prompts
            .define("primary", "primary text", "f", RefinementMode::Manual);
        state
            .prompts
            .define("fallback", "fallback text", "f", RefinementMode::Manual);
        state.metadata.set("confidence:primary", 0.5);
        state.metadata.set("confidence:fallback", 0.8);

        let pipeline = Pipeline::builder("merge")
            .merge(
                "fallback",
                "primary",
                "merged_concat",
                MergePolicy::Concat {
                    separator: "\n---\n".into(),
                },
            )
            .merge(
                "primary",
                "fallback",
                "merged_best",
                MergePolicy::BySignal {
                    left_signal: "confidence:primary".into(),
                    right_signal: "confidence:fallback".into(),
                },
            )
            .build();
        rt.execute(&pipeline, &mut state).unwrap();

        let concat = state.prompts.get("merged_concat").unwrap();
        assert!(concat.text.contains("fallback text") && concat.text.contains("primary text"));
        let best = state.prompts.get("merged_best").unwrap();
        assert_eq!(best.text, "fallback text", "higher signal wins");
        assert!(matches!(best.origin, PromptOrigin::Merged { .. }));
    }

    #[test]
    fn merge_missing_source_errors() {
        let rt = runtime();
        let mut state = ExecState::new();
        state
            .prompts
            .define("only", "x", "f", RefinementMode::Manual);
        let pipeline = Pipeline::builder("bad")
            .merge("only", "ghost", "out", MergePolicy::PreferLeft)
            .build();
        let err = rt.execute(&pipeline, &mut state).unwrap_err();
        assert!(matches!(err, SpearError::Merge(_)));
        assert_eq!(state.trace.count(TraceKind::Error), 2, "op + pipeline");
    }

    #[test]
    fn delegate_writes_agent_result() {
        let rt = runtime();
        let mut state = ExecState::new();
        state
            .context
            .set("answer_0", "patient on enoxaparin daily dosing");
        let pipeline = Pipeline::builder("validate")
            .delegate(
                "validation_agent",
                PayloadSpec::CtxKey("answer_0".into()),
                "evidence_score",
            )
            .build();
        rt.execute(&pipeline, &mut state).unwrap();
        let score = state.context.get("evidence_score").unwrap();
        assert!(score.as_f64().unwrap() > 0.9);
    }

    #[test]
    fn prompt_based_retrieval_uses_refinable_prompt() {
        let rt = runtime();
        let mut state = ExecState::new();
        let pipeline = Pipeline::builder("ret")
            .create_text(
                "retrieve_meds",
                "enoxaparin dosing notes",
                RefinementMode::Manual,
            )
            .ret_with_prompt("initial_notes", "retrieve_meds", "med_context", 5)
            .build();
        rt.execute(&pipeline, &mut state).unwrap();
        let docs = state.context.get("med_context").unwrap();
        let docs = docs.as_list().unwrap();
        assert_eq!(docs.len(), 1, "only the enoxaparin note matches");
        assert_eq!(state.metadata.get("retrieved_count").unwrap().as_i64(), Some(1));
    }

    #[test]
    fn gen_without_llm_errors() {
        let rt = Runtime::builder().build();
        let mut state = ExecState::new();
        state.prompts.define("p", "x", "f", RefinementMode::Manual);
        let pipeline = Pipeline::builder("g").gen("a", "p").build();
        assert!(matches!(
            rt.execute(&pipeline, &mut state),
            Err(SpearError::LlmUnavailable { .. })
        ));
    }

    #[test]
    fn inline_prompts_render_context_but_stay_opaque() {
        let rt = runtime();
        let mut state = ExecState::new();
        state.context.set("tweet", "rain ruined my day");
        let pipeline = Pipeline::builder("inline")
            .gen_with(
                "sentiment",
                PromptRef::Inline("Classify: {{ctx:tweet}}".into()),
                GenOptions::default(),
            )
            .build();
        rt.execute(&pipeline, &mut state).unwrap();
        let out = state.context.get("sentiment").unwrap();
        assert!(out.as_str().unwrap().contains("rain") || !out.as_str().unwrap().is_empty());
    }

    #[test]
    fn op_budget_is_enforced() {
        let rt = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .config(RuntimeConfig {
                max_ops: 2,
                ..RuntimeConfig::default()
            })
            .build();
        let mut state = ExecState::new();
        let pipeline = Pipeline::builder("big")
            .create_text("p", "a", RefinementMode::Manual)
            .expand("p", "b")
            .expand("p", "c")
            .build();
        assert!(matches!(
            rt.execute(&pipeline, &mut state),
            Err(SpearError::OpBudgetExceeded { .. })
        ));
    }

    #[test]
    fn ref_on_missing_target_without_create_errors() {
        let rt = runtime();
        let mut state = ExecState::new();
        let pipeline = Pipeline::builder("bad").expand("ghost", "x").build();
        assert!(matches!(
            rt.execute(&pipeline, &mut state),
            Err(SpearError::PromptNotFound(_))
        ));
    }

    #[test]
    fn per_label_confidence_signals() {
        let llm = ScriptedLlm::new(vec![
            ScriptedLlm::response("a", 0.3),
            ScriptedLlm::response("b", 0.8),
        ]);
        let rt = Runtime::builder().llm(Arc::new(llm)).build();
        let mut state = ExecState::new();
        state.prompts.define("p", "x", "f", RefinementMode::Manual);
        let pipeline = Pipeline::builder("two")
            .gen("first", "p")
            .gen("second", "p")
            .build();
        rt.execute(&pipeline, &mut state).unwrap();
        assert_eq!(
            state.metadata.get("confidence:first").unwrap().as_f64(),
            Some(0.3)
        );
        assert_eq!(
            state.metadata.get("confidence:second").unwrap().as_f64(),
            Some(0.8)
        );
        assert_eq!(state.metadata.get("confidence").unwrap().as_f64(), Some(0.8));
    }

    #[test]
    fn token_budget_aborts_mid_pipeline() {
        let rt = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .config(RuntimeConfig {
                max_tokens: Some(10),
                ..RuntimeConfig::default()
            })
            .build();
        let mut state = ExecState::new();
        state.prompts.define(
            "p",
            "a reasonably long prompt with enough words to cross ten tokens",
            "f",
            RefinementMode::Manual,
        );
        let pipeline = Pipeline::builder("over")
            .gen("a", "p")
            .gen("b", "p")
            .build();
        let err = rt.execute(&pipeline, &mut state).unwrap_err();
        assert!(matches!(err, SpearError::TokenBudgetExceeded { .. }), "{err}");
        // The first generation completed before the budget tripped.
        assert!(state.context.contains("a"));
        assert!(!state.context.contains("b"));
    }

    #[test]
    fn latency_budget_aborts_mid_pipeline() {
        let rt = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .config(RuntimeConfig {
                max_latency: Some(Duration::from_micros(1)),
                ..RuntimeConfig::default()
            })
            .build();
        let mut state = ExecState::new();
        state.prompts.define("p", "prompt text here", "f", RefinementMode::Manual);
        let pipeline = Pipeline::builder("slow").gen("a", "p").gen("b", "p").build();
        let err = rt.execute(&pipeline, &mut state).unwrap_err();
        assert!(matches!(err, SpearError::LatencyBudgetExceeded { .. }), "{err}");
    }

    #[test]
    fn budgets_are_per_call_not_cumulative() {
        let rt = Runtime::builder()
            .llm(Arc::new(EchoLlm::default()))
            .config(RuntimeConfig {
                max_tokens: Some(200),
                ..RuntimeConfig::default()
            })
            .build();
        let mut state = ExecState::new();
        state.prompts.define("p", "short prompt", "f", RefinementMode::Manual);
        let pipeline = Pipeline::builder("ok").gen("a", "p").build();
        // Many successive calls each stay within their own budget even
        // though cumulative usage far exceeds it.
        for _ in 0..20 {
            rt.execute(&pipeline, &mut state).unwrap();
        }
    }

    #[test]
    fn execute_twice_accumulates_state() {
        let rt = runtime();
        let mut state = ExecState::new();
        let p1 = qa_pipeline();
        rt.execute(&p1, &mut state).unwrap();
        let step_after_first = state.step;
        rt.execute(&p1, &mut state).unwrap();
        assert!(state.step > step_after_first, "steps continue monotonically");
    }
}
