//! The SPEAR runtime: executes pipelines over the state triple (P, C, M).
//!
//! The runtime is a thin dispatch layer. [`Runtime::execute`] lowers the
//! pipeline to the flat IR of [`crate::plan`], compiles it to bytecode
//! with [`crate::vm`], and steps the compiled program; the VM loop owns
//! tracing, budget enforcement, and the op-count cap in exactly one
//! place, and each operator's semantics live in its own handler module
//! (`exec::{ret,gen,refine,check,merge,delegate}`). Two reference spines
//! are kept for differential testing: the recursive tree walk
//! ([`Runtime::execute_tree`]) and the direct IR interpreter
//! ([`Runtime::execute_lowered_interpreted`]); all three produce
//! byte-identical traces and reports.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::sync::Arc;
use std::time::Duration;

use crate::agent::AgentRegistry;
use crate::cancel::CancelToken;
use crate::context::Context;
use crate::error::Result;
use crate::exec::{self, CallLimits};
use crate::llm::LlmClient;
use crate::metadata::{Metadata, TokenUsage};
use crate::pipeline::Pipeline;
use crate::plan::{self, LoweredPlan};
use crate::refiner::RefinerRegistry;
use crate::retriever::RetrieverRegistry;
use crate::store::PromptStore;
use crate::trace::{Trace, TraceKind};
use crate::value::Value;
use crate::view::ViewCatalog;
use crate::vm::{self, Program};

/// Executor configuration.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Hard cap on operators executed per `execute` call. Guards against
    /// pathological pipelines (e.g. enormous unrolled retries).
    pub max_ops: u64,
    /// Token budget per `execute` call (prompt + completion across all
    /// GENs); `None` = unbounded. Checked after each generation, so the
    /// call that crosses the line completes and then the pipeline aborts —
    /// the paper's "token budgets" constraint (§5).
    pub max_tokens: Option<u64>,
    /// Latency budget per `execute` call (accumulated virtual latency);
    /// `None` = unbounded.
    pub max_latency: Option<Duration>,
    /// Default-on structural verify gate: before stepping a lowered plan,
    /// reject it with [`crate::error::SpearError::InvalidPlan`] if
    /// [`crate::analysis::verify_structural`] finds errors (malformed
    /// targets, leaked lowering placeholders, backward jumps). Plans from
    /// [`crate::plan::lower`] never trip it; plans of unknown provenance
    /// (deserialized, hand-built) do before any LLM call.
    pub verify: bool,
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        Self {
            max_ops: 10_000,
            max_tokens: None,
            max_latency: None,
            verify: true,
        }
    }
}

/// The mutable execution state: the paper's (P, C, M) plus the trace.
#[derive(Debug, Clone, Default)]
pub struct ExecState {
    /// The prompt store P.
    pub prompts: PromptStore,
    /// The context C.
    pub context: Context,
    /// The metadata M.
    pub metadata: Metadata,
    /// Structured execution trace.
    pub trace: Trace,
    /// Current executor step (monotonic across pipelines run on this state).
    pub step: u64,
    /// Optional cooperative cancellation token, checked between operators
    /// (see [`crate::cancel`]).
    pub cancel: Option<CancelToken>,
    /// Optional virtual deadline: executions abort with
    /// [`crate::error::SpearError::Cancelled`] once the state's accumulated
    /// virtual latency (`metadata.latency_us`) exceeds this bound. Used by
    /// the serving layer for per-request timeouts; deterministic because it
    /// never consults wall time.
    pub deadline_us: Option<u64>,
    /// Whole-call generation-reuse policy handed to the LLM backend on
    /// every GEN (see [`crate::llm::ReusePolicy`]). `Off` by default so
    /// standalone runs behave exactly as before; the serving layer stamps
    /// `Exact` per request when its `ServeConfig::reuse` knob is on.
    pub reuse: crate::llm::ReusePolicy,
}

impl ExecState {
    /// Fresh, empty state.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Deep copy: the clone shares nothing with the original, so a shadow
    /// run cannot leak writes into the primary (note `PromptStore::clone`
    /// alone would share the backing KV store).
    #[must_use]
    pub fn deep_clone(&self) -> Self {
        Self {
            prompts: self.prompts.deep_clone(),
            context: self.context.clone(),
            metadata: self.metadata.clone(),
            trace: self.trace.clone(),
            step: self.step,
            // A shadow run shares the cancellation signals: cancelling the
            // primary should stop its shadows too.
            cancel: self.cancel.clone(),
            deadline_us: self.deadline_us,
            reuse: self.reuse,
        }
    }
}

/// Summary of one `execute` call.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecReport {
    /// Operators executed (including nested CHECK branches).
    pub ops_executed: u64,
    /// GEN invocations.
    pub gens: u64,
    /// REF applications.
    pub refs: u64,
    /// CHECKs whose condition held.
    pub checks_taken: u64,
    /// Token usage across the call.
    pub usage: TokenUsage,
    /// Accumulated (virtual) latency across the call.
    pub latency: Duration,
}

/// Builds a [`Runtime`].
pub struct RuntimeBuilder {
    llm: Option<Arc<dyn LlmClient>>,
    retrievers: RetrieverRegistry,
    agents: AgentRegistry,
    refiners: RefinerRegistry,
    views: ViewCatalog,
    config: RuntimeConfig,
}

impl RuntimeBuilder {
    /// Set the LLM backend.
    #[must_use]
    pub fn llm(mut self, llm: Arc<dyn LlmClient>) -> Self {
        self.llm = Some(llm);
        self
    }

    /// Register a retriever.
    #[must_use]
    pub fn retriever(self, source: &str, retriever: Arc<dyn crate::retriever::Retriever>) -> Self {
        self.retrievers.register(source, retriever);
        self
    }

    /// Register an agent.
    #[must_use]
    pub fn agent(self, name: &str, agent: Arc<dyn crate::agent::Agent>) -> Self {
        self.agents.register(name, agent);
        self
    }

    /// Register a custom refiner (built-ins are pre-registered).
    #[must_use]
    pub fn refiner(self, name: &str, refiner: Arc<dyn crate::refiner::Refiner>) -> Self {
        self.refiners.register(name, refiner);
        self
    }

    /// Use an existing view catalog (shared with calling code).
    #[must_use]
    pub fn views(mut self, views: ViewCatalog) -> Self {
        self.views = views;
        self
    }

    /// Override the configuration.
    #[must_use]
    pub fn config(mut self, config: RuntimeConfig) -> Self {
        self.config = config;
        self
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Runtime {
        Runtime {
            llm: self.llm,
            retrievers: self.retrievers,
            agents: self.agents,
            refiners: self.refiners,
            views: self.views,
            config: self.config,
        }
    }
}

/// The pipeline executor and its registries.
///
/// `Runtime` is `Send + Sync`: `execute` takes `&self`, every registry is
/// read-only after construction, and all backends are required to be
/// thread-safe (`LlmClient: Send + Sync` etc.), so one runtime can serve
/// many concurrent pipeline instances — this is what
/// [`crate::batch::BatchRunner`] relies on to share a single runtime
/// across its worker pool.
pub struct Runtime {
    pub(crate) llm: Option<Arc<dyn LlmClient>>,
    pub(crate) retrievers: RetrieverRegistry,
    pub(crate) agents: AgentRegistry,
    pub(crate) refiners: RefinerRegistry,
    pub(crate) views: ViewCatalog,
    pub(crate) config: RuntimeConfig,
}

/// Compile-time guarantee that a runtime and per-job state can cross
/// thread boundaries; batch execution depends on both.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    const fn assert_send<T: Send>() {}
    assert_send_sync::<Runtime>();
    assert_send::<ExecState>();
    assert_send::<ExecReport>();
};

impl Runtime {
    /// Start building a runtime (built-in refiners pre-registered).
    #[must_use]
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder {
            llm: None,
            retrievers: RetrieverRegistry::new(),
            agents: AgentRegistry::new(),
            refiners: RefinerRegistry::with_builtins(),
            views: ViewCatalog::new(),
            config: RuntimeConfig::default(),
        }
    }

    /// The view catalog.
    #[must_use]
    pub fn views(&self) -> &ViewCatalog {
        &self.views
    }

    /// The LLM backend, if configured.
    #[must_use]
    pub fn llm(&self) -> Option<&Arc<dyn LlmClient>> {
        self.llm.as_ref()
    }

    /// The executor configuration.
    #[must_use]
    pub fn config(&self) -> &RuntimeConfig {
        &self.config
    }

    /// Registered retriever source names, sorted.
    #[must_use]
    pub fn retriever_sources(&self) -> Vec<String> {
        self.retrievers.sources()
    }

    /// Registered refiner names, sorted.
    #[must_use]
    pub fn refiner_names(&self) -> Vec<String> {
        self.refiners.names()
    }

    /// Registered agent names, sorted.
    #[must_use]
    pub fn agent_names(&self) -> Vec<String> {
        self.agents.names()
    }

    /// Execute `pipeline` against `state` by lowering it to the flat IR
    /// and stepping that — equivalent to
    /// `execute_lowered(&plan::lower(pipeline), state)`.
    ///
    /// # Errors
    ///
    /// Propagates the first operator failure (after recording it in the
    /// trace) and [`crate::error::SpearError::OpBudgetExceeded`] if the op
    /// cap is hit.
    pub fn execute(&self, pipeline: &Pipeline, state: &mut ExecState) -> Result<ExecReport> {
        let lowered = plan::lower(pipeline)?;
        self.execute_lowered(&lowered, state)
    }

    /// Execute an already-lowered plan against `state`. This is the single
    /// execution spine: optimizer plans, DL-compiled programs, and tree
    /// pipelines all funnel through here.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::execute`].
    pub fn execute_lowered(
        &self,
        lowered: &LoweredPlan,
        state: &mut ExecState,
    ) -> Result<ExecReport> {
        if self.config.verify {
            let diagnostics = crate::analysis::verify_structural(lowered);
            if diagnostics
                .iter()
                .any(crate::analysis::Diagnostic::is_error)
            {
                return Err(crate::error::SpearError::InvalidPlan {
                    plan: lowered.name.clone(),
                    diagnostics,
                });
            }
        }
        // Verification has run (or been explicitly disabled), so compile
        // without re-verifying; the compiler clamps out-of-range targets to
        // the halt index, reproducing the interpreter's fall-off-the-end
        // exit even for unverified plans.
        let program = vm::compile_assuming_verified(lowered)?;
        self.traced_run(
            &lowered.name,
            lowered.source_size,
            state,
            |rt, st, budget, limits| vm::run_program(rt, &program, st, budget, limits),
        )
    }

    /// Execute a compiled [`Program`] against `state`. No verify gate runs
    /// here: programs only exist via [`crate::vm::compile`] (fail-closed)
    /// or via [`Runtime::execute_lowered`] after its own gate, so the VM
    /// may assume the verifier's structural invariants.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::execute`].
    pub fn execute_program(&self, program: &Program, state: &mut ExecState) -> Result<ExecReport> {
        self.traced_run(
            program.name(),
            program.source_size(),
            state,
            |rt, st, budget, limits| vm::run_program(rt, program, st, budget, limits),
        )
    }

    /// Execute an already-lowered plan via the reference IR interpreter
    /// (the pre-VM spine). Kept for differential testing against the
    /// compiled path and for the dispatch microbenchmark; produces
    /// byte-identical traces and reports to [`Runtime::execute_lowered`].
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::execute`].
    pub fn execute_lowered_interpreted(
        &self,
        lowered: &LoweredPlan,
        state: &mut ExecState,
    ) -> Result<ExecReport> {
        if self.config.verify {
            let diagnostics = crate::analysis::verify_structural(lowered);
            if diagnostics
                .iter()
                .any(crate::analysis::Diagnostic::is_error)
            {
                return Err(crate::error::SpearError::InvalidPlan {
                    plan: lowered.name.clone(),
                    diagnostics,
                });
            }
        }
        self.traced_run(
            &lowered.name,
            lowered.source_size,
            state,
            |rt, st, budget, limits| exec::run_lowered(rt, lowered, st, budget, limits),
        )
    }

    /// Run the full static verifier over `lowered` against this runtime's
    /// registries — shorthand for
    /// `analysis::Verifier::with_runtime(self).verify(lowered)`. Unlike
    /// the structural gate in [`Runtime::execute_lowered`], this includes
    /// def-use, registry resolution, and affinity checks.
    #[must_use]
    pub fn verify_lowered(&self, lowered: &LoweredPlan) -> Vec<crate::analysis::Diagnostic> {
        crate::analysis::Verifier::with_runtime(self).verify(lowered)
    }

    /// Execute `pipeline` via the reference recursive tree walk. Kept for
    /// differential testing against the lowered IR path; the two produce
    /// byte-identical traces and reports.
    ///
    /// # Errors
    ///
    /// Same contract as [`Runtime::execute`].
    pub fn execute_tree(&self, pipeline: &Pipeline, state: &mut ExecState) -> Result<ExecReport> {
        self.traced_run(
            &pipeline.name,
            pipeline.size(),
            state,
            |rt, st, budget, limits| exec::run_tree(rt, &pipeline.ops, st, budget, None, limits),
        )
    }

    /// Shared per-call wrapper: pipeline start/end/error trace events,
    /// budget and limit initialization, and the before/after report delta.
    fn traced_run(
        &self,
        name: &str,
        size: u64,
        state: &mut ExecState,
        body: impl FnOnce(&Self, &mut ExecState, &mut u64, &CallLimits) -> Result<()>,
    ) -> Result<ExecReport> {
        let before = Snapshot::of(state);
        state.trace.record(
            state.step,
            TraceKind::PipelineStart,
            format!("pipeline {name:?}"),
            Value::from(size),
        );
        let mut budget = self.config.max_ops;
        let limits = CallLimits {
            tokens_start: state.metadata.usage.total(),
            latency_start_us: state.metadata.latency_us,
            max_tokens: self.config.max_tokens,
            max_latency_us: self
                .config
                .max_latency
                .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX)),
        };
        let result = body(self, state, &mut budget, &limits);
        match &result {
            Ok(()) => state.trace.record(
                state.step,
                TraceKind::PipelineEnd,
                format!("pipeline {name:?}"),
                Value::Null,
            ),
            Err(e) => state.trace.record(
                state.step,
                TraceKind::Error,
                format!("pipeline {name:?}"),
                Value::from(e.to_string()),
            ),
        }
        result?;
        Ok(before.report(state, self.config.max_ops - budget))
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field(
                "llm",
                &self.llm.as_ref().map(|l| l.model_name().to_string()),
            )
            .field("retrievers", &self.retrievers.sources())
            .field("agents", &self.agents.names())
            .field("views", &self.views.names())
            .finish()
    }
}

/// Metadata snapshot used to compute per-call report deltas.
struct Snapshot {
    gens: u64,
    refs: u64,
    usage: TokenUsage,
    latency_us: u64,
    checks_taken: usize,
}

impl Snapshot {
    fn of(state: &ExecState) -> Self {
        Self {
            gens: state.metadata.gen_calls,
            refs: state.metadata.ref_calls,
            usage: state.metadata.usage,
            latency_us: state.metadata.latency_us,
            checks_taken: state.trace.count(TraceKind::CheckTaken),
        }
    }

    fn report(&self, state: &ExecState, ops_executed: u64) -> ExecReport {
        ExecReport {
            ops_executed,
            gens: state.metadata.gen_calls - self.gens,
            refs: state.metadata.ref_calls - self.refs,
            checks_taken: (state.trace.count(TraceKind::CheckTaken) - self.checks_taken) as u64,
            usage: TokenUsage {
                prompt_tokens: state.metadata.usage.prompt_tokens - self.usage.prompt_tokens,
                cached_tokens: state.metadata.usage.cached_tokens - self.usage.cached_tokens,
                completion_tokens: state.metadata.usage.completion_tokens
                    - self.usage.completion_tokens,
            },
            latency: Duration::from_micros(state.metadata.latency_us - self.latency_us),
        }
    }
}
