//! Structured prompt entries — the values stored in **P**.
//!
//! "Entries are not just strings, but structured objects" (paper §3.1) that
//! carry the template text, parameters, tags, versioning, and the embedded
//! ref_log. An entry also records its *origin* — whether it was derived from
//! a named view (and which version, with which parameters) or written ad
//! hoc. Origin is what lets the runtime decide cacheability: view-derived
//! prompts have a stable identity that the prefix cache can index (paper §5,
//! "Prompt views are particularly suitable for caching as they maintain a
//! consistent structure across executions").

use std::collections::{BTreeMap, BTreeSet};

use serde::{Deserialize, Serialize};

use crate::context::Context;
use crate::error::Result;
use crate::history::{RefAction, RefLogRecord, RefinementMode};
use crate::template;
use crate::value::Value;

/// Where a prompt entry came from.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum PromptOrigin {
    /// Hand-written, opaque to the optimizer.
    #[default]
    Adhoc,
    /// Instantiated from a named view.
    View {
        /// View name.
        name: String,
        /// View version at instantiation time.
        version: u64,
        /// Stable hash of the instantiation arguments.
        param_hash: u64,
    },
    /// Produced by merging two other entries.
    Merged {
        /// Key of the left source.
        left: String,
        /// Key of the right source.
        right: String,
    },
}

/// A structured prompt fragment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PromptEntry {
    /// Template text, possibly with `{{placeholders}}`.
    pub text: String,
    /// Entry-local parameters consulted before the context when rendering.
    pub params: BTreeMap<String, Value>,
    /// Tags for categorization and runtime dispatch (paper §3.1).
    pub tags: BTreeSet<String>,
    /// Current version; bumped by every refinement.
    pub version: u64,
    /// The embedded refinement log (paper §4.3).
    pub ref_log: Vec<RefLogRecord>,
    /// Provenance.
    pub origin: PromptOrigin,
}

impl PromptEntry {
    /// Create a fresh entry at version 1 with a `CREATE` log record.
    #[must_use]
    pub fn new(text: impl Into<String>, f_name: &str, mode: RefinementMode) -> Self {
        let text = text.into();
        let record = RefLogRecord {
            step: 0,
            action: RefAction::Create,
            f_name: f_name.to_string(),
            mode,
            trigger: None,
            signals: BTreeMap::new(),
            version: 1,
            text_after: text.clone(),
            note: None,
        };
        Self {
            text,
            params: BTreeMap::new(),
            tags: BTreeSet::new(),
            version: 1,
            ref_log: vec![record],
            origin: PromptOrigin::Adhoc,
        }
    }

    /// Builder-style: set a parameter.
    #[must_use]
    pub fn with_param(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.params.insert(key.into(), value.into());
        self
    }

    /// Builder-style: add a tag.
    #[must_use]
    pub fn with_tag(mut self, tag: impl Into<String>) -> Self {
        self.tags.insert(tag.into());
        self
    }

    /// Builder-style: set the origin.
    #[must_use]
    pub fn with_origin(mut self, origin: PromptOrigin) -> Self {
        self.origin = origin;
        self
    }

    /// Render the template against this entry's params and the context.
    ///
    /// # Errors
    ///
    /// Propagates template errors (unbound placeholder, malformed syntax).
    pub fn render(&self, context: &Context) -> Result<String> {
        template::render(&self.text, &self.params, context)
    }

    /// Render as content-hashed segments (literal fragments vs resolved
    /// placeholder values); the joined segments equal [`Self::render`]'s
    /// output byte-for-byte. This is the engine's fast path: segment
    /// identity lets tokenization of shared prefixes be memoized.
    ///
    /// # Errors
    ///
    /// Propagates template errors (unbound placeholder, malformed syntax).
    pub fn render_segmented(&self, context: &Context) -> Result<crate::segment::SegmentedText> {
        template::render_segmented(&self.text, &self.params, context)
    }

    /// Apply a refinement that produced `new_text`, bumping the version and
    /// appending a ref_log record. This is the single mutation path for
    /// entries — REF, MERGE, and rollback all funnel through it, so the
    /// invariant `ref_log.last().text_after == text` always holds.
    #[allow(clippy::too_many_arguments)] // mirrors the ref_log record's fields
    pub fn apply_refinement(
        &mut self,
        new_text: String,
        action: RefAction,
        f_name: &str,
        mode: RefinementMode,
        step: u64,
        trigger: Option<String>,
        signals: BTreeMap<String, Value>,
        note: Option<String>,
    ) {
        self.version += 1;
        self.text = new_text.clone();
        self.ref_log.push(RefLogRecord {
            step,
            action,
            f_name: f_name.to_string(),
            mode,
            trigger,
            signals,
            version: self.version,
            text_after: new_text,
            note,
        });
    }

    /// The text as of `version`, if still retained in the ref_log.
    #[must_use]
    pub fn text_at_version(&self, version: u64) -> Option<&str> {
        self.ref_log
            .iter()
            .find(|r| r.version == version)
            .map(|r| r.text_after.as_str())
    }

    /// Whether this entry descends from the named view.
    #[must_use]
    pub fn derives_from_view(&self, view_name: &str) -> bool {
        matches!(&self.origin, PromptOrigin::View { name, .. } if name == view_name)
    }

    /// A stable identity for caching: view-derived entries expose
    /// `(name, view_version, param_hash, entry_version)`; ad-hoc entries
    /// have no identity and are treated as opaque by the cache layer.
    #[must_use]
    pub fn cache_identity(&self) -> Option<String> {
        match &self.origin {
            PromptOrigin::View {
                name,
                version,
                param_hash,
            } => Some(format!(
                "view:{name}@{version}#{param_hash:x}/v{}",
                self.version
            )),
            PromptOrigin::Merged { left, right } => {
                Some(format!("merge:{left}+{right}/v{}", self.version))
            }
            PromptOrigin::Adhoc => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_entry_starts_at_version_one_with_create_record() {
        let e = PromptEntry::new("Summarize {{drug}}.", "f_base", RefinementMode::Manual);
        assert_eq!(e.version, 1);
        assert_eq!(e.ref_log.len(), 1);
        assert_eq!(e.ref_log[0].action, RefAction::Create);
        assert_eq!(e.ref_log[0].text_after, e.text);
    }

    #[test]
    fn render_uses_params_then_context() {
        let e = PromptEntry::new(
            "Use of {{drug}} in {{setting}}.",
            "f",
            RefinementMode::Manual,
        )
        .with_param("drug", "Enoxaparin");
        let mut ctx = Context::new();
        ctx.set("setting", "ICU");
        assert_eq!(e.render(&ctx).unwrap(), "Use of Enoxaparin in ICU.");
    }

    #[test]
    fn refinement_bumps_version_and_logs() {
        let mut e = PromptEntry::new("base", "f_base", RefinementMode::Manual);
        e.apply_refinement(
            "base\nFocus on dosage.".to_string(),
            RefAction::Append,
            "f_add_specificity",
            RefinementMode::Manual,
            3,
            None,
            BTreeMap::new(),
            None,
        );
        assert_eq!(e.version, 2);
        assert_eq!(e.text, "base\nFocus on dosage.");
        assert_eq!(e.ref_log.len(), 2);
        assert_eq!(e.ref_log[1].version, 2);
        // Invariant: last record's text matches current text.
        assert_eq!(e.ref_log.last().unwrap().text_after, e.text);
    }

    #[test]
    fn text_at_version_recovers_history() {
        let mut e = PromptEntry::new("v1", "f", RefinementMode::Manual);
        e.apply_refinement(
            "v2".into(),
            RefAction::Update,
            "f2",
            RefinementMode::Auto,
            1,
            None,
            BTreeMap::new(),
            None,
        );
        assert_eq!(e.text_at_version(1), Some("v1"));
        assert_eq!(e.text_at_version(2), Some("v2"));
        assert_eq!(e.text_at_version(3), None);
    }

    #[test]
    fn cache_identity_depends_on_origin() {
        let adhoc = PromptEntry::new("x", "f", RefinementMode::Manual);
        assert_eq!(adhoc.cache_identity(), None);

        let viewed = adhoc.with_origin(PromptOrigin::View {
            name: "med_summary".into(),
            version: 2,
            param_hash: 0xabc,
        });
        let id = viewed.cache_identity().unwrap();
        assert!(id.contains("med_summary@2"));
        assert!(viewed.derives_from_view("med_summary"));
        assert!(!viewed.derives_from_view("other"));
    }

    #[test]
    fn cache_identity_changes_with_entry_version() {
        let mut e =
            PromptEntry::new("x", "f", RefinementMode::Manual).with_origin(PromptOrigin::View {
                name: "v".into(),
                version: 1,
                param_hash: 1,
            });
        let id1 = e.cache_identity().unwrap();
        e.apply_refinement(
            "y".into(),
            RefAction::Update,
            "f",
            RefinementMode::Auto,
            1,
            None,
            BTreeMap::new(),
            None,
        );
        assert_ne!(id1, e.cache_identity().unwrap());
    }

    #[test]
    fn serde_roundtrip() {
        let e = PromptEntry::new("text {{x}}", "f_base", RefinementMode::Assisted)
            .with_param("x", 1)
            .with_tag("clinical");
        let json = serde_json::to_string(&e).unwrap();
        let back: PromptEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, back);
    }
}
