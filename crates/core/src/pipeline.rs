//! Pipelines and the derived operators of Table 2.
//!
//! A [`Pipeline`] is a named sequence of core operators. The
//! [`PipelineBuilder`] provides an ergonomic construction API, and the
//! derived operators (EXPAND, RETRY, MAP, SWITCH, VIEW, DIFF) are
//! implemented exactly as the paper presents them — as "reusable prompt
//! patterns using combinations of core operators" — i.e. they *lower* onto
//! RET/GEN/REF/CHECK/MERGE/DELEGATE at construction time. RETRY, which
//! needs bounded repetition, lowers into an unrolled chain of CHECKs (one
//! per permitted retry), keeping the executed algebra strictly first-order.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::condition::Cond;
use crate::history::{RefAction, RefinementMode};
use crate::llm::GenOptions;
use crate::ops::{MergePolicy, Op, PayloadSpec, PromptRef};
use crate::retriever::RetrievalQuery;
use crate::value::{map, Value};

/// A named operator pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pipeline {
    /// Pipeline name (used in traces).
    pub name: String,
    /// The operators, executed in order.
    pub ops: Vec<Op>,
}

impl Pipeline {
    /// Start building a pipeline.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> PipelineBuilder {
        PipelineBuilder {
            name: name.into(),
            ops: Vec::new(),
        }
    }

    /// Total operator count including nested branches.
    #[must_use]
    pub fn size(&self) -> u64 {
        self.ops.iter().map(Op::size).sum()
    }

    /// Multi-line description in paper notation.
    #[must_use]
    pub fn describe(&self) -> String {
        let mut out = format!("PIPELINE {:?}\n", self.name);
        for op in &self.ops {
            out.push_str("  ");
            out.push_str(&op.describe());
            out.push('\n');
        }
        out
    }
}

/// Fluent builder for [`Pipeline`]s.
#[derive(Debug, Clone)]
pub struct PipelineBuilder {
    name: String,
    ops: Vec<Op>,
}

impl PipelineBuilder {
    /// Append a raw operator.
    #[must_use]
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Append several raw operators.
    #[must_use]
    pub fn ops(mut self, ops: impl IntoIterator<Item = Op>) -> Self {
        self.ops.extend(ops);
        self
    }

    /// `RET[source] -> C[into]` fetching everything (up to `limit`).
    #[must_use]
    pub fn ret(self, source: &str, into: &str, limit: usize) -> Self {
        self.op(Op::Ret {
            source: source.to_string(),
            query: RetrievalQuery::All,
            prompt: None,
            into: into.to_string(),
            limit,
        })
    }

    /// Structured retrieval with field filters.
    #[must_use]
    pub fn ret_structured(
        self,
        source: &str,
        filters: BTreeMap<String, Value>,
        into: &str,
        limit: usize,
    ) -> Self {
        self.op(Op::Ret {
            source: source.to_string(),
            query: RetrievalQuery::Structured(filters),
            prompt: None,
            into: into.to_string(),
            limit,
        })
    }

    /// Prompt-based retrieval: the intent is the *rendered* prompt at key
    /// `prompt_key`, so upstream REFs can refine what gets retrieved.
    #[must_use]
    pub fn ret_with_prompt(self, source: &str, prompt_key: &str, into: &str, limit: usize) -> Self {
        self.op(Op::Ret {
            source: source.to_string(),
            query: RetrievalQuery::All,
            prompt: Some(prompt_key.to_string()),
            into: into.to_string(),
            limit,
        })
    }

    /// `GEN[label]` using the prompt stored at `prompt_key`.
    #[must_use]
    pub fn gen(self, label: &str, prompt_key: &str) -> Self {
        self.gen_with(label, PromptRef::key(prompt_key), GenOptions::default())
    }

    /// `GEN[label]` with full control of prompt reference and options.
    #[must_use]
    pub fn gen_with(self, label: &str, prompt: PromptRef, options: GenOptions) -> Self {
        self.op(Op::Gen {
            label: label.to_string(),
            prompt,
            options,
        })
    }

    /// `REF[CREATE, set_text(text)]` — define a prompt from raw text.
    #[must_use]
    pub fn create_text(self, target: &str, text: &str, mode: RefinementMode) -> Self {
        self.op(Op::Ref {
            target: target.to_string(),
            action: RefAction::Create,
            refiner: "set_text".to_string(),
            args: Value::from(text),
            mode,
        })
    }

    /// `REF[CREATE, f_view(args)]` — define a prompt from a view
    /// (the derived VIEW operator of Table 2).
    #[must_use]
    pub fn create_from_view(self, target: &str, view: &str, args: BTreeMap<String, Value>) -> Self {
        self.op(Op::Ref {
            target: target.to_string(),
            action: RefAction::Create,
            refiner: "from_view".to_string(),
            args: map([("view", Value::from(view)), ("args", Value::Map(args))]),
            mode: RefinementMode::Manual,
        })
    }

    /// Generic `REF[action, refiner(args)]`.
    #[must_use]
    pub fn refine(
        self,
        target: &str,
        action: RefAction,
        refiner: &str,
        args: Value,
        mode: RefinementMode,
    ) -> Self {
        self.op(Op::Ref {
            target: target.to_string(),
            action,
            refiner: refiner.to_string(),
            args,
            mode,
        })
    }

    /// The derived `EXPAND[prompt_key, addition]` (Table 2): append new
    /// content to an existing prompt. Lowers onto `REF[APPEND, append]`.
    #[must_use]
    pub fn expand(self, target: &str, addition: &str) -> Self {
        self.refine(
            target,
            RefAction::Append,
            "append",
            Value::from(addition),
            RefinementMode::Manual,
        )
    }

    /// `CHECK[cond] { then }` — build the then-branch with a closure.
    #[must_use]
    pub fn check(self, cond: Cond, then: impl FnOnce(PipelineBuilder) -> PipelineBuilder) -> Self {
        self.check_else(cond, then, |b| b)
    }

    /// `CHECK[cond] { then } else { otherwise }`.
    #[must_use]
    pub fn check_else(
        mut self,
        cond: Cond,
        then: impl FnOnce(PipelineBuilder) -> PipelineBuilder,
        otherwise: impl FnOnce(PipelineBuilder) -> PipelineBuilder,
    ) -> Self {
        let then_ops = then(Pipeline::builder("then")).ops;
        let else_ops = otherwise(Pipeline::builder("else")).ops;
        self.ops.push(Op::Check {
            cond,
            then_ops,
            else_ops,
        });
        self
    }

    /// `MERGE[P_left, P_right] -> P[into]`.
    #[must_use]
    pub fn merge(self, left: &str, right: &str, into: &str, policy: MergePolicy) -> Self {
        self.op(Op::Merge {
            left: left.to_string(),
            right: right.to_string(),
            into: into.to_string(),
            policy,
        })
    }

    /// `DELEGATE[agent, payload] -> C[into]`.
    #[must_use]
    pub fn delegate(self, agent: &str, payload: PayloadSpec, into: &str) -> Self {
        self.op(Op::Delegate {
            agent: agent.to_string(),
            payload,
            into: into.to_string(),
        })
    }

    /// The derived `RETRY[GEN[label], condition]` (Table 2), lowered onto
    /// GEN + CHECK + REF as the paper specifies. Emits:
    ///
    /// ```text
    /// GEN[label_0]
    /// CHECK[cond] { REF[...]; GEN[label_1] }
    /// CHECK[cond] { REF[...]; GEN[label_2] }   (max_retries times)
    /// ```
    ///
    /// Each retry re-checks the condition against the *latest* generation's
    /// signals, refines the prompt with `refiner`, and regenerates. The
    /// unrolling keeps the algebra loop-free; `max_retries` is the bound.
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn retry_gen(
        mut self,
        label: &str,
        prompt_key: &str,
        cond: Cond,
        refiner: &str,
        refiner_args: Value,
        mode: RefinementMode,
        max_retries: u32,
    ) -> Self {
        self.ops.push(Op::Gen {
            label: format!("{label}_0"),
            prompt: PromptRef::key(prompt_key),
            options: GenOptions::default(),
        });
        for attempt in 1..=max_retries {
            self.ops.push(Op::Check {
                cond: cond.clone(),
                then_ops: vec![
                    Op::Ref {
                        target: prompt_key.to_string(),
                        action: RefAction::Update,
                        refiner: refiner.to_string(),
                        args: refiner_args.clone(),
                        mode,
                    },
                    Op::Gen {
                        label: format!("{label}_{attempt}"),
                        prompt: PromptRef::key(prompt_key),
                        options: GenOptions::default(),
                    },
                ],
                else_ops: vec![],
            });
        }
        self
    }

    /// The derived `MAP[keys, f]` (Table 2): apply one refiner to a list of
    /// prompt fragments. Lowers onto one REF per key.
    #[must_use]
    pub fn map_prompts(
        mut self,
        keys: &[&str],
        refiner: &str,
        args: Value,
        mode: RefinementMode,
    ) -> Self {
        for key in keys {
            self.ops.push(Op::Ref {
                target: (*key).to_string(),
                action: RefAction::Update,
                refiner: refiner.to_string(),
                args: args.clone(),
                mode,
            });
        }
        self
    }

    /// The derived `SWITCH[cond -> action]` (Table 2): first matching case
    /// wins. Lowers onto nested CHECKs (case 2 lives in case 1's else
    /// branch, and so on).
    #[must_use]
    pub fn switch(mut self, cases: Vec<(Cond, Vec<Op>)>, default: Vec<Op>) -> Self {
        let mut acc = default;
        for (cond, ops) in cases.into_iter().rev() {
            acc = vec![Op::Check {
                cond,
                then_ops: ops,
                else_ops: acc,
            }];
        }
        self.ops.extend(acc);
        self
    }

    /// The derived `DIFF[P_1, P_2]` (Table 2): compute the difference
    /// between two prompt entries into `C[into]`. Lowers onto REF with the
    /// built-in `diff` refiner (which writes to C and leaves text alone).
    #[must_use]
    pub fn diff(self, left: &str, right: &str, into: &str) -> Self {
        self.refine(
            left,
            RefAction::Update,
            "diff",
            map([
                ("left", Value::from(left)),
                ("right", Value::from(right)),
                ("into", Value::from(into)),
            ]),
            RefinementMode::Manual,
        )
    }

    /// Finish building.
    #[must_use]
    pub fn build(self) -> Pipeline {
        Pipeline {
            name: self.name,
            ops: self.ops,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_produces_ordered_ops() {
        let p = Pipeline::builder("qa")
            .ret("initial_notes", "notes", 5)
            .create_from_view(
                "qa_prompt",
                "med_summary",
                [("drug".to_string(), Value::from("Enoxaparin"))]
                    .into_iter()
                    .collect(),
            )
            .gen("answer_0", "qa_prompt")
            .build();
        assert_eq!(p.ops.len(), 3);
        assert_eq!(p.ops[0].kind(), "RET");
        assert_eq!(p.ops[1].kind(), "REF");
        assert_eq!(p.ops[2].kind(), "GEN");
        assert_eq!(p.size(), 3);
    }

    #[test]
    fn retry_unrolls_into_gen_plus_checks() {
        let p = Pipeline::builder("retry")
            .create_text("p", "classify", RefinementMode::Manual)
            .retry_gen(
                "answer",
                "p",
                Cond::low_confidence(0.7),
                "auto_refine",
                Value::Null,
                RefinementMode::Auto,
                2,
            )
            .build();
        // create + initial gen + 2 checks
        assert_eq!(p.ops.len(), 4);
        assert_eq!(p.ops[1].kind(), "GEN");
        assert_eq!(p.ops[2].kind(), "CHECK");
        assert_eq!(p.ops[3].kind(), "CHECK");
        // Each check contains REF then GEN.
        if let Op::Check { then_ops, .. } = &p.ops[2] {
            assert_eq!(then_ops[0].kind(), "REF");
            assert_eq!(then_ops[1].kind(), "GEN");
        } else {
            panic!("expected CHECK");
        }
        assert_eq!(p.size(), 1 + 1 + 3 + 3);
    }

    #[test]
    fn switch_nests_checks_first_match_wins() {
        let p = Pipeline::builder("dispatch")
            .switch(
                vec![
                    (
                        Cond::InContext("discharge".into()),
                        vec![Op::Gen {
                            label: "d".into(),
                            prompt: PromptRef::key("discharge_view"),
                            options: GenOptions::default(),
                        }],
                    ),
                    (
                        Cond::InContext("radiology".into()),
                        vec![Op::Gen {
                            label: "r".into(),
                            prompt: PromptRef::key("radiology_view"),
                            options: GenOptions::default(),
                        }],
                    ),
                ],
                vec![Op::Gen {
                    label: "default".into(),
                    prompt: PromptRef::key("generic_view"),
                    options: GenOptions::default(),
                }],
            )
            .build();
        assert_eq!(p.ops.len(), 1);
        let Op::Check { else_ops, .. } = &p.ops[0] else {
            panic!("expected CHECK");
        };
        assert_eq!(else_ops.len(), 1);
        assert_eq!(else_ops[0].kind(), "CHECK", "second case nests in else");
    }

    #[test]
    fn map_emits_one_ref_per_key() {
        let p = Pipeline::builder("norm")
            .map_prompts(
                &["intro_note", "followup_note"],
                "normalize",
                Value::Null,
                RefinementMode::Manual,
            )
            .build();
        assert_eq!(p.ops.len(), 2);
        assert!(p.ops.iter().all(|o| o.kind() == "REF"));
    }

    #[test]
    fn expand_lowers_to_ref_append() {
        let p = Pipeline::builder("e")
            .expand("qa_prompt", "Include PE risk factors.")
            .build();
        let Op::Ref {
            action, refiner, ..
        } = &p.ops[0]
        else {
            panic!("expected REF");
        };
        assert_eq!(*action, RefAction::Append);
        assert_eq!(refiner, "append");
    }

    #[test]
    fn describe_and_serde() {
        let p = Pipeline::builder("qa")
            .ret("notes", "notes", 3)
            .gen("a", "p")
            .build();
        let d = p.describe();
        assert!(d.contains("PIPELINE \"qa\""));
        assert!(d.contains("RET[\"notes\"]"));
        let json = serde_json::to_string(&p).unwrap();
        let back: Pipeline = serde_json::from_str(&json).unwrap();
        assert_eq!(p, back);
    }
}
