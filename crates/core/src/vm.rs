//! The bytecode VM: compiled execution of lowered plans.
//!
//! The slot-program interpreter in [`crate::exec`] re-derives everything it
//! needs per step: `Display`-formatting condition labels for every trace
//! event, carrying heap-allocated frame vectors on every instruction, and
//! dispatching through a match on the full [`LoweredOp`] representation.
//! [`compile`] pays those costs **once per plan** instead of once per step:
//!
//! - every instruction becomes a compact, `Copy` [`VmOp`] of `u32` indices
//!   into a [`ConstPool`];
//! - the pool interns every string the spine can ever emit for the plan —
//!   operator describe lines, `CHECK[...]` labels, unwind frames, REF
//!   triggers — plus each GEN's pre-parsed prompt template, so the hot loop
//!   never formats or parses anything that is a pure function of the plan;
//! - hot instruction pairs fuse into superinstructions (GEN+CHECK — the
//!   confidence-retry idiom, DELEGATE+Jump — agent calls closing a branch,
//!   RET+MERGE — retrieval feeding reconciliation), eliminating one fetch
//!   per pair without changing gating, budgets, or trace order;
//! - [`run_program`] is a tight match-loop over `&[VmOp]`: no trait
//!   objects, no per-step allocation beyond the trace events themselves.
//!
//! ## Verification before compilation
//!
//! [`compile`] is fail-closed: it runs
//! [`crate::analysis::verify_structural`] and refuses to emit code for a
//! malformed plan. The VM therefore *assumes* verified invariants — targets
//! in range, no leaked lowering placeholders — and skips per-step
//! validation. The `compile_assuming_verified` entry point
//! (used by [`crate::runtime::Runtime::execute_lowered`], whose own
//! `verify` gate has already run) additionally clamps any out-of-range
//! target to "halt", which reproduces the interpreter's `ops.get(pc) ==
//! None` exit semantics for unverified plans byte-for-byte.
//!
//! ## Equivalence
//!
//! For every plan, the VM's statuses, traces, digests, and usage are
//! byte-identical to both the IR interpreter and the reference tree walk —
//! fused pairs still gate, count budget, and trace as two steps — proven by
//! `tests/trace_equivalence.rs` at 1/4/8 workers including error unwinds
//! and cancellation.

#![deny(clippy::unwrap_used, clippy::expect_used)]

use std::collections::HashMap;
use std::sync::Arc;

use crate::condition::Cond;
use crate::error::{Result, SpearError};
use crate::exec::{self, CallLimits};
use crate::history::RefAction;
use crate::ops::{Op, PromptRef};
use crate::plan::{LoweredOp, LoweredPlan};
use crate::runtime::{ExecState, Runtime};
use crate::template::{self, ParsedTemplate};
use crate::trace::TraceKind;
use crate::value::Value;
use crate::view::ViewCatalog;

/// One compiled instruction: `u32` indices into the program's
/// [`ConstPool`]. `Copy`, two or three words, no heap payload — the VM loop
/// fetches instructions by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmOp {
    /// Execute pool leaf `leaf`; fall through.
    Leaf {
        /// Index into [`ConstPool::leaves`].
        leaf: u32,
    },
    /// Evaluate pool check `check`; fall through when it holds, jump to
    /// `on_false` otherwise.
    Check {
        /// Index into [`ConstPool::checks`].
        check: u32,
        /// Jump target (code index) when the condition is false.
        on_false: u32,
    },
    /// Unconditional jump. Free: no budget, no trace.
    Jump {
        /// Target code index.
        target: u32,
    },
    /// Superinstruction: a GEN leaf immediately followed by a CHECK — the
    /// confidence-retry idiom. Semantics are exactly the two instructions
    /// in sequence (two gates, two budget units, two trace events).
    GenCheck {
        /// The GEN leaf.
        leaf: u32,
        /// The fused CHECK.
        check: u32,
        /// Jump target when the condition is false.
        on_false: u32,
    },
    /// Superinstruction: a DELEGATE leaf immediately followed by a jump
    /// (an agent call closing a then-branch).
    DelegateJump {
        /// The DELEGATE leaf.
        leaf: u32,
        /// Jump target after the delegate completes.
        target: u32,
    },
    /// Superinstruction: a RET leaf immediately followed by a MERGE leaf
    /// (retrieval feeding reconciliation).
    RetMerge {
        /// The RET leaf.
        first: u32,
        /// The MERGE leaf.
        second: u32,
    },
}

/// A data operator's compiled form: the operator plus pool indices for
/// every string the spine can emit on its behalf, and the pre-parsed
/// template of an inline/lowered GEN prompt.
#[derive(Debug, Clone)]
pub struct LeafSpec {
    pub(crate) op: Op,
    pub(crate) describe: u32,
    pub(crate) trigger: Option<u32>,
    pub(crate) frames: Box<[u32]>,
    pub(crate) template: Option<Arc<ParsedTemplate>>,
}

impl LeafSpec {
    /// The operator this leaf executes.
    #[must_use]
    pub fn op(&self) -> &Op {
        &self.op
    }

    /// Pool index of the operator's `describe()` string (error unwinds).
    #[must_use]
    pub fn describe_id(&self) -> u32 {
        self.describe
    }

    /// Pool index of the innermost enclosing CHECK branch's condition text
    /// (the REF trigger), when inside a branch.
    #[must_use]
    pub fn trigger_id(&self) -> Option<u32> {
        self.trigger
    }

    /// Pool indices of enclosing CHECK describe strings, outermost first.
    #[must_use]
    pub fn frame_ids(&self) -> &[u32] {
        &self.frames
    }

    /// Whether the leaf carries a pre-parsed prompt template (GEN over an
    /// inline or lowered prompt whose template parsed cleanly at compile
    /// time).
    #[must_use]
    pub fn has_template(&self) -> bool {
        self.template.is_some()
    }
}

/// A condition's compiled form: the condition plus its pooled
/// `CHECK[{cond}]` label and unwind frames.
#[derive(Debug, Clone)]
pub struct CheckSpec {
    pub(crate) cond: Cond,
    pub(crate) label: u32,
    pub(crate) frames: Box<[u32]>,
}

impl CheckSpec {
    /// The condition over (C, M).
    #[must_use]
    pub fn cond(&self) -> &Cond {
        &self.cond
    }

    /// Pool index of the `CHECK[{cond}]` label.
    #[must_use]
    pub fn label_id(&self) -> u32 {
        self.label
    }

    /// Pool indices of enclosing CHECK describe strings, outermost first.
    #[must_use]
    pub fn frame_ids(&self) -> &[u32] {
        &self.frames
    }
}

/// The compiled constants of one program: interned strings (describe
/// lines, check labels, frames, triggers), leaf specs, and check specs.
#[derive(Debug, Clone, Default)]
pub struct ConstPool {
    strings: Vec<Arc<str>>,
    leaves: Vec<LeafSpec>,
    checks: Vec<CheckSpec>,
}

impl ConstPool {
    /// The interned string with pool index `id`.
    ///
    /// # Panics
    ///
    /// Never for indices obtained from this pool's own specs.
    #[must_use]
    pub fn str(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// All interned strings, in pool order.
    #[must_use]
    pub fn strings(&self) -> &[Arc<str>] {
        &self.strings
    }

    /// All leaf specs, in pool order.
    #[must_use]
    pub fn leaves(&self) -> &[LeafSpec] {
        &self.leaves
    }

    /// All check specs, in pool order.
    #[must_use]
    pub fn checks(&self) -> &[CheckSpec] {
        &self.checks
    }

    fn leaf(&self, id: u32) -> &LeafSpec {
        &self.leaves[id as usize]
    }

    fn check(&self, id: u32) -> &CheckSpec {
        &self.checks[id as usize]
    }
}

/// A compiled plan: bytecode over a constant pool, plus the source plan's
/// trace identity (name and size) and, when specialized for a prompt
/// family, the family's constant-folded literal prefix.
#[derive(Debug)]
pub struct Program {
    name: String,
    source_size: u64,
    code: Vec<VmOp>,
    pool: ConstPool,
    prefix: Option<Arc<str>>,
}

impl Program {
    /// Name of the source pipeline (used in traces).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// `Pipeline::size()` of the source plan.
    #[must_use]
    pub fn source_size(&self) -> u64 {
        self.source_size
    }

    /// The instruction stream.
    #[must_use]
    pub fn code(&self) -> &[VmOp] {
        &self.code
    }

    /// The constant pool.
    #[must_use]
    pub fn pool(&self) -> &ConstPool {
        &self.pool
    }

    /// The family-fixed literal prompt prefix this program was specialized
    /// for, when per-affinity specialization folded one in.
    #[must_use]
    pub fn prefix(&self) -> Option<&str> {
        self.prefix.as_deref()
    }

    /// Record the family-fixed literal prefix the program was specialized
    /// for (set by per-affinity caches after pre-resolving the prefix's
    /// token chain; purely descriptive — execution semantics are
    /// unchanged).
    pub fn set_prefix(&mut self, prefix: Arc<str>) {
        self.prefix = Some(prefix);
    }
}

/// Compile a lowered plan into a [`Program`], fail-closed: the plan is
/// structurally verified first and a malformed plan is rejected before any
/// code is emitted, which is what entitles the VM to skip per-step target
/// validation.
///
/// # Errors
///
/// Returns [`SpearError::InvalidPlan`] carrying the structural diagnostics
/// when verification fails.
pub fn compile(plan: &LoweredPlan) -> Result<Program> {
    let diagnostics = crate::analysis::verify_structural(plan);
    if diagnostics
        .iter()
        .any(crate::analysis::Diagnostic::is_error)
    {
        return Err(SpearError::InvalidPlan {
            plan: plan.name.clone(),
            diagnostics,
        });
    }
    compile_assuming_verified(plan)
}

/// Compile without re-verifying — for callers whose own verify gate
/// already ran (or is deliberately off). Out-of-range targets are clamped
/// to "halt", reproducing the interpreter's `ops.get(pc) == None` exit.
///
/// # Errors
///
/// Returns [`SpearError::Internal`] only for plans too large to index with
/// `u32` (over four billion instructions).
pub fn compile_assuming_verified(plan: &LoweredPlan) -> Result<Program> {
    let n = plan.ops.len();
    if u32::try_from(n).is_err() {
        return Err(SpearError::Internal(format!(
            "plan {:?} too large to compile: {n} instructions",
            plan.name
        )));
    }

    // Branch-target map over source indices: the second instruction of a
    // fused pair must not be reachable by a jump, or fusing would skip the
    // first half for jumps landing on the second.
    let mut is_target = vec![false; n + 1];
    for op in &plan.ops {
        match op {
            LoweredOp::Check { on_false, .. } => is_target[(*on_false).min(n)] = true,
            LoweredOp::Jump { target } => is_target[(*target).min(n)] = true,
            LoweredOp::Leaf { .. } => {}
        }
    }

    let mut pool = PoolBuilder::default();
    // Emit with *source* targets; `new_index` maps them to code indices in
    // the patch pass below.
    let mut code: Vec<VmOp> = Vec::with_capacity(n);
    let mut new_index = vec![0u32; n + 1];
    let mut pc = 0usize;
    while pc < n {
        new_index[pc] = code.len() as u32;
        let fused = if pc + 1 < n && !is_target[pc + 1] {
            fuse(&plan.ops[pc], &plan.ops[pc + 1], n, &mut pool)
        } else {
            None
        };
        if let Some(op) = fused {
            new_index[pc + 1] = code.len() as u32;
            code.push(op);
            pc += 2;
        } else {
            code.push(single(&plan.ops[pc], n, &mut pool));
            pc += 1;
        }
    }
    new_index[n] = code.len() as u32;

    for op in &mut code {
        match op {
            VmOp::Check { on_false, .. } | VmOp::GenCheck { on_false, .. } => {
                *on_false = new_index[*on_false as usize];
            }
            VmOp::Jump { target } | VmOp::DelegateJump { target, .. } => {
                *target = new_index[*target as usize];
            }
            VmOp::Leaf { .. } | VmOp::RetMerge { .. } => {}
        }
    }

    Ok(Program {
        name: plan.name.clone(),
        source_size: plan.source_size,
        code,
        pool: pool.finish(),
        prefix: None,
    })
}

/// String interner + spec collector used during compilation.
#[derive(Default)]
struct PoolBuilder {
    strings: Vec<Arc<str>>,
    index: HashMap<Arc<str>, u32>,
    leaves: Vec<LeafSpec>,
    checks: Vec<CheckSpec>,
}

impl PoolBuilder {
    fn intern(&mut self, s: &str) -> u32 {
        if let Some(&id) = self.index.get(s) {
            return id;
        }
        let id = self.strings.len() as u32;
        let shared: Arc<str> = Arc::from(s);
        self.strings.push(Arc::clone(&shared));
        self.index.insert(shared, id);
        id
    }

    fn add_leaf(&mut self, op: &Op, trigger: Option<&str>, frames: &[String]) -> u32 {
        // Pre-parse inline/lowered GEN templates; a template that fails to
        // parse compiles without one so the runtime path reproduces the
        // exact MalformedTemplate error (and its trace) at execution time.
        let template = match op {
            Op::Gen {
                prompt: PromptRef::Inline(text) | PromptRef::Lowered { text, .. },
                ..
            } => template::parse_shared(text).ok(),
            _ => None,
        };
        let spec = LeafSpec {
            describe: self.intern(&op.describe()),
            trigger: trigger.map(|t| self.intern(t)),
            frames: frames.iter().map(|f| self.intern(f)).collect(),
            template,
            op: op.clone(),
        };
        self.leaves.push(spec);
        (self.leaves.len() - 1) as u32
    }

    fn add_check(&mut self, cond: &Cond, frames: &[String]) -> u32 {
        let spec = CheckSpec {
            label: self.intern(&format!("CHECK[{cond}]")),
            frames: frames.iter().map(|f| self.intern(f)).collect(),
            cond: cond.clone(),
        };
        self.checks.push(spec);
        (self.checks.len() - 1) as u32
    }

    fn finish(self) -> ConstPool {
        ConstPool {
            strings: self.strings,
            leaves: self.leaves,
            checks: self.checks,
        }
    }
}

/// Clamp a source target into `0..=n` ("n" = halt) so it fits the `u32`
/// field even for unverified plans carrying `usize::MAX` placeholders.
fn clamp(target: usize, n: usize) -> u32 {
    target.min(n) as u32
}

/// Try to fuse the instruction pair at `(first, second)`.
fn fuse(first: &LoweredOp, second: &LoweredOp, n: usize, pool: &mut PoolBuilder) -> Option<VmOp> {
    match (first, second) {
        (
            LoweredOp::Leaf {
                op: op @ Op::Gen { .. },
                trigger,
                frames,
            },
            LoweredOp::Check {
                cond,
                on_false,
                frames: check_frames,
            },
        ) => Some(VmOp::GenCheck {
            leaf: pool.add_leaf(op, trigger.as_deref(), frames),
            check: pool.add_check(cond, check_frames),
            on_false: clamp(*on_false, n),
        }),
        (
            LoweredOp::Leaf {
                op: op @ Op::Delegate { .. },
                trigger,
                frames,
            },
            LoweredOp::Jump { target },
        ) => Some(VmOp::DelegateJump {
            leaf: pool.add_leaf(op, trigger.as_deref(), frames),
            target: clamp(*target, n),
        }),
        (
            LoweredOp::Leaf {
                op: ret @ Op::Ret { .. },
                trigger,
                frames,
            },
            LoweredOp::Leaf {
                op: merge @ Op::Merge { .. },
                trigger: merge_trigger,
                frames: merge_frames,
            },
        ) => Some(VmOp::RetMerge {
            first: pool.add_leaf(ret, trigger.as_deref(), frames),
            second: pool.add_leaf(merge, merge_trigger.as_deref(), merge_frames),
        }),
        _ => None,
    }
}

/// Compile one unfused instruction.
fn single(op: &LoweredOp, n: usize, pool: &mut PoolBuilder) -> VmOp {
    match op {
        LoweredOp::Leaf {
            op,
            trigger,
            frames,
        } => VmOp::Leaf {
            leaf: pool.add_leaf(op, trigger.as_deref(), frames),
        },
        LoweredOp::Check {
            cond,
            on_false,
            frames,
        } => VmOp::Check {
            check: pool.add_check(cond, frames),
            on_false: clamp(*on_false, n),
        },
        LoweredOp::Jump { target } => VmOp::Jump {
            target: clamp(*target, n),
        },
    }
}

/// Replay the interpreter's error unwind from pooled strings: the failing
/// operator's own describe (when it ran), then one event per enclosing
/// CHECK, innermost first — all at the current step.
fn unwind(
    state: &mut ExecState,
    own: Option<&str>,
    frames: &[u32],
    pool: &ConstPool,
    e: &SpearError,
) {
    let message = e.to_string();
    if let Some(describe) = own {
        state.trace.record(
            state.step,
            TraceKind::Error,
            describe.to_owned(),
            Value::from(message.clone()),
        );
    }
    for &frame in frames.iter().rev() {
        state.trace.record(
            state.step,
            TraceKind::Error,
            pool.str(frame).to_owned(),
            Value::from(message.clone()),
        );
    }
}

/// Gate and execute one leaf, unwinding on failure.
#[inline]
fn step_leaf(
    rt: &Runtime,
    spec: &LeafSpec,
    pool: &ConstPool,
    state: &mut ExecState,
    budget: &mut u64,
    limits: &CallLimits,
) -> Result<()> {
    if let Err(e) = exec::gate(rt, state, budget, limits) {
        unwind(state, None, &spec.frames, pool, &e);
        return Err(e);
    }
    match exec_leaf_op(rt, spec, pool, state) {
        Ok(()) => Ok(()),
        Err(e) => {
            unwind(state, Some(pool.str(spec.describe)), &spec.frames, pool, &e);
            Err(e)
        }
    }
}

/// Gate and evaluate one check, unwinding on failure.
#[inline]
fn step_check(
    rt: &Runtime,
    spec: &CheckSpec,
    pool: &ConstPool,
    state: &mut ExecState,
    budget: &mut u64,
    limits: &CallLimits,
) -> Result<bool> {
    if let Err(e) = exec::gate(rt, state, budget, limits) {
        unwind(state, None, &spec.frames, pool, &e);
        return Err(e);
    }
    match exec::check::eval_labeled(&spec.cond, pool.str(spec.label), state) {
        Ok(holds) => Ok(holds),
        Err(e) => {
            unwind(state, Some(pool.str(spec.label)), &spec.frames, pool, &e);
            Err(e)
        }
    }
}

/// Dispatch a leaf operator to its inlined handler, threading the pooled
/// trigger and pre-parsed template through.
fn exec_leaf_op(
    rt: &Runtime,
    spec: &LeafSpec,
    pool: &ConstPool,
    state: &mut ExecState,
) -> Result<()> {
    match &spec.op {
        Op::Gen {
            label,
            prompt,
            options,
        } => exec::gen::run(rt, label, prompt, options, spec.template.as_ref(), state),
        Op::Ret {
            source,
            query,
            prompt,
            into,
            limit,
        } => exec::ret::run(rt, source, query, prompt.as_deref(), into, *limit, state),
        Op::Ref {
            target,
            action,
            refiner,
            args,
            mode,
        } => exec::refine::run(
            rt,
            target,
            *action,
            refiner,
            args,
            *mode,
            spec.trigger.map(|id| pool.str(id)),
            state,
        ),
        Op::Merge {
            left,
            right,
            into,
            policy,
        } => exec::merge::run(left, right, into, policy, state),
        Op::Delegate {
            agent,
            payload,
            into,
        } => exec::delegate::run(rt, agent, payload, into, state),
        // A Check embedded in a Leaf slot never comes out of `lower()`, but
        // a hand-built plan can carry one; the interpreter evaluates it and
        // falls through, so the VM does the same.
        Op::Check { cond, .. } => {
            exec::check::eval_labeled(cond, pool.str(spec.describe), state).map(|_| ())
        }
    }
}

/// The compiled spine: step `program` with a program counter. Fused
/// superinstructions execute their halves in source order — two gates, two
/// budget units, two trace events — so the trace is byte-identical to the
/// interpreter's.
pub(crate) fn run_program(
    rt: &Runtime,
    program: &Program,
    state: &mut ExecState,
    budget: &mut u64,
    limits: &CallLimits,
) -> Result<()> {
    let code = program.code.as_slice();
    let pool = &program.pool;
    let mut pc = 0usize;
    while let Some(&instr) = code.get(pc) {
        match instr {
            VmOp::Jump { target } => pc = target as usize,
            VmOp::Leaf { leaf } => {
                step_leaf(rt, pool.leaf(leaf), pool, state, budget, limits)?;
                pc += 1;
            }
            VmOp::Check { check, on_false } => {
                pc = if step_check(rt, pool.check(check), pool, state, budget, limits)? {
                    pc + 1
                } else {
                    on_false as usize
                };
            }
            VmOp::GenCheck {
                leaf,
                check,
                on_false,
            } => {
                step_leaf(rt, pool.leaf(leaf), pool, state, budget, limits)?;
                pc = if step_check(rt, pool.check(check), pool, state, budget, limits)? {
                    pc + 1
                } else {
                    on_false as usize
                };
            }
            VmOp::DelegateJump { leaf, target } => {
                step_leaf(rt, pool.leaf(leaf), pool, state, budget, limits)?;
                pc = target as usize;
            }
            VmOp::RetMerge { first, second } => {
                step_leaf(rt, pool.leaf(first), pool, state, budget, limits)?;
                step_leaf(rt, pool.leaf(second), pool, state, budget, limits)?;
                pc += 1;
            }
        }
    }
    Ok(())
}

/// Resolve `pc` through chains of free `Jump`s to the first observable
/// instruction (or the exit, `code.len()`). `None` on a jump-only cycle.
fn resolve_jumps(code: &[VmOp], mut pc: usize) -> Option<usize> {
    let len = code.len();
    let mut hops = 0usize;
    loop {
        pc = pc.min(len);
        match code.get(pc) {
            Some(VmOp::Jump { target }) => {
                pc = *target as usize;
                hops += 1;
                if hops > len {
                    return None;
                }
            }
            _ => return Some(pc),
        }
    }
}

/// Optimize a compiled program — jump threading, statically-decided CHECK
/// else-edge redirection, and cond-refined unreachable-op elimination —
/// gated by translation validation
/// ([`crate::analysis::tv::validate_optimized`]).
///
/// Reachable CHECKs are always kept: they gate, consume budget, and emit
/// trace events exactly like the interpreter, so optimization never
/// changes statuses, traces, digests, or usage. It only shortens jump
/// chains and drops code no execution can reach (fused refusal shadows,
/// branches dead under a statically-decided condition). Returns `None`
/// when the program is already optimal, contains a jump-only cycle, or —
/// fail-closed — when the optimized candidate does not symbolically
/// bisimulate the original; callers then keep the original program.
#[must_use]
pub fn optimize(program: &Program) -> Option<Program> {
    let len = program.code.len();
    let mut code = program.code.clone();

    // Jump threading: every explicit target resolves through chains of
    // free Jumps straight to the first observable instruction.
    for op in &mut code {
        match op {
            VmOp::Check { on_false, .. } | VmOp::GenCheck { on_false, .. } => {
                *on_false = resolve_jumps(&program.code, *on_false as usize)? as u32;
            }
            VmOp::Jump { target } | VmOp::DelegateJump { target, .. } => {
                *target = resolve_jumps(&program.code, *target as usize)? as u32;
            }
            VmOp::Leaf { .. } | VmOp::RetMerge { .. } => {}
        }
    }

    // A statically-true CHECK can never take its else edge; pointing that
    // edge at the fall-through makes the dead branch unreachable without
    // changing behavior (the check itself still gates and traces). The
    // statically-false case needs no rewrite: the implicit fall-through is
    // never taken, and refined reachability below prunes the then-branch.
    for pc in 0..len {
        let decided = match code[pc] {
            VmOp::Check { check, .. } | VmOp::GenCheck { check, .. } => {
                crate::analysis::absint::static_cond(program.pool.check(check).cond())
            }
            _ => None,
        };
        if decided == Some(true) {
            let fall = resolve_jumps(&code, pc + 1)? as u32;
            if let VmOp::Check { on_false, .. } | VmOp::GenCheck { on_false, .. } = &mut code[pc] {
                *on_false = fall;
            }
        }
    }

    // Cond-refined reachability over the rewritten code, then compaction.
    // Every explicit target on a live op now lands on a live op (threading
    // skips Jumps; dead else edges were redirected to live fall-throughs),
    // so the remap below is total over the targets that remain.
    let live = crate::analysis::absint::reachable(&code, &program.pool);
    let mut remap = vec![0u32; len + 1];
    let mut kept: Vec<VmOp> = Vec::with_capacity(len);
    for (pc, &op) in code.iter().enumerate() {
        remap[pc] = kept.len() as u32;
        if live[pc] {
            kept.push(op);
        }
    }
    remap[len] = kept.len() as u32;
    for op in &mut kept {
        match op {
            VmOp::Check { on_false, .. } | VmOp::GenCheck { on_false, .. } => {
                *on_false = remap[*on_false as usize];
            }
            VmOp::Jump { target } | VmOp::DelegateJump { target, .. } => {
                *target = remap[*target as usize];
            }
            VmOp::Leaf { .. } | VmOp::RetMerge { .. } => {}
        }
    }

    if kept == program.code {
        return None;
    }
    let candidate = Program {
        name: program.name.clone(),
        source_size: program.source_size,
        code: kept,
        pool: program.pool.clone(),
        prefix: program.prefix.clone(),
    };
    crate::analysis::tv::validate_optimized(program, &candidate).ok()?;
    Some(candidate)
}

/// The family-fixed template text a plan's prompt family renders — the
/// text whose leading literal is constant across every request of the
/// family — derived from the same instruction [`LoweredPlan::affinity_key`]
/// derives the family identity from. `None` when the plan only uses opaque
/// ad-hoc prompts (no affinity, nothing fixed to fold).
#[must_use]
pub fn family_template(plan: &LoweredPlan, views: &ViewCatalog) -> Option<String> {
    for instr in &plan.ops {
        let LoweredOp::Leaf { op, .. } = instr else {
            continue;
        };
        match op {
            Op::Ref {
                action: RefAction::Create,
                refiner,
                args,
                ..
            } if refiner == "from_view" => {
                let name = args.path("view")?.as_str()?;
                let params = match args.path("args") {
                    Some(Value::Map(m)) => m.clone(),
                    _ => std::collections::BTreeMap::new(),
                };
                return views.instantiate(name, params).ok().map(|entry| entry.text);
            }
            Op::Ref {
                action: RefAction::Create,
                refiner,
                args,
                ..
            } if refiner == "set_text" => {
                return args.as_str().map(str::to_string);
            }
            Op::Gen { prompt, .. } => match prompt {
                PromptRef::View { name, args } => {
                    return views
                        .instantiate(name, args.clone())
                        .ok()
                        .map(|entry| entry.text);
                }
                PromptRef::Lowered {
                    identity: Some(_),
                    text,
                } => return Some(text.clone()),
                PromptRef::Lowered { identity: None, .. } | PromptRef::Inline(_) => return None,
                PromptRef::Key(_) => {}
            },
            _ => {}
        }
    }
    None
}

/// The constant-foldable prompt prefix of a family-fixed template: the
/// leading literal segment exactly as [`crate::template::render_segmented`]
/// will produce it on every request of the family (template parsing never
/// emits adjacent literals, so the shared prefix is at most one segment).
/// Returns the literal and its content hash, ready for
/// [`crate::segment::TextSegment::from_shared`].
#[must_use]
pub fn family_prefix(template_text: &str) -> Option<(Arc<str>, u64)> {
    let parsed = template::parse_shared(template_text).ok()?;
    parsed.leading_literal()
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)]
mod tests {
    use super::*;
    use crate::history::RefinementMode;
    use crate::pipeline::Pipeline;
    use crate::plan::lower;

    fn compiled(p: &Pipeline) -> Program {
        compile(&lower(p).unwrap()).unwrap()
    }

    #[test]
    fn straight_line_plans_compile_to_leaves() {
        let p = Pipeline::builder("flat")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .build();
        let prog = compiled(&p);
        assert_eq!(prog.name(), "flat");
        assert_eq!(prog.source_size(), 2);
        assert_eq!(prog.code().len(), 2);
        assert!(prog.code().iter().all(|op| matches!(op, VmOp::Leaf { .. })));
        assert_eq!(prog.pool().leaves().len(), 2);
    }

    #[test]
    fn gen_check_pairs_fuse() {
        // create, gen, check, expand  =>  leaf, gen+check, leaf
        let p = Pipeline::builder("gc")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("a", "p")
            .check(Cond::low_confidence(0.5), |b| b.expand("p", "more"))
            .build();
        let prog = compiled(&p);
        assert_eq!(prog.code().len(), 3);
        let VmOp::GenCheck { on_false, .. } = prog.code()[1] else {
            panic!("expected fused GenCheck: {:?}", prog.code());
        };
        assert_eq!(on_false, 3, "false exits past the fused branch");
    }

    #[test]
    fn fusion_refuses_jump_targets() {
        // else-branch: check's on_false lands exactly on the first else
        // instruction; a gen there followed by a check must NOT fuse with
        // anything that would hide the landing pad.
        let p = Pipeline::builder("landing")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(Cond::Always, |b| b.gen("a", "p"), |b| b.gen("b", "p"))
            .build();
        let lowered = lower(&p).unwrap();
        // ops: create, check(on_false=4), gen a, jump 5, gen b
        let prog = compile(&lowered).unwrap();
        // The then-branch gen at source 2 is followed by Jump — Gen+Jump is
        // not a fusion pair — and the else gen at 4 is a jump target.
        assert_eq!(prog.code().len(), lowered.ops.len());
    }

    #[test]
    fn delegate_jump_fuses_when_legal() {
        let p = Pipeline::builder("dj")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(
                Cond::Always,
                |b| {
                    b.delegate(
                        "helper",
                        crate::ops::PayloadSpec::Lit(Value::from("x")),
                        "out",
                    )
                },
                |b| b.expand("p", "alt"),
            )
            .build();
        let lowered = lower(&p).unwrap();
        // ops: create, check, delegate, jump, expand — jump at 3 is not a
        // target, so delegate+jump fuse.
        let prog = compile(&lowered).unwrap();
        assert!(
            prog.code()
                .iter()
                .any(|op| matches!(op, VmOp::DelegateJump { .. })),
            "expected fused DelegateJump: {:?}",
            prog.code()
        );
        let VmOp::DelegateJump { target, .. } = prog
            .code()
            .iter()
            .copied()
            .find(|op| matches!(op, VmOp::DelegateJump { .. }))
            .unwrap()
        else {
            unreachable!()
        };
        assert_eq!(target as usize, prog.code().len(), "jump exits the plan");
    }

    #[test]
    fn branch_targets_remap_across_fusion() {
        // A fused pair before a branch target shifts later indices; the
        // check's on_false must land on the same source instruction.
        let p = Pipeline::builder("remap")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("warm", "p")
            .check(Cond::low_confidence(0.9), |b| b.expand("p", "retry hint"))
            .gen("final", "p")
            .build();
        let lowered = lower(&p).unwrap();
        // source: create, gen, check(on_false=4), expand, gen
        let prog = compile(&lowered).unwrap();
        // compiled: leaf(create), gen+check(on_false->3), leaf(expand), leaf(gen)
        assert_eq!(prog.code().len(), 4);
        let VmOp::GenCheck { on_false, .. } = prog.code()[1] else {
            panic!("expected fusion: {:?}", prog.code());
        };
        assert_eq!(on_false, 3, "on_false remapped from source 4 to code 3");
    }

    #[test]
    fn compile_is_fail_closed() {
        let bad = LoweredPlan {
            name: "bad".into(),
            source_size: 1,
            ops: vec![LoweredOp::Jump { target: usize::MAX }],
        };
        let err = compile(&bad).unwrap_err();
        assert!(matches!(err, SpearError::InvalidPlan { .. }));
        // The unverified entry point clamps instead: the program halts.
        let prog = compile_assuming_verified(&bad).unwrap();
        assert_eq!(prog.code(), &[VmOp::Jump { target: 1 }]);
    }

    #[test]
    fn pool_strings_are_deduplicated() {
        let p = Pipeline::builder("dedup")
            .check(Cond::Always, |b| {
                b.expand("p", "a").expand("p", "b").expand("p", "c")
            })
            .build();
        let prog = compiled(&p);
        let check_frames: Vec<&str> = prog
            .pool()
            .leaves()
            .iter()
            .flat_map(|l| l.frame_ids())
            .map(|&id| prog.pool().str(id))
            .collect();
        assert_eq!(check_frames, vec!["CHECK[true]"; 3]);
        let distinct: std::collections::HashSet<&str> =
            prog.pool().strings().iter().map(AsRef::as_ref).collect();
        assert_eq!(
            distinct.len(),
            prog.pool().strings().len(),
            "interned strings are unique"
        );
    }

    #[test]
    fn gen_templates_pre_parse() {
        let p = Pipeline::builder("tpl")
            .gen_with(
                "a",
                PromptRef::Lowered {
                    text: "prefix {{ctx:q}}".into(),
                    identity: Some("view:x@1#0/v1".into()),
                },
                crate::llm::GenOptions::default(),
            )
            .build();
        let prog = compiled(&p);
        assert!(prog.pool().leaves()[0].has_template());
    }

    #[test]
    fn family_prefix_matches_render_segmented() {
        let text = "Shared instructions.\nItem: {{ctx:item}}";
        let (prefix, hash) = family_prefix(text).expect("has a literal prefix");
        assert_eq!(prefix.as_ref(), "Shared instructions.\nItem: ");
        let mut ctx = crate::context::Context::new();
        ctx.set("item", "payload");
        let rendered =
            template::render_segmented(text, &std::collections::BTreeMap::new(), &ctx).unwrap();
        let first = &rendered.segments()[0];
        assert_eq!(first.text(), prefix.as_ref());
        assert_eq!(first.hash(), hash);
        assert!(first.is_literal());
    }

    #[test]
    fn optimize_prunes_a_statically_dead_else_branch() {
        let p = Pipeline::builder("opt-else")
            .create_text("p", "base", RefinementMode::Manual)
            .check_else(Cond::Always, |b| b.gen("a", "p"), |b| b.gen("b", "p"))
            .build();
        let prog = compiled(&p);
        let opt = optimize(&prog).expect("dead else branch optimizes");
        assert!(
            opt.code().len() < prog.code().len(),
            "else branch removed: {:?} -> {:?}",
            prog.code(),
            opt.code()
        );
        // The CHECK itself survives — it still gates, budgets, and traces.
        assert!(opt
            .code()
            .iter()
            .any(|op| matches!(op, VmOp::Check { .. } | VmOp::GenCheck { .. })));
        // And the optimized form bisimulates the original.
        assert!(crate::analysis::tv::validate_optimized(&prog, &opt).is_ok());
    }

    #[test]
    fn optimize_prunes_a_never_taken_then_branch() {
        let p = Pipeline::builder("opt-then")
            .create_text("p", "base", RefinementMode::Manual)
            .check(Cond::Never, |b| b.expand("p", "dead").expand("p", "weight"))
            .gen("a", "p")
            .build();
        let prog = compiled(&p);
        let opt = optimize(&prog).expect("dead then branch optimizes");
        assert!(opt.code().len() < prog.code().len());
        assert!(crate::analysis::tv::validate_optimized(&prog, &opt).is_ok());
    }

    #[test]
    fn optimize_returns_none_when_nothing_improves() {
        let p = Pipeline::builder("already-tight")
            .create_text("p", "base", RefinementMode::Manual)
            .gen("warm", "p")
            .check(Cond::low_confidence(0.9), |b| b.expand("p", "retry"))
            .gen("final", "p")
            .build();
        assert!(optimize(&compiled(&p)).is_none());
    }

    #[test]
    fn optimize_bails_on_jump_cycles() {
        let cyclic = Program {
            name: "cycle".into(),
            source_size: 1,
            code: vec![VmOp::Jump { target: 0 }],
            pool: ConstPool::default(),
            prefix: None,
        };
        assert!(optimize(&cyclic).is_none());
    }
}
