//! # spear-core — Structured Prompt Execution and Adaptive Refinement
//!
//! An implementation of the SPEAR model from *"Making Prompts First-Class
//! Citizens for Adaptive LLM Pipelines"* (CIDR 2026): a prompt algebra and
//! runtime that treats prompts as structured, versioned, adaptive data.
//!
//! ## The model
//!
//! Execution state is the triple **(P, C, M)**:
//!
//! - [`PromptStore`] (**P**) — named, structured prompt fragments with
//!   parameters, tags, versions, and an embedded refinement log,
//! - [`Context`] (**C**) — runtime data: retrieved documents, intermediate
//!   generations, extracted fields,
//! - [`Metadata`] (**M**) — control signals (confidence, latency, retries)
//!   that drive conditional execution.
//!
//! Pipelines compose six core operators — [`ops::Op::Ret`],
//! [`ops::Op::Gen`], [`ops::Op::Ref`], [`ops::Op::Check`],
//! [`ops::Op::Merge`], [`ops::Op::Delegate`] — each consuming and producing
//! the triple. The derived operators of the paper's Table 2 (EXPAND, RETRY,
//! MAP, SWITCH, VIEW, DIFF) lower onto the core six at construction time
//! (see [`pipeline::PipelineBuilder`]).
//!
//! ## Quick start
//!
//! ```
//! use std::sync::Arc;
//! use spear_core::prelude::*;
//!
//! // Register a parameterized view (paper §4.2).
//! let views = ViewCatalog::new();
//! views.register(
//!     ViewDef::new(
//!         "med_summary",
//!         "Summarize the patient's medication history and highlight any \
//!          use of {{drug}}.\nNotes: {{ctx:notes}}",
//!     )
//!     .with_param(ParamSpec::required("drug")),
//! );
//!
//! let runtime = Runtime::builder()
//!     .llm(Arc::new(EchoLlm::default()))
//!     .views(views)
//!     .build();
//!
//! // Build the paper's confidence-retry pipeline (§2 / Table 1).
//! let pipeline = Pipeline::builder("enoxaparin_qa")
//!     .create_from_view(
//!         "qa_prompt",
//!         "med_summary",
//!         [("drug".to_string(), Value::from("Enoxaparin"))].into_iter().collect(),
//!     )
//!     .retry_gen(
//!         "answer", "qa_prompt",
//!         Cond::low_confidence(0.7),
//!         "auto_refine", Value::Null, RefinementMode::Auto,
//!         2,
//!     )
//!     .build();
//!
//! let mut state = ExecState::new();
//! state.context.set("notes", "enoxaparin 40 mg daily, started post-op");
//! let report = runtime.execute(&pipeline, &mut state).unwrap();
//! assert!(report.gens >= 1);
//! assert!(state.context.contains("answer_0"));
//!
//! // Every refinement is in the prompt's history (§4.3).
//! let entry = state.prompts.get("qa_prompt").unwrap();
//! assert!(entry.derives_from_view("med_summary"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// Hot-path hygiene: these crates sit on the per-request fast path, where a
// stray clone or to_string() is a real regression, not a style nit.
#![deny(clippy::redundant_clone, clippy::inefficient_to_string)]

pub mod agent;
pub mod analysis;
pub mod batch;
pub mod cancel;
pub mod condition;
pub mod context;
pub mod diff;
pub mod error;
mod exec;
pub mod features;
pub mod history;
pub mod llm;
pub mod meta;
pub mod metadata;
pub mod ops;
pub mod pipeline;
pub mod plan;
pub mod prompt;
pub mod refiner;
pub mod replay;
pub mod retriever;
pub mod runtime;
pub mod scope;
pub mod segment;
pub mod shadow;
pub mod store;
pub mod template;
pub mod trace;
pub mod validate;
pub mod value;
pub mod view;
pub mod vm;

pub use analysis::{Diagnostic, Lint, LintPass, Severity, Verifier};
pub use batch::{AssignedJob, BatchJob, BatchOutcome, BatchRunner};
pub use cancel::CancelToken;
pub use condition::{CmpOp, Cond, Operand};
pub use context::Context;
pub use error::{Result, SpearError};
pub use features::PromptFeatures;
pub use history::{RefAction, RefLogRecord, RefinementMode};
pub use llm::{
    EchoLlm, GenOptions, GenRequest, GenResponse, GenReuse, LlmClient, PromptIdentity, ReusePolicy,
};
pub use metadata::{Metadata, ReuseEvent, TokenUsage};
pub use ops::{MergePolicy, Op, PayloadSpec, PromptRef};
pub use pipeline::{Pipeline, PipelineBuilder};
pub use plan::{lower, LoweredOp, LoweredPlan};
pub use prompt::{PromptEntry, PromptOrigin};
pub use runtime::{ExecReport, ExecState, Runtime, RuntimeBuilder, RuntimeConfig};
pub use segment::{SegmentedText, TextSegment};
pub use store::PromptStore;
pub use validate::{ValidationIssue, Validator};
pub use value::Value;
pub use view::{ParamSpec, ViewCatalog, ViewDef};
pub use vm::{compile, optimize, CheckSpec, ConstPool, LeafSpec, Program, VmOp};

/// Convenient glob-import of the most-used types.
pub mod prelude {
    pub use crate::agent::{Agent, AgentRegistry, FnAgent};
    pub use crate::analysis::{Diagnostic, Lint, LintPass, Severity, Verifier};
    pub use crate::batch::{AssignedJob, BatchJob, BatchOutcome, BatchRunner};
    pub use crate::cancel::CancelToken;
    pub use crate::condition::{CmpOp, Cond, Operand};
    pub use crate::context::Context;
    pub use crate::error::{Result, SpearError};
    pub use crate::features::PromptFeatures;
    pub use crate::history::{RefAction, RefinementMode};
    pub use crate::llm::{
        EchoLlm, GenOptions, GenRequest, GenResponse, GenReuse, LlmClient, PromptIdentity,
        ReusePolicy, ScriptedLlm,
    };
    pub use crate::metadata::{Metadata, ReuseEvent, TokenUsage};
    pub use crate::ops::{MergePolicy, Op, PayloadSpec, PromptRef};
    pub use crate::pipeline::{Pipeline, PipelineBuilder};
    pub use crate::plan::{lower, LoweredOp, LoweredPlan};
    pub use crate::prompt::{PromptEntry, PromptOrigin};
    pub use crate::refiner::{FnRefiner, RefineCtx, RefineOutput, Refiner, RefinerRegistry};
    pub use crate::retriever::{
        InMemoryRetriever, RetrievalQuery, RetrievalRequest, RetrievedDoc, Retriever,
        RetrieverRegistry,
    };
    pub use crate::runtime::{ExecReport, ExecState, Runtime, RuntimeBuilder, RuntimeConfig};
    pub use crate::segment::{SegmentedText, TextSegment};
    pub use crate::store::PromptStore;
    pub use crate::trace::{Trace, TraceEvent, TraceKind};
    pub use crate::validate::{ValidationIssue, Validator};
    pub use crate::value::{map, Value};
    pub use crate::view::{ParamSpec, ViewCatalog, ViewDef};
    // `vm::compile` is deliberately not glob-exported: downstream crates
    // (e.g. the DL compiler) define their own `compile`.
    pub use crate::vm::{ConstPool, Program, VmOp};
}
