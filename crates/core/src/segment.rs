//! Content-hashed prompt segments.
//!
//! A rendered prompt is not an undifferentiated string: the template
//! renderer produces it as an ordered sequence of literal fragments (the
//! shared view/instruction prefix) and resolved placeholder values (the
//! per-request payload). [`SegmentedText`] preserves that structure —
//! each segment carries a stable FNV-1a content hash — so the engine can
//! recognize a shared prefix *by identity* and reuse its tokenization and
//! block hashes instead of re-deriving them from the flat string on every
//! request (see `spear-llm`'s `TokenInterner`).
//!
//! Segments are `Arc<str>`, so a literal that appears in every request of
//! a prompt family is one allocation for the process, not one per request.
//!
//! The joined text ([`SegmentedText::join`]) is always byte-identical to
//! the flat rendering; segmentation is a pure annotation and never changes
//! what the model sees.

use std::sync::Arc;

use spear_kv::shard::fnv1a;

/// One contiguous piece of rendered prompt text with its content hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TextSegment {
    text: Arc<str>,
    hash: u64,
    literal: bool,
}

impl TextSegment {
    /// A per-request value segment (a resolved placeholder); the hash is
    /// computed here.
    #[must_use]
    pub fn new(text: impl Into<Arc<str>>) -> Self {
        let text = text.into();
        let hash = fnv1a(text.as_bytes());
        Self {
            text,
            hash,
            literal: false,
        }
    }

    /// A template-literal segment from a pre-hashed shared string (the
    /// template parse cache hashes each literal once per distinct
    /// template). `hash` must be `fnv1a(text.as_bytes())`.
    #[must_use]
    pub fn from_shared(text: Arc<str>, hash: u64) -> Self {
        debug_assert_eq!(hash, fnv1a(text.as_bytes()));
        Self {
            text,
            hash,
            literal: true,
        }
    }

    /// Whether this segment is a template literal — text that recurs
    /// verbatim across every render of the template, as opposed to a
    /// per-request placeholder value. Memoization layers use this to
    /// decide which segment chains are worth retaining.
    #[must_use]
    pub fn is_literal(&self) -> bool {
        self.literal
    }

    /// The segment's text.
    #[must_use]
    pub fn text(&self) -> &str {
        &self.text
    }

    /// Stable FNV-1a hash of the text bytes.
    #[must_use]
    pub fn hash(&self) -> u64 {
        self.hash
    }
}

/// An ordered list of content-hashed segments whose concatenation is the
/// rendered prompt. Empty segments are dropped on push — they cannot affect
/// the joined text or its tokenization, and skipping them keeps segment
/// chains canonical (the same prefix always yields the same hash chain).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SegmentedText {
    segments: Vec<TextSegment>,
}

impl SegmentedText {
    /// An empty segment list.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A single-segment text.
    #[must_use]
    pub fn from_text(text: impl Into<Arc<str>>) -> Self {
        let mut s = Self::new();
        s.push(text);
        s
    }

    /// Append a segment (no-op for empty text).
    pub fn push(&mut self, text: impl Into<Arc<str>>) {
        let text = text.into();
        if !text.is_empty() {
            self.segments.push(TextSegment::new(text));
        }
    }

    /// Append a pre-built segment (no-op for empty text).
    pub fn push_segment(&mut self, segment: TextSegment) {
        if !segment.text.is_empty() {
            self.segments.push(segment);
        }
    }

    /// The segments, in order.
    #[must_use]
    pub fn segments(&self) -> &[TextSegment] {
        &self.segments
    }

    /// Number of segments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether there are no segments.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Total byte length of the joined text.
    #[must_use]
    pub fn byte_len(&self) -> usize {
        self.segments.iter().map(|s| s.text.len()).sum()
    }

    /// Concatenate the segments into the flat rendered prompt.
    #[must_use]
    pub fn join(&self) -> String {
        let mut out = String::with_capacity(self.byte_len());
        for seg in &self.segments {
            out.push_str(&seg.text);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_the_concatenation() {
        let mut s = SegmentedText::new();
        s.push("You are a helpful assistant.\n");
        s.push("Item: ");
        s.push("case 7: ledger gasket");
        assert_eq!(
            s.join(),
            "You are a helpful assistant.\nItem: case 7: ledger gasket"
        );
        assert_eq!(s.len(), 3);
        assert_eq!(s.byte_len(), s.join().len());
    }

    #[test]
    fn empty_segments_are_dropped() {
        let mut s = SegmentedText::new();
        s.push("");
        s.push("a");
        s.push_segment(TextSegment::new(""));
        assert_eq!(s.len(), 1);
        let empty = SegmentedText::from_text("");
        assert!(empty.is_empty());
        assert_eq!(empty.join(), "");
    }

    #[test]
    fn hashes_are_content_determined() {
        let a = TextSegment::new("shared instruction");
        let b = TextSegment::new(String::from("shared instruction"));
        assert_eq!(a.hash(), b.hash());
        assert_eq!(a, b);
        assert_ne!(a.hash(), TextSegment::new("shared instruction!").hash());
        assert_eq!(a.hash(), fnv1a(b"shared instruction"));
    }

    #[test]
    fn literal_flag_tracks_provenance() {
        assert!(!TextSegment::new("per-request value").is_literal());
        let lit: Arc<str> = Arc::from("template literal");
        let seg = TextSegment::from_shared(Arc::clone(&lit), fnv1a(lit.as_bytes()));
        assert!(seg.is_literal());
    }

    #[test]
    fn shared_segments_reuse_the_allocation() {
        let literal: Arc<str> = Arc::from("view prefix");
        let hash = fnv1a(literal.as_bytes());
        let a = TextSegment::from_shared(Arc::clone(&literal), hash);
        let b = TextSegment::from_shared(Arc::clone(&literal), hash);
        assert!(std::ptr::eq(a.text().as_ptr(), b.text().as_ptr()));
    }
}
